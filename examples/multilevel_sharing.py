#!/usr/bin/env python3
"""Multilevel security: the MITRE compartment lattice in action.

An intelligence project stores material at several classifications in
one shared hierarchy.  The kernel's bottom layer enforces the lattice
(no read up, no write down) no matter what the ACLs say; ACLs control
sharing *within* what the lattice allows.

Run:  python examples/multilevel_sharing.py
"""

from repro import MulticsSystem, SecurityLabel, kernel_config
from repro.errors import AccessDenied, AccessViolation, KernelDenial


def try_op(label: str, fn) -> None:
    try:
        fn()
        print(f"  allowed : {label}")
    except (AccessViolation, AccessDenied, KernelDenial) as error:
        reason = str(error).split(":")[-1].strip()
        print(f"  DENIED  : {label}  ({reason})")


def main() -> None:
    system = MulticsSystem(kernel_config()).boot()
    system.register_user("Clerk", "Intel", "pw",
                         clearance=SecurityLabel.parse("unclassified"))
    system.register_user("Analyst", "Intel", "pw",
                         clearance=SecurityLabel.parse("secret"))
    system.register_user("CryptoOff", "Intel", "pw",
                         clearance=SecurityLabel.parse("secret:crypto"))

    clerk = system.login("Clerk", "Intel", "pw")
    analyst = system.login("Analyst", "Intel", "pw")
    crypto = system.login("CryptoOff", "Intel", "pw")

    # The clerk builds the shared tree and drops an upgraded report
    # (blind write-up: the clerk can create and write it, never read it).
    print("clerk sets up the drop box:")
    report = clerk.create_segment(
        "field_report", label=SecurityLabel.parse("secret")
    )
    clerk.set_acl("field_report", "*.Intel", "rw")
    clerk.write_words(report, [1915, 6, 5])
    try_op("clerk re-reads own upgraded report",
           lambda: clerk.read_words(report, 3))

    path = f"{clerk.home_path}>field_report"
    print("analyst (secret) works on the report:")
    analyst_segno = analyst.initiate(path)
    try_op("analyst reads the report",
           lambda: analyst.read_words(analyst_segno, 3))

    print("lattice keeps everyone in their lane:")
    try_op("analyst creates a file in the unclassified home (write-down)",
           lambda: analyst.call(
               "hcs_$create_segment",
               analyst.search.resolve_dir(clerk.home_path),
               "leak", 1, SecurityLabel.parse("unclassified"),
           ))
    try_op("analyst exfiltrates via the network",
           lambda: analyst.call("net_$send", "remote", "secret stuff"))
    try_op("clerk sends unclassified traffic",
           lambda: clerk.call("net_$send", "remote", "weather report"))

    # Compartments: secret:crypto is invisible to plain secret.
    print("compartments:")
    keys = clerk.create_segment(
        "key_material", label=SecurityLabel.parse("secret:crypto")
    )
    clerk.set_acl("key_material", "*.Intel", "rw")
    key_path = f"{clerk.home_path}>key_material"
    crypto_segno = crypto.initiate(key_path)
    try_op("crypto officer reads key material",
           lambda: crypto.read_words(crypto_segno, 1))
    # secret:crypto dominates plain secret, so the analyst may still
    # write up into it — but can never read a word of it.
    try_op("plain-secret analyst reads key material",
           lambda: analyst.read_words(analyst.initiate(key_path), 1))

    print(f"audit trail: {len(system.audit)} records, "
          f"{len(system.audit.denied())} denials")


if __name__ == "__main__":
    main()
