#!/usr/bin/env python3
"""A user-constructed protected subsystem: the compiler team's
installation service from the paper.

"A team producing a new compiler might set up a program development
subsystem with a common mechanism to control installation of new
modules into the evolving compiler."  The subsystem lives in ring 2;
team members can only reach it through its declared entries, and a
borrowed (trojan) entry can damage the subsystem's data but nothing of
the caller's.

Run:  python examples/protected_subsystem.py
"""

from repro import MulticsSystem, kernel_config
from repro.errors import AccessDenied
from repro.subsys.protected_subsystem import SubsystemManager


def main() -> None:
    system = MulticsSystem(kernel_config()).boot()
    for person in ("Lead", "Dev1", "Dev2", "Outsider"):
        system.register_user(person, "Compiler"
                             if person != "Outsider" else "Elsewhere", "pw")

    lead = system.login("Lead", "Compiler", "pw")
    dev1 = system.login("Dev1", "Compiler", "pw")
    outsider = system.login("Outsider", "Elsewhere", "pw")

    manager = SubsystemManager(system.services)
    install = manager.create(lead.process, "installer", ring=2)
    install.members = {"Lead", "Dev1", "Dev2"}
    install.private_data["modules"] = {}
    install.private_data["log"] = []

    def submit(ctx, module_name, version):
        """Only the subsystem may touch the module registry."""
        registry = ctx.data["modules"]
        current = registry.get(module_name, 0)
        if version <= current:
            return f"rejected: {module_name} v{version} <= v{current}"
        registry[module_name] = version
        ctx.data["log"].append((str(ctx.caller), module_name, version))
        return f"installed {module_name} v{version}"

    def audit_log(ctx):
        return list(ctx.data["log"])

    install.declare("submit", submit, n_args=2)
    install.declare("audit", audit_log, n_args=0)

    print("team members install through the gate:")
    print(" ", manager.enter(lead.process, "installer", "submit", "parser", 1))
    print(" ", manager.enter(dev1.process, "installer", "submit", "parser", 2))
    print(" ", manager.enter(dev1.process, "installer", "submit", "parser", 1))

    print("the outsider is refused at the boundary:")
    try:
        manager.enter(outsider.process, "installer", "submit", "backdoor", 9)
    except AccessDenied as error:
        print(f"  denied: {error}")

    print("the installation log (readable only through the audit entry):")
    for who, module, version in manager.enter(
        lead.process, "installer", "audit"
    ):
        print(f"  {who} installed {module} v{version}")

    print(f"subsystem ring brackets: {install.brackets()!r} "
          "(user ring enters only through gates)")


if __name__ == "__main__":
    main()
