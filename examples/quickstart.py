#!/usr/bin/env python3
"""Quickstart: boot the security-kernel Multics, log in, share a file.

Run:  python examples/quickstart.py
"""

from repro import MulticsSystem, kernel_config
from repro.user.shell import Shell


def main() -> None:
    # Boot the minimized system: 6180 hardware rings, dedicated-process
    # page control, network-only I/O, memory-image initialization.
    system = MulticsSystem(kernel_config()).boot()
    print(f"booted security kernel: {system.supervisor.gate_count()} gates, "
          f"{system.boot_privileged_steps} privileged boot steps")

    # Register users and log in (the login dialogue runs in the user
    # ring; only the password check is a kernel gate).
    system.register_user("Alice", "Crypto", "alice-pw")
    system.register_user("Bob", "Crypto", "bob-pw")
    alice = system.login("Alice", "Crypto", "alice-pw")
    print(f"logged in as {alice.principal}, home {alice.home_path}")

    # Create a segment, write into it through the hardware-checked path.
    segno = alice.create_segment("notes", n_pages=2)
    alice.write_words(segno, [104, 101, 108, 108, 111])
    print(f"wrote 5 words into segment {segno}")

    # Share it with Bob, read-only, via the ACL.
    alice.set_acl("notes", "Bob.Crypto", "r")
    bob = system.login("Bob", "Crypto", "bob-pw")
    bob_segno = bob.initiate(">udd>Crypto>Alice>notes")
    print(f"Bob reads: {bob.read_words(bob_segno, 5)}")

    # Bob's write is stopped by the hardware (his SDW carries no W).
    try:
        bob.write_words(bob_segno, [0])
    except Exception as error:
        print(f"Bob's write denied by hardware: {error}")

    # Drive the user-ring shell.
    shell = Shell(alice)
    shell.run_script(
        """
        mkdir projects
        cd projects
        create report 1
        ls
        who
        """
    )
    print("shell session:")
    for line in shell.output:
        print(f"  | {line}")

    # Every decision was audited.
    print(f"audit: {len(system.audit)} records "
          f"({len(system.audit.denied())} denials)")


if __name__ == "__main__":
    main()
