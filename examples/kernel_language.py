#!/usr/bin/env python3
"""Writing and certifying a kernel module in KPL (footnote 6).

Compiles a page-replacement scoring module in the PL/I-subset kernel
language, certifies the object code against its source model, then
shows the certifier catching a tampered (backdoored) object.

Run:  python examples/kernel_language.py
"""

from repro.errors import CertificationError
from repro.hw.cpu import Instruction, Op
from repro.lang import certify_module, compile_source
from repro.lang.certifier import execute_object

SOURCE = """
/* Score a resident page for eviction: higher = better victim. */
procedure score(used, modified, age);
  declare s;
  s = age;
  if used > 0 then s = s / 2; end;
  if modified > 0 then s = s - 1; end;
  return s;
end;

procedure pick(a_used, a_mod, a_age, b_used, b_mod, b_age);
  if score(a_used, a_mod, a_age) >= score(b_used, b_mod, b_age) then
    return 0;
  end;
  return 1;
end;
"""

VECTORS = {
    "score": [[0, 0, 100], [1, 0, 100], [1, 1, 50], [0, 1, 7]],
    "pick": [[0, 0, 9, 1, 1, 9], [1, 0, 2, 0, 0, 8]],
}


def main() -> None:
    obj = compile_source(SOURCE, "page_score")
    print(f"compiled page_score: {len(obj.code)} instructions, "
          f"definitions {sorted(obj.definitions)}")
    print(f"score(unused, clean, age 100) = "
          f"{execute_object(obj, 'page_score', 'score', [0, 0, 100])}")

    report = certify_module(SOURCE, "page_score", VECTORS, obj=obj)
    print(f"certification: {report.vectors_run} vectors across "
          f"{report.procedures_checked} -> "
          f"{'CERTIFIED' if report.certified else 'FAILED'}")

    # A maintainer "optimizes" the object code... backwards.
    tampered = compile_source(SOURCE, "page_score")
    for i, inst in enumerate(tampered.code):
        if inst.op is Op.GE:
            tampered.code[i] = Instruction(Op.LT)
            break
    try:
        certify_module(SOURCE, "page_score", VECTORS, obj=tampered)
    except CertificationError as error:
        print(f"tampered object rejected: {error}")


if __name__ == "__main__":
    main()
