#!/usr/bin/env python3
"""The paper in one script: legacy supervisor vs security kernel.

Boots both systems, runs the identical workload on each, then shows the
before/after numbers behind the paper's claims — perimeter size,
ring-crossing cost, page-fault path, penetration resistance.

Run:  python examples/before_and_after.py
"""

from repro import MulticsSystem, kernel_config, legacy_config
from repro.kernel import metrics
from repro.security.flaws import run_penetration_suite
from repro.user.object_format import ObjectSegment
from repro.hw.cpu import Instruction as I, Op


def workload(system):
    """One user's day: files, sharing, a dynamically linked program."""
    system.register_user("Alice", "Crypto", "pw")
    session = system.login("Alice", "Crypto", "pw")
    session.create_dir("work")
    session.set_working_dir(f"{session.home_path}>work")
    data = session.create_segment("data", n_pages=2)
    session.write_words(data, list(range(10)))

    lib = ObjectSegment(
        "mathlib",
        code=[I(Op.LOADF, 0), I(Op.LOADF, 0), I(Op.MUL), I(Op.RET)],
        definitions={"square": 0},
    )
    main = ObjectSegment(
        "main",
        code=[I(Op.PUSHI, 12), I(Op.CALLL, 0, 1), I(Op.RET)],
        definitions={"main": 0},
        links=["mathlib$square"],
    )
    lib_segno = session.install_object("mathlib", lib)
    session.install_object("main", main)
    if session.linker is None:          # legacy: in-kernel linker
        session.call("lk_$make_linkage", lib_segno)
    main_segno = session.initiate("main")
    result = session.run_program(main_segno)
    assert result == 144
    return session.process.cpu_cycles


def main() -> None:
    legacy_system = MulticsSystem(legacy_config()).boot()
    kernel_system = MulticsSystem(kernel_config()).boot()

    print("same workload, both systems:")
    legacy_cycles = workload(legacy_system)
    kernel_cycles = workload(kernel_system)
    print(f"  legacy (645 rings, in-kernel linker): {legacy_cycles:>8} cycles")
    print(f"  kernel (6180 rings, user-ring linker): {kernel_cycles:>7} cycles")

    print("\nthe perimeter a certifier must audit:")
    legacy_census = metrics.gate_census(legacy_system.supervisor)
    kernel_census = metrics.gate_census(kernel_system.supervisor)
    print(f"  legacy gates (user-available): {legacy_census.user_available}")
    print(f"  kernel gates (user-available): {kernel_census.user_available}")
    e1 = metrics.linker_removal(legacy_system.supervisor)
    e2 = metrics.linker_and_naming_removal(legacy_system.supervisor)
    print(f"  linker share: {e1.fraction_removed:.1%} (paper: 10%)")
    print(f"  linker+naming share: {e2.fraction_removed:.1%} (paper: ~1/3)")

    print("\nprotected code size (AST statements):")
    print(f"  legacy: {metrics.protected_code_report(legacy_system.supervisor).total}")
    print(f"  kernel: {metrics.protected_code_report(kernel_system.supervisor).total}")

    print("\npenetration exercise (fresh systems):")
    legacy_report = run_penetration_suite(MulticsSystem(legacy_config()).boot())
    kernel_report = run_penetration_suite(MulticsSystem(kernel_config()).boot())
    print(f"  legacy: {legacy_report.successes}/{legacy_report.attempted} "
          f"attacks succeeded -> {legacy_report.successful_attacks()}")
    print(f"  kernel: {kernel_report.successes}/{kernel_report.attempted} "
          "attacks succeeded")


if __name__ == "__main__":
    main()
