"""Setup shim.

The offline environment lacks the `wheel` package, so pip's PEP-660
editable path (which needs bdist_wheel) fails; with setup.py present,
`pip install -e . --no-build-isolation` uses the legacy develop path.
"""
from setuptools import setup

setup()
