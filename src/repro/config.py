"""System-wide configuration for the simulated Multics.

A single :class:`SystemConfig` travels from the top-level facade down to
every substrate so the benches can flip one knob at a time: 645-style
software rings vs 6180 hardware rings, sequential vs dedicated-process
page control, circular vs VM-backed network buffers, bootstrap vs
memory-image initialization, legacy supervisor vs security kernel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan


class RingMode(enum.Enum):
    """Which machine the rings run on.

    The Honeywell 645 simulated rings in software: every cross-ring call
    trapped to the supervisor and cost far more than an in-ring call.  The
    6180 implements rings in hardware, making cross-ring calls cost the
    same as in-ring calls — the paper's precondition for moving functions
    out of the supervisor.
    """

    SOFTWARE_645 = "645"
    HARDWARE_6180 = "6180"


class SupervisorKind(enum.Enum):
    """Which supervisor the system boots."""

    LEGACY = "legacy"          #: the "before" supervisor, everything in ring 0
    SECURITY_KERNEL = "kernel"  #: the minimized "after" kernel


class PageControlKind(enum.Enum):
    """Which page-control design services missing-page faults."""

    SEQUENTIAL = "sequential"  #: cascade executed in the faulting process
    PARALLEL = "parallel"      #: dedicated core-freer / bulk-freer processes


class BufferKind(enum.Enum):
    """Network input buffering strategy."""

    CIRCULAR = "circular"      #: fixed-size ring buffer, reused in place
    INFINITE = "infinite"      #: VM-backed buffer that appears unbounded


class InitKind(enum.Enum):
    """System initialization strategy."""

    BOOTSTRAP = "bootstrap"    #: system bootstraps itself inside the kernel
    IMAGE = "image"            #: pre-built memory image generated in user env


class InterruptKind(enum.Enum):
    """How device interrupts are handled."""

    IN_PROCESS = "in_process"  #: handler inhabits whatever process is running
    DEDICATED = "dedicated"    #: interceptor wakes a dedicated handler process


#: Number of protection rings on the 6180 (0 = most privileged).
NUM_RINGS = 8

#: Ring in which the security kernel executes.
KERNEL_RING = 0

#: Ring in which trusted system software executes in the legacy supervisor.
SUPERVISOR_RING = 1

#: Default ring for ordinary user computations.
USER_RING = 4


@dataclass
class CostModel:
    """Cycle costs charged by the simulated hardware.

    Values are in arbitrary "cycles" of the simulated clock.  Relative
    magnitudes follow the paper's narrative: on the 645 a cross-ring call
    was "quite expensive" relative to an ordinary call; on the 6180 the
    two cost the same.
    """

    instruction: int = 1
    call_in_ring: int = 8
    #: Extra cost of a cross-ring call on the 645 (software ring simulation
    #: trapped into the supervisor, validated the gate, and swapped
    #: descriptor segments by hand).
    cross_ring_penalty_645: int = 400
    #: Extra cost of a cross-ring call on the 6180 (hardware ring checking).
    cross_ring_penalty_6180: int = 0
    #: Primary memory (core) access.
    core_access: int = 1
    #: Full address-translation walk: fetch the SDW from the descriptor
    #: segment, evaluate access and brackets, fetch the PTW.
    translate_walk: int = 3
    #: Translation resolved by the associative memory (one associative
    #: search; on the 6180 this was effectively free relative to the
    #: walk, and that ratio is what makes checking every reference
    #: affordable).
    am_hit: int = 1
    #: Transfer of one page between core and the bulk store.
    bulk_transfer: int = 200
    #: Transfer of one page between core and disk.
    disk_transfer: int = 2000
    #: Cost of delivering an interrupt to an in-process handler (ad hoc
    #: environment save, mask manipulation).
    interrupt_in_process: int = 60
    #: Cost of converting an interrupt into a wakeup of a dedicated process.
    interrupt_to_wakeup: int = 10
    #: Cost of dispatching a job onto a CPU of the SMP complex (connect
    #: and re-load of the processor state).  Zero by default so a
    #: one-CPU complex reproduces the uniprocessor clock exactly
    #: (bench E17's identity leg).
    smp_dispatch: int = 0


@dataclass
class SystemConfig:
    """Everything needed to construct a :class:`repro.system.MulticsSystem`."""

    ring_mode: RingMode = RingMode.HARDWARE_6180
    supervisor: SupervisorKind = SupervisorKind.SECURITY_KERNEL
    page_control: PageControlKind = PageControlKind.PARALLEL
    buffers: BufferKind = BufferKind.INFINITE
    init: InitKind = InitKind.IMAGE
    interrupts: InterruptKind = InterruptKind.DEDICATED

    #: Words per page (Multics used 1024 36-bit words).
    page_size: int = 64
    #: Page frames of primary (core) memory.
    core_frames: int = 32
    #: Page frames of bulk store (drum / paging device).
    bulk_frames: int = 128
    #: Page records of disk.
    disk_frames: int = 4096
    #: Physical processors.
    n_processors: int = 2
    #: Physical CPUs of the SMP execution complex (repro.hw.smp).  None
    #: means "same as n_processors", keeping the two views of the
    #: hardware — the traffic controller's processor slots and the
    #: instruction-executing CPU complex — in step unless a bench pulls
    #: them apart deliberately.
    n_cpus: int | None = None
    #: Fixed number of level-1 virtual processors (paper: "a larger fixed
    #: number of virtual processors").  Must leave room for the
    #: permanently dedicated kernel processes (two page-control freers
    #: and one handler per interrupt line) plus a pool for users.
    n_virtual_processors: int = 16
    #: Scheduler quantum, in cycles.
    quantum: int = 2000
    #: Low-water mark of free core frames maintained by the core freer.
    free_core_target: int = 4
    #: Low-water mark of free bulk-store frames.
    free_bulk_target: int = 8
    #: Capacity (messages) of the circular network buffer (old design).
    net_buffer_capacity: int = 8
    #: Whether freed frames are cleared before reuse.  Turning this off
    #: reintroduces the classic "residue" security flaw, used by the
    #: penetration benches.
    clear_freed_frames: bool = True

    #: Whether the hot cores run their precomputed fast paths: the
    #: discrete-event engine's delay-0 FIFO bucket (repro.hw.clock) and
    #: the CPU's inlined interpreter loop with decoded instructions and
    #: inlined AM probes (repro.hw.cpu).  Architectural results —
    #: grant/deny traces, cycle charges, the final clock — are
    #: byte-identical on or off (bench E18's equivalence leg); only
    #: wall-clock speed changes.  Off is the pre-refactor core.
    fast_path: bool = True

    #: Whether references consult the per-process associative memory
    #: (the 6180 SDW/PTW AM, repro.hw.assoc).  Off re-walks the full
    #: check chain on every reference; architectural results (faults,
    #: values, denials) are identical either way — only cost changes.
    am_enabled: bool = True
    #: Entries per associative memory (bounded LRU).
    am_entries: int = 64

    #: Optional deterministic fault-injection plan (repro.faults.plan).
    #: None means the hardware never fails — the seed behaviour.
    fault_plan: "FaultPlan | None" = None
    #: Optional network topology spec (repro.io.topology.validate_spec
    #: describes the shape).  None builds the default single-uplink
    #: topology around the network attachment.
    topology: dict | None = None
    #: Bounded-retry budget for device and page I/O recovery.
    max_io_retries: int = 3
    #: Base backoff, in simulated cycles, between I/O retries (doubles
    #: per attempt; no wall-clock sleeps anywhere).
    retry_backoff_base: int = 32
    #: Device-completion watchdog timeout, as a multiple of the device
    #: latency (catches hangs and lost completion interrupts).
    device_timeout_factor: int = 8
    #: Injected-fault count at which a page frame is retired from
    #: service when next freed (graceful degradation).
    frame_retire_threshold: int = 3

    #: Opt-in wall-clock profiling of the workload driver: wrap
    #: :meth:`repro.workloads.WorkloadDriver.run` in :mod:`cProfile`
    #: and attach a top-N cumulative dump to the report.  Purely a
    #: wall-clock instrument — simulated results are identical on or
    #: off; it exists to pick the next hot-path optimization target.
    profiling: bool = False
    #: Enable the observability tracer (repro.obs.tracer).  Off by
    #: default: a disabled tracer costs one flag check per emitting
    #: site and zero simulated cycles.
    tracing: bool = False
    #: Enable per-process/per-gate cycle attribution (repro.obs.meters).
    #: On by default; metering never charges simulated cycles either
    #: way (bench E16 asserts the identity).
    metering: bool = True
    #: Security-audit trail level (repro.obs.audit): "all" records
    #: every reference-monitor decision, "deny" only refusals and
    #: errors, "off" nothing.
    audit_level: str = "all"
    #: Ring-buffer capacity of the audit trail, in records.
    audit_capacity: int = 4096
    #: Optional interval timeline sampler + SLO health monitor
    #: (repro.obs.timeline.validate_timeline_config describes the
    #: shape: interval, capacity, rules).  None — the default — builds
    #: neither; like the tracer, sampling costs zero simulated cycles
    #: when enabled (bench E20 asserts the identity).
    timeline: dict | None = None

    costs: CostModel = field(default_factory=CostModel)

    def cpu_count(self) -> int:
        """Physical CPUs in the SMP execution complex."""
        return self.n_processors if self.n_cpus is None else self.n_cpus

    def cross_ring_penalty(self) -> int:
        """Extra cycles a cross-ring call costs under the configured rings."""
        if self.ring_mode is RingMode.SOFTWARE_645:
            return self.costs.cross_ring_penalty_645
        return self.costs.cross_ring_penalty_6180

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical configurations."""
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.core_frames <= 2:
            raise ValueError("need at least 3 core frames")
        if self.bulk_frames < self.core_frames:
            raise ValueError("bulk store smaller than core is not supported")
        if self.disk_frames < self.bulk_frames:
            raise ValueError("disk smaller than bulk store is not supported")
        if self.n_processors < 1:
            raise ValueError("need at least one processor")
        if self.n_cpus is not None and self.n_cpus < 1:
            raise ValueError("need at least one CPU")
        if self.n_virtual_processors < max(self.n_processors,
                                           self.cpu_count()):
            raise ValueError("need at least one virtual processor per CPU")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if self.max_io_retries < 0:
            raise ValueError("max_io_retries cannot be negative")
        if self.retry_backoff_base <= 0:
            raise ValueError("retry_backoff_base must be positive")
        if self.device_timeout_factor <= 1:
            raise ValueError("device_timeout_factor must exceed 1")
        if self.frame_retire_threshold <= 0:
            raise ValueError("frame_retire_threshold must be positive")
        if self.am_entries <= 0:
            raise ValueError("am_entries must be positive (use am_enabled "
                             "to turn the associative memory off)")
        from repro.obs.audit import LEVELS

        if self.audit_level not in LEVELS:
            raise ValueError(f"audit_level must be one of {LEVELS}")
        if self.audit_capacity <= 0:
            raise ValueError("audit_capacity must be positive")
        if self.topology is not None:
            from repro.io.topology import validate_spec

            validate_spec(self.topology)
        if self.timeline is not None:
            from repro.obs.timeline import validate_timeline_config

            validate_timeline_config(self.timeline)
