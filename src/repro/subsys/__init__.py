"""User-constructed protected subsystems.

The paper's fourth non-kernel category: "common mechanisms set up among
a subgroup of system users by their mutual consent", protected in
intermediate rings, entered through the same unified mechanism that
creates processes at login.  The kernel provides the tools (rings,
gates, the unified entry mechanism); it cannot and need not certify
what consenting users build with them.
"""

from repro.subsys.process_creation import make_environment
from repro.subsys.protected_subsystem import (
    ProtectedSubsystem,
    SubsystemEntry,
    SubsystemManager,
)

__all__ = [
    "make_environment",
    "ProtectedSubsystem",
    "SubsystemEntry",
    "SubsystemManager",
]
