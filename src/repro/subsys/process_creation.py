"""The unified environment-creation mechanism (experiment E14).

"A final example of a removal project is the exploration of a
recently-realized equivalence between the mechanics of entering a
protected subsystem and the mechanics of creating a new process in
response to a user's log in.  The goal is to make a single mechanism do
both tasks."

:func:`make_environment` is that single mechanism: given a principal
and a target ring, it manufactures a fresh execution environment — a
process shell with its own descriptor segment and kernel-side state.
Login calls it with the user's authenticated principal and the user
ring; subsystem entry calls it with the *caller's* principal but the
subsystem's (more privileged) ring and the subsystem's code mapped in.
"""

from __future__ import annotations

from repro.proc.process import Process
from repro.security.principal import Principal


def make_environment(
    services,
    principal: Principal,
    ring: int,
    name: str,
    creator: Process | None = None,
) -> Process:
    """Manufacture an execution environment (see module docstring)."""
    process = Process(name, ring=ring, principal=principal)
    services.created_processes[process.pid] = process
    if creator is not None:
        services.process_creators[process.pid] = creator.pid
    services.pstate(process)
    return process
