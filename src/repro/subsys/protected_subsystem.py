"""Protected subsystems in intermediate rings.

A subsystem owns segments whose ring brackets make them writable only
in the subsystem's ring; user-ring callers reach the subsystem only
through its declared entries (ring-bracket call gates).  The kernel
supplies the enforcement; the subsystem supplies the semantics.

This is also the paper's tool against borrowed trojan horses: a
borrowed program wrapped in a protected subsystem "reduce[s] the
potential damage such a borrowed trojan horse can do" — the wrapped
code runs with access to the subsystem's own segments but without the
borrower's full authority, which the test suite demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AccessDenied, InvalidArgument, NoSuchEntry
from repro.hw.rings import RingBrackets
from repro.security.mac import BOTTOM
from repro.subsys.process_creation import make_environment


@dataclass
class SubsystemEntry:
    """One declared entry point into a subsystem."""

    name: str
    handler: Callable[..., object]
    #: Number of (integer/str) arguments the entry accepts.
    n_args: int = 0


@dataclass
class ProtectedSubsystem:
    """A user-constructed common mechanism living in ``ring``."""

    name: str
    ring: int
    owner: str                       #: principal string of the builder
    entries: dict[str, SubsystemEntry] = field(default_factory=dict)
    #: Private data: visible only to code executing in <= ring.
    private_data: dict[str, object] = field(default_factory=dict)
    #: Who may enter (principal person names; empty = everyone).
    members: set[str] = field(default_factory=set)
    calls: int = 0

    def declare(self, name: str, handler: Callable[..., object],
                n_args: int = 0) -> None:
        if name in self.entries:
            raise InvalidArgument(f"entry {name!r} already declared")
        self.entries[name] = SubsystemEntry(name, handler, n_args)

    def brackets(self) -> RingBrackets:
        """Ring brackets of the subsystem's gate segment: executes in
        its own ring, callable from all higher rings through gates."""
        return RingBrackets(self.ring, self.ring, 7)


class SubsystemContext:
    """What subsystem code sees while handling an entry: the caller's
    identity, and the subsystem's private data — nothing else of the
    caller's."""

    def __init__(self, subsystem: ProtectedSubsystem, caller_principal) -> None:
        self.subsystem = subsystem
        self.caller = caller_principal
        self.data = subsystem.private_data


class SubsystemManager:
    """Registry and entry mechanics (the kernel's contribution)."""

    def __init__(self, services) -> None:
        self.services = services
        self._subsystems: dict[str, ProtectedSubsystem] = {}
        self.entries_made = 0

    # -- construction -----------------------------------------------------------

    def create(self, owner_process, name: str, ring: int = 2) -> ProtectedSubsystem:
        if name in self._subsystems:
            raise InvalidArgument(f"subsystem {name!r} already exists")
        if not 1 <= ring < owner_process.ring:
            raise InvalidArgument(
                "a subsystem must live in a ring between the kernel's "
                "and its owner's"
            )
        subsystem = ProtectedSubsystem(
            name=name, ring=ring, owner=str(owner_process.principal)
        )
        self._subsystems[name] = subsystem
        return subsystem

    def get(self, name: str) -> ProtectedSubsystem:
        try:
            return self._subsystems[name]
        except KeyError:
            raise NoSuchEntry(f"no subsystem {name!r}") from None

    # -- entry (the unified mechanism) ------------------------------------------------

    def enter(self, caller_process, name: str, entry: str, *args):
        """Enter a subsystem: the same environment-manufacturing step
        as process creation, then the declared handler in the
        subsystem's ring.
        """
        subsystem = self.get(name)
        if subsystem.members and caller_process.principal.person not in subsystem.members:
            raise AccessDenied(
                f"{caller_process.principal} is not a member of {name!r}"
            )
        gate = subsystem.entries.get(entry)
        if gate is None:
            raise NoSuchEntry(f"subsystem {name!r} has no entry {entry!r}")
        if len(args) != gate.n_args:
            raise InvalidArgument(
                f"{name}${entry} takes {gate.n_args} arguments"
            )
        # The unified mechanism: manufacture the protected environment.
        environment = make_environment(
            self.services,
            caller_process.principal,
            subsystem.ring,
            f"{name}${entry}",
            creator=caller_process,
        )
        self.entries_made += 1
        subsystem.calls += 1
        context = SubsystemContext(subsystem, caller_process.principal)
        try:
            return gate.handler(context, *args)
        finally:
            # The environment is transient (per entry), like a cross-
            # ring call frame.
            self.services.created_processes.pop(environment.pid, None)
            self.services.process_creators.pop(environment.pid, None)
            self.services.drop_pstate(environment)
