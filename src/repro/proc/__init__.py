"""Process implementation and traffic control.

The paper's new process design has **two layers**:

* level 1 (:mod:`repro.proc.virtual_processor`) multiplexes the physical
  processors into a larger *fixed* number of virtual processors and has
  no dependency on the virtual memory;
* level 2 (:mod:`repro.proc.scheduler`) multiplexes the pooled virtual
  processors into any number of full Multics processes.

Several virtual processors are permanently assigned to kernel
processes (page control's freers, interrupt handlers), which is what
lets those mechanisms be written as straightforward asynchronous
processes (experiments E5, E8, E9).
"""

from repro.proc.ipc import Block, Charge, EventChannel, Now, Wakeup
from repro.proc.process import Process, ProcessState
from repro.proc.scheduler import TrafficController
from repro.proc.virtual_processor import VirtualProcessor, VirtualProcessorTable

__all__ = [
    "Block",
    "Charge",
    "EventChannel",
    "Now",
    "Wakeup",
    "Process",
    "ProcessState",
    "TrafficController",
    "VirtualProcessor",
    "VirtualProcessorTable",
]
