"""The two interrupt-handling designs (experiment E8).

Old design (:class:`InProcessDispatch`): the handler body runs at
interrupt time *inside whatever process happened to be executing*, with
further interrupts masked for the duration.  Handlers therefore cannot
block, must be written as straight-line masked code, and steal their
cycles from an innocent process.

New design (:class:`DedicatedProcessDispatch`): "Each interrupt handler
will be assigned its own process in which to execute ... the system
interrupt interceptor will simply turn each interrupt into a wakeup of
the corresponding process."  Handlers become full processes: they may
block, use ordinary IPC, and cost the running process only the few
cycles of a wakeup.

Timing note: handler work in the old design happens synchronously at
interrupt delivery; the simulation charges those cycles to the victim
process's account (and to the controller's masked-time counter) rather
than re-threading the event timeline — the quantities experiment E8
reports are exactly these accounts.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.config import CostModel
from repro.hw.interrupts import Interrupt, InterruptController
from repro.proc.ipc import Block, Charge, EventChannel
from repro.proc.process import Process
from repro.proc.scheduler import TrafficController

#: A handler body: receives the interrupt payload, yields simcalls.
Handler = Callable[[object], Generator]


class _DispatchBase:
    def __init__(
        self,
        controller: InterruptController,
        scheduler: TrafficController,
        costs: CostModel,
    ) -> None:
        self.controller = controller
        self.scheduler = scheduler
        self.costs = costs
        #: Cycles charged to processes that merely happened to be running.
        self.stolen_cycles = 0
        self.handled = 0
        controller.set_interceptor(self._intercept)

    def _steal(self, cycles: int) -> None:
        """Charge ``cycles`` to whatever process is currently running."""
        self.stolen_cycles += cycles
        for processor in self.scheduler.processors:
            if processor.current is not None:
                processor.current.cpu_cycles += cycles
                processor.busy_cycles += cycles
                break

    def _intercept(self, interrupt: Interrupt) -> None:  # pragma: no cover
        raise NotImplementedError


class InProcessDispatch(_DispatchBase):
    """Old design: handlers inhabit the running process, masked."""

    def __init__(self, controller, scheduler, costs) -> None:
        super().__init__(controller, scheduler, costs)
        self._handlers: dict[int, Handler] = {}

    def register(self, line: int, handler: Handler) -> None:
        self._handlers[line] = handler

    def _intercept(self, interrupt: Interrupt) -> None:
        handler = self._handlers.get(interrupt.line)
        if handler is None:
            return
        self.controller.mask()
        cycles = self.costs.interrupt_in_process
        for item in handler(interrupt.payload):
            if isinstance(item, Charge):
                cycles += item.cycles
            elif isinstance(item, Block):
                # The historic constraint the paper is escaping: an
                # in-process handler has no process of its own to block.
                self.controller.unmask()
                raise RuntimeError(
                    "in-process interrupt handler attempted to block"
                )
            # Wakeups are permitted (that is how old handlers signalled
            # waiting processes).
            elif hasattr(item, "channel"):
                self.scheduler.send_wakeup(item.channel, getattr(item, "message", None))
        self._steal(cycles)
        self.controller.masked_cycles += cycles
        self.handled += 1
        self.controller.unmask()


class DedicatedProcessDispatch(_DispatchBase):
    """New design: interceptor converts interrupts into wakeups of
    dedicated handler processes."""

    def __init__(self, controller, scheduler, costs) -> None:
        super().__init__(controller, scheduler, costs)
        self._channels: dict[int, EventChannel] = {}
        self.handler_processes: dict[int, Process] = {}

    def register(self, line: int, handler: Handler) -> Process:
        """Create the dedicated handler process for ``line``."""
        channel = self.scheduler.create_channel(f"interrupt.line.{line}")
        self._channels[line] = channel

        def body(proc: Process):
            while True:
                payload = yield Block(channel)
                yield from handler(payload)
                self.handled += 1

        process = Process(
            f"interrupt_handler_{line}", body=body, ring=0, dedicated=True
        )
        self.handler_processes[line] = process
        self.scheduler.add_process(process)
        return process

    def _intercept(self, interrupt: Interrupt) -> None:
        channel = self._channels.get(interrupt.line)
        if channel is None:
            return
        self._steal(self.costs.interrupt_to_wakeup)
        self.scheduler.send_wakeup(channel, interrupt.payload)
