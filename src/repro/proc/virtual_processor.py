"""Level 1 of the process implementation: virtual processors.

The paper: "The first level multiplexes the processors into a larger
fixed number of virtual processors.  Because the number of virtual
processors is fixed, this first layer need not depend on the facilities
for managing the virtual memory.  Several of the virtual processors are
permanently assigned to implement processes for the dedicated use of
other kernel mechanisms ... while the remaining virtual processors are
multiplexed by the second layer of the process implementation into any
desired number of full Multics processes."

This module therefore knows nothing about segments, pages, or the file
system — the test suite asserts it imports nothing from
:mod:`repro.vm` or :mod:`repro.fs` (experiment E9's structural claim).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.proc.process import Process


class VirtualProcessor:
    """One virtual processor slot."""

    def __init__(self, index: int) -> None:
        self.index = index
        #: Permanently bound kernel process, if any.
        self.dedicated_to: "Process | None" = None
        #: Process currently loaded (for pooled VPs, assigned by level 2).
        self.process: "Process | None" = None

    @property
    def is_dedicated(self) -> bool:
        return self.dedicated_to is not None

    @property
    def is_free(self) -> bool:
        return self.process is None and self.dedicated_to is None

    def __repr__(self) -> str:
        kind = "dedicated" if self.is_dedicated else "pooled"
        who = self.process.name if self.process else "-"
        return f"<VP {self.index} {kind} running={who}>"


class VirtualProcessorTable:
    """The fixed population of virtual processors.

    The table is sized once at boot and never grows — that fixed size is
    what frees level 1 from any dependence on virtual memory (it needs
    no dynamic storage).
    """

    def __init__(self, n_virtual_processors: int) -> None:
        if n_virtual_processors < 2:
            raise ValueError("need at least two virtual processors")
        self._vps = [VirtualProcessor(i) for i in range(n_virtual_processors)]
        self.dedications = 0

    def __len__(self) -> int:
        return len(self._vps)

    def __iter__(self):
        return iter(self._vps)

    def dedicate(self, process: "Process") -> VirtualProcessor:
        """Permanently bind a free VP to a kernel process (boot time).

        At least one VP must always remain in the pool for level 2,
        otherwise no user process could ever run.
        """
        free = [vp for vp in self._vps if vp.is_free]
        if len(free) <= 1:
            raise RuntimeError(
                "cannot dedicate the last pooled virtual processor"
            )
        vp = free[0]
        vp.dedicated_to = process
        vp.process = process
        process.vp = vp
        self.dedications += 1
        return vp

    def acquire(self, process: "Process") -> VirtualProcessor | None:
        """Level 2 loads a user process onto a free pooled VP.

        Returns None when every pooled VP is occupied — the process must
        wait (state ``WAITING_VP``).
        """
        for vp in self._vps:
            if vp.is_free:
                vp.process = process
                process.vp = vp
                return vp
        return None

    def release(self, process: "Process") -> None:
        """Level 2 unloads a process from its pooled VP."""
        vp = process.vp
        if vp is None:
            return
        if vp.is_dedicated:
            raise RuntimeError(
                f"dedicated VP {vp.index} can never be released"
            )
        vp.process = None
        process.vp = None

    @property
    def pooled_free(self) -> int:
        return sum(1 for vp in self._vps if vp.is_free)

    @property
    def pooled_total(self) -> int:
        return sum(1 for vp in self._vps if not vp.is_dedicated)

    @property
    def dedicated_total(self) -> int:
        return sum(1 for vp in self._vps if vp.is_dedicated)
