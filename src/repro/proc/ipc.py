"""Base-level interprocess communication: event channels and wakeups.

Multics IPC is block/wakeup on *event channels*.  A wakeup sent when
nobody is waiting is remembered (the "wakeup waiting" switch), so the
classic lost-wakeup race cannot occur.  Channels also carry optional
messages, delivered FIFO.

The paper's redesign gives the base-level IPC facility "the property
that its use can be controlled with the standard memory protection
mechanisms of the kernel": a channel is addressed through a segment,
and the right to send a wakeup is exactly the right to write that
segment.  That is modelled by the optional ``guard``: the kernel
installs a guard that performs the segment access check against the
sending process, so IPC authorization needs no mechanism of its own.

Simulated processes interact with channels by *yielding* the simcall
objects defined here (:class:`Charge`, :class:`Block`, :class:`Wakeup`,
:class:`Now`); the traffic controller interprets them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import AccessViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.proc.process import Process


class EventChannel:
    """A named rendezvous point for block/wakeup."""

    def __init__(
        self,
        name: str,
        guard: Callable[["Process"], None] | None = None,
    ) -> None:
        self.name = name
        self._guard = guard
        #: Processes blocked on this channel, FIFO.
        self.waiters: deque["Process"] = deque()
        #: Wakeups (with their messages) that arrived with no waiter.
        self.pending: deque[object] = deque()
        # Statistics.
        self.wakeups_sent = 0
        self.wakeups_queued = 0

    def check_sender(self, sender: "Process | None") -> None:
        """Apply the kernel-installed guard.

        The guard raises :class:`AccessViolation` when the sender lacks
        write access to the channel's segment.  ``sender=None`` means
        the wakeup comes from the kernel itself (device completion),
        which is never guarded.
        """
        if self._guard is not None and sender is not None:
            self._guard(sender)

    def has_work(self) -> bool:
        return bool(self.pending)

    def __repr__(self) -> str:
        return (
            f"<EventChannel {self.name!r} waiters={len(self.waiters)} "
            f"pending={len(self.pending)}>"
        )


# ---------------------------------------------------------------------------
# Simcalls: objects a process generator yields to the traffic controller
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Charge:
    """Consume ``cycles`` of processor time."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("cannot charge negative cycles")


@dataclass(frozen=True)
class Block:
    """Wait on ``channel``; the yield expression evaluates to the
    message carried by the wakeup (or None)."""

    channel: EventChannel


@dataclass(frozen=True)
class Wakeup:
    """Send a wakeup (with optional ``message``) to ``channel``.

    If the sending process lacks the access the channel's guard
    demands, the yield raises :class:`AccessViolation` *in the sender*.
    """

    channel: EventChannel
    message: object = None


@dataclass(frozen=True)
class Now:
    """The yield expression evaluates to the current simulated time."""


SimCall = Charge | Block | Wakeup | Now


def guarded_by_segment_write(segno: int):
    """Build a channel guard enforcing 'send == may write the segment'.

    The kernel allocates each channel a home segment; a process may send
    wakeups on the channel exactly when its own SDW for that segment
    permits writing in its current ring.  IPC authorization thereby
    reuses the standard memory protection mechanism, as the paper's new
    base-level IPC design requires.
    """
    from repro.errors import SegmentFault
    from repro.hw.segmentation import Intent, check_access

    def guard(sender: "Process") -> None:
        try:
            sdw = sender.dseg.get(segno)
        except SegmentFault:
            # The sender has not even mapped the channel segment.
            raise AccessViolation(
                f"process {sender.name} cannot address IPC segment {segno}"
            ) from None
        check_access(sdw, sender.ring, Intent.WRITE)

    return guard
