"""Level 2 of the process implementation: the traffic controller.

Multiplexes pooled virtual processors among full processes, interprets
the simcalls yielded by process bodies, and implements block/wakeup.
Dedicated kernel processes (bound to their own virtual processors at
boot) are scheduled ahead of user processes and are never preempted —
the structure the paper's redesigned page control and interrupt
handling rely on.

Execution model: each process body is a generator.  Running a process
means advancing its generator until it yields

* :class:`Charge` — the hosting physical processor is busy for that
  many cycles (simulated via the discrete-event engine), after which
  the process continues, or is preempted if its quantum is spent;
* :class:`Block` — the process parks on an event channel and the
  processor is given to someone else (its pooled virtual processor is
  also surrendered if other processes are waiting for one);
* :class:`Wakeup` — a wakeup is sent (subject to the channel's guard:
  an unauthorized sender gets :class:`AccessViolation` raised *at the
  yield*, exactly as the hardware would reflect a store violation);
* :class:`Now` — the yield evaluates to the current time.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.config import SystemConfig
from repro.errors import AccessViolation
from repro.hw.clock import Simulator
from repro.obs import MetricsRegistry
from repro.proc.ipc import Block, Charge, EventChannel, Now, Wakeup
from repro.proc.process import Process, ProcessState
from repro.proc.virtual_processor import VirtualProcessorTable


class Processor:
    """One physical processor."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.current: Process | None = None
        self.busy_cycles = 0

    @property
    def idle(self) -> bool:
        return self.current is None

    def __repr__(self) -> str:
        who = self.current.name if self.current else "idle"
        return f"<Processor {self.index} {who}>"


class TrafficController:
    """The scheduler: ready queues, dispatch, block/wakeup, preemption."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        metrics: MetricsRegistry | None = None,
        meters=None,
        locks=None,
    ) -> None:
        self.sim = sim
        self.config = config
        #: Optional metering plane (repro.obs.meters): every admitted
        #: process gets an attribution bucket.
        self.meters = meters
        #: The global traffic-control lock: every mutation of the ready
        #: queues and every dispatch decision is made while holding it.
        #: On the discrete-event path (events run serially) acquisition
        #: is free; the SMP complex acquires it with a real owner and
        #: timestamp, so concurrent dispatchers serialize on it.
        if locks is not None:
            self.tc_lock = locks.tc
        else:
            # Deferred import: repro.proc must stay importable without
            # dragging in the kernel package (layering).
            from repro.kernel.locks import KernelLock

            self.tc_lock = KernelLock("tc")
        self.vpt = VirtualProcessorTable(config.n_virtual_processors)
        self.processors = [Processor(i) for i in range(config.cpu_count())]
        self._ready_kernel: deque[Process] = deque()
        self._ready_user: deque[Process] = deque()
        self._vp_wait: deque[Process] = deque()
        self.processes: list[Process] = []
        self.channels: dict[str, EventChannel] = {}
        #: Optional dispatch advisor (the scheduling policy/mechanism
        #: split of repro.proc.sched_policy): given the ready user
        #: processes, returns the index to dispatch next.  Never
        #: consulted for kernel processes.
        self.dispatch_advisor = None
        # Statistics.
        self.dispatches = 0
        self.preemptions = 0
        self.vp_waits = 0
        #: Advisor calls that raised (each falls back to FIFO).
        self.advisor_failures = 0
        if metrics is not None:
            metrics.counter("sched.dispatches", "processes dispatched",
                            source=lambda: self.dispatches)
            metrics.counter("sched.preemptions", "quantum preemptions",
                            source=lambda: self.preemptions)
            metrics.counter("sched.vp_waits",
                            "admissions parked for a virtual processor",
                            source=lambda: self.vp_waits)
            metrics.counter("sched.advisor_failures",
                            "dispatch-advisor exceptions absorbed",
                            source=lambda: self.advisor_failures)
            metrics.gauge("sched.runnable", "ready processes now",
                          source=lambda: self.runnable)
            metrics.gauge("sched.vp_waiting",
                          "processes waiting for a virtual processor",
                          source=lambda: len(self._vp_wait))

    # -- channels ----------------------------------------------------------

    def create_channel(
        self,
        name: str,
        guard: Callable[[Process], None] | None = None,
    ) -> EventChannel:
        """Create (or return the existing) named event channel."""
        if name in self.channels:
            return self.channels[name]
        channel = EventChannel(name, guard=guard)
        self.channels[name] = channel
        return channel

    # -- process admission ---------------------------------------------------

    def add_process(self, process: Process) -> None:
        """Admit a process; dedicated processes get their own VP now."""
        if process in self.processes:
            raise ValueError(f"{process} already admitted")
        self.tc_lock.acquire(self.sim.clock.now)
        self.processes.append(process)
        if self.meters is not None:
            self.meters.track(process)
        process.start()
        if process.dedicated:
            self.vpt.dedicate(process)
            self._make_ready(process)
        else:
            self._admit_user(process)

    def _admit_user(self, process: Process) -> None:
        """Give a pooled process a VP, or park it in FIFO wait order.

        Used both for first admission and for re-admission after a
        blocked process surrendered its VP.
        """
        if self.vpt.acquire(process) is None:
            process.state = ProcessState.WAITING_VP
            self._vp_wait.append(process)
            self.vp_waits += 1
        else:
            self._make_ready(process)

    # -- wakeup (also the device / kernel entry point) -----------------------

    def send_wakeup(
        self,
        channel: EventChannel,
        message: object = None,
        sender: Process | None = None,
    ) -> None:
        """Deliver a wakeup to a channel.

        Raises :class:`AccessViolation` if ``sender`` fails the
        channel's guard; kernel-originated wakeups pass ``sender=None``.
        """
        channel.check_sender(sender)
        self.tc_lock.acquire(self.sim.clock.now)
        channel.wakeups_sent += 1
        if channel.waiters:
            process = channel.waiters.popleft()
            process.wakeups_received += 1
            process._resume_value = message
            self._unblock(process)
        else:
            channel.pending.append(message)
            channel.wakeups_queued += 1

    def _unblock(self, process: Process) -> None:
        if process.dedicated or process.vp is not None:
            self._make_ready(process)
        else:
            self._admit_user(process)

    # -- scheduling core -----------------------------------------------------

    def _make_ready(self, process: Process) -> None:
        process.state = ProcessState.READY
        if process.dedicated:
            self._ready_kernel.append(process)
        else:
            self._ready_user.append(process)
        self._dispatch()

    def _next_ready(self) -> Process | None:
        if self._ready_kernel:
            return self._ready_kernel.popleft()
        if self._ready_user:
            if self.dispatch_advisor is not None and len(self._ready_user) > 1:
                try:
                    index = self.dispatch_advisor(list(self._ready_user))
                except Exception:
                    # A broken advisor costs nothing but its advice:
                    # a raising one must not wedge dispatch.
                    self.advisor_failures += 1
                    index = None
                if isinstance(index, bool):
                    # bool is an int subtype; True/False is broken
                    # advice, not index 1/0 — never let it reorder
                    # dispatch silently.
                    self.advisor_failures += 1
                    index = None
                if isinstance(index, int) and 0 <= index < len(self._ready_user):
                    self._ready_user.rotate(-index)
                    chosen = self._ready_user.popleft()
                    self._ready_user.rotate(index)
                    return chosen
                # A broken advisor costs nothing but its advice: FIFO.
            return self._ready_user.popleft()
        return None

    def _dispatch(self) -> None:
        self.tc_lock.acquire(self.sim.clock.now)
        for processor in self.processors:
            if not processor.idle:
                continue
            process = self._next_ready()
            if process is None:
                return
            processor.current = process
            process.state = ProcessState.RUNNING
            self.dispatches += 1
            quantum = None if process.dedicated else self.config.quantum
            # A process resuming from Block receives the wakeup's message
            # as the value of its yield expression.
            resume = process.__dict__.pop("_resume_value", None)
            self.sim.schedule(
                0,
                lambda p=processor, pr=process, q=quantum, sv=resume: self._step(
                    p, pr, q, sv
                ),
            )

    def _free_processor(self, processor: Processor) -> None:
        processor.current = None
        self._dispatch()

    def _release_vp(self, process: Process) -> None:
        """Surrender a pooled VP if someone is waiting for one."""
        if process.dedicated or process.vp is None:
            return
        if self._vp_wait:
            self.vpt.release(process)
            waiter = self._vp_wait.popleft()
            if self.vpt.acquire(waiter) is None:  # pragma: no cover
                self._vp_wait.appendleft(waiter)
            else:
                self._make_ready(waiter)

    def _retire_vp(self, process: Process) -> None:
        """Give up the VP for good (process stopped)."""
        if process.dedicated or process.vp is None:
            return
        self.vpt.release(process)
        while self._vp_wait:
            waiter = self._vp_wait.popleft()
            if self.vpt.acquire(waiter) is None:  # pragma: no cover
                self._vp_wait.appendleft(waiter)
                break
            self._make_ready(waiter)
            break

    # -- the interpreter loop --------------------------------------------------

    def _step(
        self,
        processor: Processor,
        process: Process,
        quantum_left: int | None,
        send_value: object = None,
        throw: BaseException | None = None,
    ) -> None:
        gen = process.start()
        while True:
            try:
                if throw is not None:
                    item, throw = gen.throw(throw), None
                else:
                    item = gen.send(send_value)
            except StopIteration as stop:
                process.result = stop.value
                process.state = ProcessState.STOPPED
                self._retire_vp(process)
                self._free_processor(processor)
                return
            except BaseException as exc:  # noqa: BLE001 - process crashed
                process.failure = exc
                process.state = ProcessState.FAILED
                self._retire_vp(process)
                self._free_processor(processor)
                return
            send_value = None

            if isinstance(item, Charge):
                cycles = item.cycles
                process.cpu_cycles += cycles
                processor.busy_cycles += cycles
                if quantum_left is not None:
                    quantum_left -= cycles
                    if quantum_left <= 0 and (self._ready_kernel or self._ready_user):
                        # Quantum spent and someone is waiting: finish
                        # this charge, then preempt.
                        self.preemptions += 1
                        process.preemptions += 1
                        self.sim.schedule(
                            cycles,
                            lambda p=processor, pr=process: self._preempt(p, pr),
                        )
                        return
                    if quantum_left <= 0:
                        quantum_left = self.config.quantum  # nobody waiting
                self.sim.schedule(
                    cycles,
                    lambda p=processor, pr=process, q=quantum_left: self._step(
                        p, pr, q
                    ),
                )
                return

            if isinstance(item, Block):
                channel = item.channel
                if channel.pending:
                    send_value = channel.pending.popleft()
                    continue
                process.state = ProcessState.BLOCKED
                channel.waiters.append(process)
                self._release_vp(process)
                self._free_processor(processor)
                return

            if isinstance(item, Wakeup):
                try:
                    self.send_wakeup(item.channel, item.message, sender=process)
                except AccessViolation as violation:
                    throw = violation
                continue

            if isinstance(item, Now):
                send_value = self.sim.clock.now
                continue

            throw = TypeError(f"process yielded unknown simcall {item!r}")

    def _preempt(self, processor: Processor, process: Process) -> None:
        process.state = ProcessState.READY
        if process.dedicated:  # pragma: no cover - dedicated never preempted
            self._ready_kernel.append(process)
        else:
            self._ready_user.append(process)
        self._free_processor(processor)

    # -- resumed process re-entry ----------------------------------------------

    def _resume(self, process: Process) -> None:  # pragma: no cover - unused hook
        self._make_ready(process)

    # -- convenience -------------------------------------------------------------

    def run(self, until: int | None = None, max_events: int = 10_000_000) -> None:
        """Drive the simulation (delegates to the event engine)."""
        self.sim.run(until=until, max_events=max_events)

    def idle_processors(self) -> int:
        return sum(1 for p in self.processors if p.idle)

    @property
    def runnable(self) -> int:
        return len(self._ready_kernel) + len(self._ready_user)
