"""Full Multics processes (level 2 of the two-layer implementation).

A :class:`Process` bundles an address space (descriptor segment), a
current ring of execution, a principal identity, and a *body* — a
Python generator that yields simcalls (:class:`repro.proc.ipc.Charge`,
``Block``, ``Wakeup``, ``Now``) to the traffic controller.  Generator
coroutines give deterministic, single-threaded simulation of genuinely
asynchronous structure, which is exactly what the paper's dedicated
kernel processes (page-control freers, interrupt handlers) need.

Kernel processes are *dedicated*: they are bound permanently to a
level-1 virtual processor at boot and never contend with user
processes for one (experiment E9).
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Callable, Generator

from repro.config import USER_RING
from repro.hw.cpu import CodeSegment, Link
from repro.hw.segmentation import DescriptorSegment

if TYPE_CHECKING:  # pragma: no cover
    from repro.proc.ipc import SimCall


_pid_counter = itertools.count(1)


class ProcessState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    WAITING_VP = "waiting_vp"  #: ready but no pooled virtual processor free
    STOPPED = "stopped"
    FAILED = "failed"


ProcessBody = Callable[["Process"], Generator["SimCall", object, object]]


class Process:
    """One process: address space + ring + principal + body coroutine."""

    def __init__(
        self,
        name: str,
        body: ProcessBody | None = None,
        ring: int = USER_RING,
        principal: object | None = None,
        dedicated: bool = False,
    ) -> None:
        self.pid = next(_pid_counter)
        self.name = name
        self.body = body
        self.ring = ring
        self.home_ring = ring
        self.principal = principal
        #: Dedicated processes belong to the kernel and own their VP.
        self.dedicated = dedicated
        self.state = ProcessState.NEW
        self.dseg = DescriptorSegment()
        #: Code images by segment number (the CPU fetches from these).
        self.code_segments: dict[int, CodeSegment] = {}
        #: The process's linkage section (combined, one per process here).
        self.links: list[Link] = []
        #: Level-1 virtual processor currently hosting this process.
        self.vp = None
        self._gen: Generator | None = None
        # Accounting, read by the benches.
        self.cpu_cycles = 0
        self.page_faults = 0
        self.fault_wait_cycles = 0
        self.wakeups_received = 0
        self.preemptions = 0
        self.result: object = None
        self.failure: BaseException | None = None

    # -- coroutine management (used by the traffic controller) -----------

    def start(self) -> Generator:
        """Instantiate the body generator (idempotent)."""
        if self._gen is None:
            if self.body is None:
                raise ValueError(f"process {self.name} has no body")
            self._gen = self.body(self)
        return self._gen

    @property
    def started(self) -> bool:
        return self._gen is not None

    # -- MachineContext protocol (for the CPU) ----------------------------

    def code_segment(self, segno: int) -> CodeSegment:
        try:
            return self.code_segments[segno]
        except KeyError:
            from repro.errors import SegmentFault

            raise SegmentFault(segno, f"segment {segno} holds no code") from None

    def linkage(self) -> list[Link]:
        return self.links

    def stack_limit(self) -> int:
        return 4096

    # -- misc -------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state not in (ProcessState.STOPPED, ProcessState.FAILED)

    def __repr__(self) -> str:
        return f"<Process {self.pid} {self.name!r} {self.state.value} ring={self.ring}>"
