"""Policy/mechanism separation for the scheduler.

The paper generalizes from page removal: "It appears that the idea of
separating policy from mechanisms applies to all resource management
algorithms."  This module applies it to processor scheduling, in the
same shape as :mod:`repro.vm.policy_mechanism`:

* the **mechanism** (ring 0) owns the ready queue and the dispatch
  machinery; it exposes gates that return *scrubbed* per-candidate
  records (opaque handle, waiting time, CPU consumed, preemption count
  — never a pid, principal, or anything addressable) and accept a
  dispatch choice by handle;
* the **policy** (ring 2) ranks candidates however it likes.

A malicious policy can starve processes — denial of use — and nothing
else: it cannot identify who it is starving, read their memory, or
forge a handle (handles are salted per decision round and validated).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from repro.errors import InvalidArgument
from repro.proc.process import Process
from repro.proc.scheduler import TrafficController


@dataclass(frozen=True)
class CandidateInfo:
    """Everything a scheduling policy may know about a ready process."""

    slot: int
    waiting: int      #: cycles since the process became ready
    cpu_used: int     #: lifetime CPU consumption
    preemptions: int


class SchedulingMechanism:
    """The ring-0 dispatch mechanics, behind a two-gate surface."""

    def __init__(self, scheduler: TrafficController) -> None:
        self._tc = scheduler
        self._round = itertools.count(1)
        self._slots: dict[int, int] = {}   # handle -> queue index
        self._ready_at: dict[int, int] = {}  # pid -> time entered ready
        self.invalid_choices = 0
        self.decisions = 0

    def install(self, policy: "SchedulingPolicy") -> None:
        """Wire the policy into the traffic controller's dispatch."""

        def advisor(ready: list[Process]) -> int:
            return self._decide(policy, ready)

        self._tc.dispatch_advisor = advisor

    def uninstall(self) -> None:
        self._tc.dispatch_advisor = None

    # -- the decision round ----------------------------------------------------

    def _decide(self, policy: "SchedulingPolicy", ready: list[Process]) -> int:
        now = self._tc.sim.clock.now
        salt = next(self._round)
        self._slots = {}
        infos = []
        for index, process in enumerate(ready):
            digest = hashlib.blake2b(
                f"{salt}:{process.pid}".encode(), digest_size=6
            ).digest()
            handle = int.from_bytes(digest, "big")
            self._slots[handle] = index
            self._ready_at.setdefault(process.pid, now)
            infos.append(
                CandidateInfo(
                    slot=handle,
                    waiting=now - self._ready_at[process.pid],
                    cpu_used=process.cpu_cycles,
                    preemptions=process.preemptions,
                )
            )
        self.decisions += 1
        try:
            chosen = policy.choose(infos)
        except Exception:
            # A crashing policy costs only its advice.
            self.invalid_choices += 1
            return 0
        index = self._slots.get(chosen)
        if index is None:
            self.invalid_choices += 1
            return 0  # forged or stale handle: fall back to FIFO
        pid = ready[index].pid
        self._ready_at.pop(pid, None)
        return index


class SchedulingPolicy:
    """Base class for ring-2 scheduling policies."""

    name = "abstract"

    def choose(self, infos: list[CandidateInfo]) -> int:
        """Return the ``slot`` handle of the process to dispatch."""
        raise NotImplementedError


class FifoSchedulingPolicy(SchedulingPolicy):
    """Longest-waiting first (the default behaviour, made explicit)."""

    name = "fifo"

    def choose(self, infos: list[CandidateInfo]) -> int:
        return max(infos, key=lambda i: i.waiting).slot


class FairShareSchedulingPolicy(SchedulingPolicy):
    """Prefer processes that have consumed the least CPU."""

    name = "fair_share"

    def choose(self, infos: list[CandidateInfo]) -> int:
        return min(infos, key=lambda i: (i.cpu_used, -i.waiting)).slot


class StarvingSchedulingPolicy(SchedulingPolicy):
    """Malicious: always dispatches the *heaviest* consumer, starving
    light processes — denial of use, the only lever it has."""

    name = "starver"

    def choose(self, infos: list[CandidateInfo]) -> int:
        return max(infos, key=lambda i: i.cpu_used).slot


class ForgingSchedulingPolicy(SchedulingPolicy):
    """Malicious: answers with fabricated handles; every forgery falls
    back to FIFO, so it cannot even starve anyone reliably."""

    name = "forger"

    def __init__(self) -> None:
        self.attempts = 0

    def choose(self, infos: list[CandidateInfo]) -> int:
        self.attempts += 1
        return 0xDEADBEEF


class SnoopingSchedulingPolicy(SchedulingPolicy):
    """Malicious: records every field it is shown, looking for process
    identity.  Its loot stays limited to the four scrubbed scalars."""

    name = "snooper"

    def __init__(self) -> None:
        self.loot: list[str] = []

    def choose(self, infos: list[CandidateInfo]) -> int:
        for info in infos:
            for field_name in dir(info):
                if field_name.startswith("_"):
                    continue
                if field_name not in ("slot", "waiting", "cpu_used",
                                      "preemptions"):
                    self.loot.append(field_name)
        return max(infos, key=lambda i: i.waiting).slot
