"""Interrupt controller.

Devices raise interrupts on numbered lines.  The *interrupt
interceptor* installed by the operating system decides what an
interrupt becomes:

* old design (:data:`repro.config.InterruptKind.IN_PROCESS`): the
  handler body runs immediately, inhabiting whatever process happened
  to be executing, with further interrupts masked for the duration;
* new design (:data:`repro.config.InterruptKind.DEDICATED`): the
  interceptor merely turns the interrupt into a wakeup of the
  corresponding dedicated handler process (paper, "Another application
  of parallelism...", E8).

The controller itself only models lines, masking, and pending state;
the two interception strategies live in
:mod:`repro.proc.interrupt_procs`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.hw.clock import Clock
from repro.obs import NULL_TRACER


@dataclass
class Interrupt:
    """One interrupt occurrence."""

    line: int
    payload: object
    raised_at: int


class InterruptController:
    """Models the 6180's interrupt cells: per-line pending queues and a
    global mask."""

    def __init__(self, clock: Clock, n_lines: int = 16,
                 metrics=None, tracer=None) -> None:
        if n_lines <= 0:
            raise ValueError("need at least one interrupt line")
        self.clock = clock
        self.n_lines = n_lines
        self.tracer = tracer or NULL_TRACER
        self._pending: deque[Interrupt] = deque()
        self._masked = False
        self._interceptor: Callable[[Interrupt], None] | None = None
        # Statistics for E8.
        self.raised = 0
        self.delivered = 0
        self.masked_cycles = 0
        self._masked_since: int | None = None
        if metrics is not None:
            metrics.counter("intr.raised", "interrupts raised",
                            source=lambda: self.raised)
            metrics.counter("intr.delivered", "interrupts delivered",
                            source=lambda: self.delivered)
            metrics.counter("intr.masked_cycles", "cycles spent masked",
                            source=lambda: self.masked_cycles)
            metrics.gauge("intr.pending", "interrupts awaiting delivery",
                          source=lambda: len(self._pending))

    def set_interceptor(self, fn: Callable[[Interrupt], None]) -> None:
        """Install the OS's interrupt interceptor."""
        self._interceptor = fn

    @property
    def masked(self) -> bool:
        return self._masked

    def mask(self) -> None:
        """Inhibit interrupt delivery (handlers in the old design must
        run masked because they borrow another process's environment)."""
        if not self._masked:
            self._masked = True
            self._masked_since = self.clock.now

    def unmask(self) -> None:
        """Re-enable delivery and drain anything that arrived masked."""
        if self._masked:
            self._masked = False
            if self._masked_since is not None:
                self.masked_cycles += self.clock.now - self._masked_since
                self._masked_since = None
        self._drain()

    def raise_line(self, line: int, payload: object = None) -> None:
        """A device signals ``line``."""
        if not 0 <= line < self.n_lines:
            raise ValueError(f"no interrupt line {line}")
        self.raised += 1
        self._pending.append(Interrupt(line, payload, self.clock.now))
        if not self._masked:
            self._drain()

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def _drain(self) -> None:
        if self._interceptor is None:
            return
        while self._pending and not self._masked:
            interrupt = self._pending.popleft()
            self.delivered += 1
            # The interceptor may mask(), which stops the drain; the
            # remaining interrupts wait for the matching unmask().
            if self.tracer.enabled:
                sid = self.tracer.begin(
                    "interrupt", line=interrupt.line,
                    raised_at=interrupt.raised_at,
                )
                try:
                    self._interceptor(interrupt)
                finally:
                    self.tracer.end(sid)
            else:
                self._interceptor(interrupt)
