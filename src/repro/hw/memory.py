"""Three-level physical memory hierarchy: core, bulk store, disk.

Multics moved pages among primary (core) memory, the bulk store (a fast
drum used as a paging device), and disk.  Each :class:`MemoryLevel`
manages a fixed population of page frames.  Frame *contents* are plain
Python lists of ints standing in for 1024-word Multics pages.

Security note: whether a frame is cleared when freed is configurable.
Failing to clear frames is the classic "residue" flaw (reading another
user's leftover data out of newly allocated storage); the penetration
experiments (E11) exploit exactly this when clearing is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.config import SystemConfig
from repro.errors import ParityError, ReproError, TransientFault

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector


class OutOfFrames(ReproError):
    """A memory level has no free frame.

    Page control is responsible for never letting this surface to users;
    seeing it escape is a bug in a page-control implementation.
    """


@dataclass
class Frame:
    """One page frame at some memory level."""

    index: int
    data: list[int] = field(default_factory=list)

    def clear(self, page_size: int) -> None:
        """Zero the frame (residue elimination)."""
        self.data = [0] * page_size


class MemoryLevel:
    """A fixed pool of page frames with characteristic access latency."""

    def __init__(
        self,
        name: str,
        n_frames: int,
        transfer_cost: int,
        page_size: int,
        clear_on_free: bool = True,
        injector: "FaultInjector | None" = None,
        retire_threshold: int | None = None,
    ) -> None:
        if n_frames <= 0:
            raise ValueError("a memory level needs at least one frame")
        self.name = name
        self.page_size = page_size
        self.transfer_cost = transfer_cost
        self.clear_on_free = clear_on_free
        self.injector = injector
        #: Parity hits at which a frame is retired when next freed
        #: (graceful degradation); None disables retirement.
        self.retire_threshold = retire_threshold
        self._frames = [Frame(i, [0] * page_size) for i in range(n_frames)]
        self._free: list[int] = list(range(n_frames - 1, -1, -1))
        self._allocated: set[int] = set()
        #: Injected parity hits per frame (drives retirement).
        self.fault_counts: dict[int, int] = {}
        #: Frames permanently removed from the free pool.
        self.retired: set[int] = set()
        # Counters for the benches.
        self.allocations = 0
        self.frees = 0

    # -- capacity --------------------------------------------------------

    @property
    def n_frames(self) -> int:
        return len(self._frames)

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def used_count(self) -> int:
        return len(self._allocated)

    # -- allocation ------------------------------------------------------

    def allocate(self) -> int:
        """Take a free frame; raises :class:`OutOfFrames` when exhausted."""
        if not self._free:
            raise OutOfFrames(f"{self.name}: no free frames")
        idx = self._free.pop()
        self._allocated.add(idx)
        self.allocations += 1
        return idx

    def free(self, idx: int) -> None:
        """Return a frame to the free pool, clearing it if configured.

        A frame that has accumulated ``retire_threshold`` parity hits is
        retired instead of being reused — degraded capacity, but no
        future reads through known-bad storage.
        """
        if idx not in self._allocated:
            raise ValueError(f"{self.name}: frame {idx} is not allocated")
        self._allocated.remove(idx)
        if self.clear_on_free:
            self._frames[idx].clear(self.page_size)
        if (
            self.retire_threshold is not None
            and self.fault_counts.get(idx, 0) >= self.retire_threshold
        ):
            self.retired.add(idx)
            if self.injector is not None:
                self.injector.note_degraded(
                    f"memory.{self.name}.frame.{idx}",
                    f"{self.fault_counts[idx]} parity hits; frame retired",
                )
        else:
            self._free.append(idx)
        self.frees += 1

    def is_allocated(self, idx: int) -> bool:
        return idx in self._allocated

    # -- data access -----------------------------------------------------

    def frame(self, idx: int) -> Frame:
        return self._frames[idx]

    def _maybe_parity(self, idx: int, offset: int | None = None) -> None:
        if self.injector is None:
            return
        kind = self.injector.check(
            f"memory.{self.name}.read", detail=f"frame {idx}"
        )
        if kind == "parity":
            self.fault_counts[idx] = self.fault_counts.get(idx, 0) + 1
            raise ParityError(self.name, idx, offset)

    def read(self, idx: int, offset: int) -> int:
        """Read one word from an allocated frame."""
        self._check(idx, offset)
        self._maybe_parity(idx, offset)
        return self._frames[idx].data[offset]

    def write(self, idx: int, offset: int, value: int) -> None:
        """Write one word into an allocated frame."""
        self._check(idx, offset)
        self._frames[idx].data[offset] = value

    def read_page(self, idx: int) -> list[int]:
        """Copy out the whole frame (used for page transfers)."""
        if idx not in self._allocated:
            raise ValueError(f"{self.name}: frame {idx} is not allocated")
        self._maybe_parity(idx)
        return list(self._frames[idx].data)

    def write_page(self, idx: int, data: list[int]) -> None:
        """Replace the whole frame contents (used for page transfers)."""
        if idx not in self._allocated:
            raise ValueError(f"{self.name}: frame {idx} is not allocated")
        if len(data) != self.page_size:
            raise ValueError("page data has the wrong length")
        self._frames[idx].data = list(data)

    def _check(self, idx: int, offset: int) -> None:
        if idx not in self._allocated:
            raise ValueError(f"{self.name}: frame {idx} is not allocated")
        if not 0 <= offset < self.page_size:
            raise ValueError(f"{self.name}: offset {offset} out of page")


class MemoryHierarchy:
    """Core + bulk store + disk, with transfer bookkeeping.

    Transfers are *instantaneous data moves* here; their latency is
    charged by page control through the simulator (the hardware itself
    has no notion of waiting).
    """

    def __init__(
        self,
        config: SystemConfig,
        injector: "FaultInjector | None" = None,
        metrics=None,
    ) -> None:
        costs = config.costs
        clear = config.clear_freed_frames
        self.page_size = config.page_size
        self.injector = injector
        retire = config.frame_retire_threshold if injector is not None else None
        self.core = MemoryLevel(
            "core", config.core_frames, costs.core_access,
            config.page_size, clear_on_free=clear,
            injector=injector, retire_threshold=retire,
        )
        self.bulk = MemoryLevel(
            "bulk", config.bulk_frames, costs.bulk_transfer,
            config.page_size, clear_on_free=clear,
            injector=injector, retire_threshold=retire,
        )
        self.disk = MemoryLevel(
            "disk", config.disk_frames, costs.disk_transfer,
            config.page_size, clear_on_free=clear,
            injector=injector, retire_threshold=retire,
        )
        #: (from_level, to_level) -> count, for the page-control benches.
        self.transfer_counts: dict[tuple[str, str], int] = {}
        if metrics is not None:
            for level in (self.core, self.bulk, self.disk):
                prefix = f"mem.{level.name}"
                metrics.counter(f"{prefix}.allocations", "frames taken",
                                source=lambda lv=level: lv.allocations)
                metrics.counter(f"{prefix}.frees", "frames returned",
                                source=lambda lv=level: lv.frees)
                metrics.gauge(f"{prefix}.free_frames", "free frames now",
                              source=lambda lv=level: lv.free_count)
                metrics.gauge(f"{prefix}.retired_frames",
                              "frames retired by degradation",
                              source=lambda lv=level: len(lv.retired))
            metrics.counter(
                "mem.transfers", "page moves between levels",
                source=lambda: sum(self.transfer_counts.values()),
            )

    def level(self, name: str) -> MemoryLevel:
        try:
            return {"core": self.core, "bulk": self.bulk, "disk": self.disk}[name]
        except KeyError:
            raise ValueError(f"unknown memory level {name!r}") from None

    def transfer(
        self, src: MemoryLevel, src_idx: int, dst: MemoryLevel
    ) -> int:
        """Move a page from ``src`` frame ``src_idx`` into a newly
        allocated frame of ``dst``; frees the source frame.

        Returns the destination frame index.  Raises
        :class:`OutOfFrames` if ``dst`` is full — callers (page control)
        must make room first.
        """
        if self.injector is not None:
            kind = self.injector.check(
                "memory.transfer",
                detail=f"{src.name}[{src_idx}] -> {dst.name}",
            )
            if kind == "transfer_error":
                raise TransientFault(
                    "memory.transfer",
                    f"page move {src.name}[{src_idx}] -> {dst.name} failed",
                )
        # Read before allocating so a parity hit leaks nothing; the
        # source frame is freed only after the copy has landed.
        data = src.read_page(src_idx)
        dst_idx = dst.allocate()
        dst.write_page(dst_idx, data)
        src.free(src_idx)
        key = (src.name, dst.name)
        self.transfer_counts[key] = self.transfer_counts.get(key, 0) + 1
        return dst_idx

    def transfer_cost(self, src: MemoryLevel, dst: MemoryLevel) -> int:
        """Cycles a transfer between these two levels takes (the slower
        of the two endpoints dominates)."""
        return max(src.transfer_cost, dst.transfer_cost)
