"""Segmentation hardware: SDWs, descriptor segments, PTWs, translation.

Every reference by the simulated CPU passes through
:func:`translate`, which enforces, in order:

1. a valid SDW exists for the segment number (else segment fault);
2. the reference is inside the segment's bound (else bounds violation);
3. the executing ring and the SDW's access/brackets permit the intent
   (else access violation) — this is the hardware half of the
   reference monitor;
4. the page is in core (else missing-page fault, serviced by page
   control).

Nothing above the hardware can bypass this path; the kernel differs
from user code only in the SDWs its descriptor segment contains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import (
    AccessViolation,
    BoundsViolation,
    MissingPageFault,
    SegmentFault,
)
from repro.hw.assoc import AssociativeMemory
from repro.hw.rings import RingBrackets


class AccessMode(enum.Flag):
    """Permission bits recorded in an SDW (and in ACL entries)."""

    NONE = 0
    R = enum.auto()
    E = enum.auto()
    W = enum.auto()
    RW = R | W
    RE = R | E
    REW = R | E | W

    @classmethod
    def from_string(cls, text: str) -> "AccessMode":
        """Parse Multics-style mode strings like ``"rw"`` or ``"re"``."""
        mode = cls.NONE
        for ch in text.lower():
            if ch == "r":
                mode |= cls.R
            elif ch == "e":
                mode |= cls.E
            elif ch == "w":
                mode |= cls.W
            elif ch in ("n", " "):
                continue
            else:
                raise ValueError(f"unknown access mode character {ch!r}")
        return mode

    def to_string(self) -> str:
        out = ""
        if self & AccessMode.R:
            out += "r"
        if self & AccessMode.E:
            out += "e"
        if self & AccessMode.W:
            out += "w"
        return out or "n"


class Intent(enum.Enum):
    """What a reference is trying to do."""

    READ = "read"
    WRITE = "write"
    FETCH = "fetch"  #: instruction fetch


@dataclass(slots=True)
class PTW:
    """Page table word: core-residence state of one page.

    ``used`` and ``modified`` are the hardware-maintained bits that
    replacement policies sample (through gates, in the new design — E7).
    Slotted: one PTW exists per page of every active segment, and the
    CPU touches one per reference — the hottest struct in the machine.
    """

    in_core: bool = False
    frame: int | None = None
    used: bool = False
    modified: bool = False

    def place(self, frame: int) -> None:
        self.in_core = True
        self.frame = frame
        self.used = False
        self.modified = False

    def evict(self) -> None:
        self.in_core = False
        self.frame = None


@dataclass
class SDW:
    """Segment descriptor word as seen by one process.

    The access mode and brackets here are *per-process*: the kernel sets
    them from the branch ACL when the segment is added to the process's
    address space, so hardware enforcement and the file-system access
    model coincide.
    """

    segno: int
    access: AccessMode
    brackets: RingBrackets
    page_table: list[PTW] = field(default_factory=list)
    bound: int = 0
    #: Legal gate entry offsets for inward calls, or None if no gates.
    gates: frozenset[int] | None = None
    #: Opaque link back to the owning file-system object (UID).
    uid: int | None = None

    def n_pages(self) -> int:
        return len(self.page_table)


class DescriptorSegment:
    """The per-process table mapping segment numbers to SDWs.

    Carries the process's associative memory: cached results of
    :func:`translate` over these SDWs.  Changing the table fires the
    selective ``cam`` so no cached translation outlives its SDW.
    """

    def __init__(self) -> None:
        self._sdws: dict[int, SDW] = {}
        self.am = AssociativeMemory()

    def add(self, sdw: SDW) -> None:
        if sdw.segno in self._sdws:
            raise ValueError(f"segment number {sdw.segno} already in use")
        self._sdws[sdw.segno] = sdw
        self.am.invalidate_segno(sdw.segno)

    def remove(self, segno: int) -> SDW:
        try:
            sdw = self._sdws.pop(segno)
        except KeyError:
            raise SegmentFault(segno, f"segment {segno} not in address space") from None
        self.am.invalidate_segno(segno)
        return sdw

    def get(self, segno: int) -> SDW:
        try:
            return self._sdws[segno]
        except KeyError:
            raise SegmentFault(segno) from None

    def maybe(self, segno: int) -> SDW | None:
        return self._sdws.get(segno)

    def __contains__(self, segno: int) -> bool:
        return segno in self._sdws

    def __iter__(self):
        return iter(self._sdws.values())

    def __len__(self) -> int:
        return len(self._sdws)

    def segnos(self) -> list[int]:
        return sorted(self._sdws)


def check_access(sdw: SDW, ring: int, intent: Intent) -> None:
    """Raise :class:`AccessViolation` unless ``ring`` may perform
    ``intent`` on the segment described by ``sdw``."""
    if intent is Intent.READ:
        if not (sdw.access & AccessMode.R and sdw.brackets.may_read(ring)):
            raise AccessViolation(
                f"ring {ring} may not read segment {sdw.segno} "
                f"(access {sdw.access.to_string()}, brackets {sdw.brackets!r})"
            )
    elif intent is Intent.WRITE:
        if not (sdw.access & AccessMode.W and sdw.brackets.may_write(ring)):
            raise AccessViolation(
                f"ring {ring} may not write segment {sdw.segno} "
                f"(access {sdw.access.to_string()}, brackets {sdw.brackets!r})"
            )
    elif intent is Intent.FETCH:
        if not sdw.access & AccessMode.E:
            raise AccessViolation(
                f"segment {sdw.segno} is not executable"
            )
        # Ring legality of execution is established at CALL time by
        # rings.call_check; a fetch in a ring outside the execute
        # bracket means the call machinery was bypassed.
        if not (
            sdw.brackets.in_execute_bracket(ring)
            or sdw.brackets.in_call_bracket(ring)
        ):
            raise AccessViolation(
                f"ring {ring} may not execute segment {sdw.segno} "
                f"(brackets {sdw.brackets!r})"
            )
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown intent {intent!r}")


def translate(
    dseg: DescriptorSegment,
    segno: int,
    offset: int,
    ring: int,
    intent: Intent,
    page_size: int,
    am: AssociativeMemory | None = None,
) -> tuple[int, int]:
    """Full address translation; returns ``(core_frame, word_offset)``.

    Raises the appropriate hardware fault when translation cannot
    complete.  Marks the PTW used (and modified, for writes) on success.

    With ``am`` (normally ``dseg.am``), a previously checked
    ``(segno, pageno, ring, intent)`` short-circuits the SDW walk and
    access computation to the cached frame — the 6180 associative
    memory.  A hit still marks the PTW bits, so replacement sampling is
    identical with the cache on or off, and the offset stays bounded by
    the cached SDW bound (see :mod:`repro.hw.assoc` for the
    invalidation contract that keeps the cache honest).
    """
    if offset < 0:
        # Reject before the AM is even probed: a negative offset maps
        # to pageno -1, and no cached entry may ever witness it.
        sdw = dseg.get(segno)
        raise BoundsViolation(
            f"offset {offset} outside bound {sdw.bound} of segment {segno}"
        )
    pageno = offset // page_size
    word = offset - pageno * page_size
    if am is not None:
        hit = am.probe(segno, pageno, ring, intent, offset)
        if hit is not None:
            frame, ptw = hit
            ptw.used = True
            if intent is Intent.WRITE:
                ptw.modified = True
            return frame, word
    sdw = dseg.get(segno)
    if offset >= sdw.bound:
        raise BoundsViolation(
            f"offset {offset} outside bound {sdw.bound} of segment {segno}"
        )
    check_access(sdw, ring, intent)
    ptw = sdw.page_table[pageno]
    if not ptw.in_core or ptw.frame is None:
        raise MissingPageFault(segno, pageno)
    ptw.used = True
    if intent is Intent.WRITE:
        ptw.modified = True
    if am is not None:
        am.insert(segno, pageno, ring, intent, ptw.frame, ptw,
                  sdw.bound, sdw.uid)
    return ptw.frame, word
