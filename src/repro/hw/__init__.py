"""Simulated Honeywell 6180 hardware substrate.

Modules:

* :mod:`repro.hw.clock` — discrete-event simulated time.
* :mod:`repro.hw.memory` — three-level physical memory hierarchy.
* :mod:`repro.hw.segmentation` — SDWs, descriptor segments, PTWs, translation.
* :mod:`repro.hw.rings` — ring brackets, effective-ring rules, call gates.
* :mod:`repro.hw.cpu` — abstract micro-op CPU with cycle accounting.
* :mod:`repro.hw.interrupts` — interrupt controller.
"""

from repro.hw.clock import Clock, Simulator
from repro.hw.memory import MemoryHierarchy, MemoryLevel
from repro.hw.rings import RingBrackets
from repro.hw.segmentation import SDW, PTW, AccessMode, DescriptorSegment

__all__ = [
    "Clock",
    "Simulator",
    "MemoryHierarchy",
    "MemoryLevel",
    "RingBrackets",
    "SDW",
    "PTW",
    "AccessMode",
    "DescriptorSegment",
]
