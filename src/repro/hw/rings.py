"""Ring brackets and the effective-ring access rules.

Implements the Multics ring semantics of Schroeder & Saltzer, "A
Hardware Architecture for Implementing Protection Rings" (CACM 1972),
which the paper relies on: each segment carries three ring numbers
``r1 <= r2 <= r3``:

* **write bracket** ``[0, r1]`` — rings that may write the segment;
* **read bracket** ``[0, r2]`` — rings that may read it;
* **execute bracket** ``[r1, r2]`` — rings in which it executes without
  a ring change;
* **call bracket** ``(r2, r3]`` — rings from which it may be *called*,
  but only through a designated gate entry point, switching execution
  to ring ``r2`` (an inward call).

The module also carries the cost model distinguishing the Honeywell 645
(rings simulated in software; cross-ring calls expensive) from the 6180
(rings in hardware; cross-ring calls cost the same as in-ring calls),
which is the enabling fact for the paper's removal programme (E4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import NUM_RINGS, CostModel, RingMode
from repro.errors import AccessViolation, GateViolation


@dataclass(frozen=True)
class RingBrackets:
    """The triple ``(r1, r2, r3)`` attached to a segment."""

    r1: int
    r2: int
    r3: int

    def __post_init__(self) -> None:
        if not (0 <= self.r1 <= self.r2 <= self.r3 < NUM_RINGS):
            raise ValueError(
                f"invalid ring brackets ({self.r1},{self.r2},{self.r3}): "
                f"need 0 <= r1 <= r2 <= r3 < {NUM_RINGS}"
            )

    # -- predicates ------------------------------------------------------

    def may_write(self, ring: int) -> bool:
        """Ring is inside the write bracket."""
        return 0 <= ring <= self.r1

    def may_read(self, ring: int) -> bool:
        """Ring is inside the read bracket."""
        return 0 <= ring <= self.r2

    def in_execute_bracket(self, ring: int) -> bool:
        """Execution proceeds in the caller's own ring."""
        return self.r1 <= ring <= self.r2

    def in_call_bracket(self, ring: int) -> bool:
        """Caller may only enter through a gate, switching to ring r2."""
        return self.r2 < ring <= self.r3

    def target_ring(self, ring: int) -> int:
        """Ring in which execution proceeds after a call from ``ring``.

        * within the execute bracket: unchanged;
        * within the call bracket: drops inward to ``r2``;
        * below ``r1`` (an outward call): rises to ``r1``.

        Raises :class:`AccessViolation` when ``ring > r3``.
        """
        if self.in_execute_bracket(ring):
            return ring
        if self.in_call_bracket(ring):
            return self.r2
        if ring < self.r1:
            return self.r1
        raise AccessViolation(
            f"ring {ring} is outside the call bracket {self!r}"
        )

    def __repr__(self) -> str:  # compact, used in fault messages
        return f"({self.r1},{self.r2},{self.r3})"


#: Brackets for a pure kernel-internal segment: usable only from ring 0.
KERNEL_ONLY = RingBrackets(0, 0, 0)


def kernel_gate_brackets(highest_caller: int = NUM_RINGS - 1) -> RingBrackets:
    """Brackets for a kernel segment callable (via gates) from user rings."""
    return RingBrackets(0, 0, highest_caller)


def user_brackets(ring: int) -> RingBrackets:
    """Brackets for an ordinary segment owned by code in ``ring``."""
    return RingBrackets(ring, ring, ring)


def call_check(
    brackets: RingBrackets,
    caller_ring: int,
    entry_offset: int,
    gate_entries: frozenset[int] | None,
) -> int:
    """Validate a CALL and return the ring execution continues in.

    ``gate_entries`` is the set of legitimate gate entry offsets recorded
    in the SDW (None means the segment has no gates at all).  An inward
    call that does not land exactly on a gate is a :class:`GateViolation`
    — this is the hardware check that makes the kernel's perimeter
    exactly its declared gate list.
    """
    new_ring = brackets.target_ring(caller_ring)
    if brackets.in_call_bracket(caller_ring):
        if not gate_entries or entry_offset not in gate_entries:
            raise GateViolation(
                f"inward call from ring {caller_ring} to offset "
                f"{entry_offset} is not a declared gate"
            )
    return new_ring


def call_cost(
    costs: CostModel, ring_mode: RingMode, caller_ring: int, new_ring: int
) -> int:
    """Cycles charged for a call, given the machine's ring implementation.

    On the 645 every ring crossing trapped to the software ring
    simulator; on the 6180 the hardware validates the crossing in-line,
    so a cross-ring call costs no more than an in-ring call (the paper's
    E4 claim).
    """
    cost = costs.call_in_ring
    if caller_ring != new_ring:
        if ring_mode is RingMode.SOFTWARE_645:
            cost += costs.cross_ring_penalty_645
        else:
            cost += costs.cross_ring_penalty_6180
    return cost
