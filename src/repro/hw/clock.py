"""Simulated time and the discrete-event core.

Everything in the simulation shares one :class:`Clock`.  The
:class:`Simulator` is a minimal discrete-event engine: callables are
scheduled at absolute times and executed in time order (FIFO within a
time).  The process layer (:mod:`repro.proc.scheduler`) builds
generator-coroutine multiprogramming on top of this engine; devices use
it directly to model transfer latencies.

Fast path (on by default, ``SystemConfig.fast_path``): the scheduler
dispatches almost everything at delay 0, so the common case is an event
whose time is *now*.  Those events go to a FIFO bucket instead of the
heap — they are already in ``(time, seq)`` order, because the clock is
monotonic and the sequence counter is shared — and :meth:`step`
/:meth:`run` pick whichever of bucket head and heap root is earliest.
Event execution order is therefore **identical** with the fast path on
or off; only the heap traffic changes.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable


class Clock:
    """A monotonic cycle counter shared by the whole machine."""

    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0

    @property
    def now(self) -> int:
        """Current simulated time, in cycles."""
        return self._now

    def advance_to(self, time: int) -> None:
        """Move the clock forward to ``time``.

        Time never runs backwards; attempting to is a simulator bug.
        """
        if time < self._now:
            raise ValueError(
                f"clock cannot run backwards ({time} < {self._now})"
            )
        self._now = time

    def advance(self, cycles: int) -> int:
        """Advance by ``cycles`` and return the new time."""
        if cycles < 0:
            raise ValueError("cannot advance by a negative amount")
        self._now += cycles
        return self._now


class Simulator:
    """Discrete-event engine driving the simulated machine.

    Events are ``(time, seq, fn)`` triples; ``seq`` makes ordering
    deterministic for simultaneous events.  Delay-0 events live in a
    FIFO bucket (see module docstring) when the fast path is on; all
    others in a heap.
    """

    __slots__ = ("clock", "fast_path", "_queue", "_bucket", "_seq",
                 "_events_run")

    def __init__(self, clock: Clock | None = None,
                 fast_path: bool = True) -> None:
        self.clock = clock or Clock()
        self.fast_path = fast_path
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        #: Delay-0 events, already sorted by (time, seq): the clock is
        #: monotonic and seq strictly increases across both stores.
        self._bucket: deque[tuple[int, int, Callable[[], None]]] = deque()
        self._seq = itertools.count()
        self._events_run = 0

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        if delay == 0 and self.fast_path:
            self._bucket.append((self.clock._now, next(self._seq), fn))
            return
        heapq.heappush(
            self._queue, (self.clock.now + delay, next(self._seq), fn)
        )

    def schedule_at(self, time: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute time ``time`` (>= now)."""
        if time < self.clock.now:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._queue, (time, next(self._seq), fn))

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._queue) + len(self._bucket)

    def clear_pending(self) -> int:
        """Drop every unexecuted event; returns how many were dropped.

        Models a crash/power failure: in-flight device completions and
        scheduled wakeups simply never happen.  The clock itself is not
        reset — simulated time survives a reboot.
        """
        dropped = len(self._queue) + len(self._bucket)
        self._queue.clear()
        self._bucket.clear()
        return dropped

    @property
    def events_run(self) -> int:
        """Total events executed so far (for sanity limits in tests)."""
        return self._events_run

    def _pop_next(self) -> tuple[int, int, Callable[[], None]]:
        """Remove and return the earliest event across bucket and heap."""
        bucket, queue = self._bucket, self._queue
        if bucket and (not queue or bucket[0] < queue[0]):
            return bucket.popleft()
        return heapq.heappop(queue)

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty.

        An event whose time has already passed — the SMP complex
        advances the shared clock directly, without draining the queue
        — runs immediately at the current clock; the clock never moves
        backwards.
        """
        if not self._queue and not self._bucket:
            return False
        time, _seq, fn = self._pop_next()
        self.clock.advance_to(max(time, self.clock.now))
        self._events_run += 1
        fn()
        return True

    def run(self, until: int | None = None, max_events: int = 10_000_000) -> None:
        """Run events until the queue drains, ``until`` passes, or the
        event budget is exhausted.

        ``max_events`` is a guard against accidental livelock in tests; a
        healthy workload never comes close to it.

        The loop is the hot half of :meth:`step` inlined: one head
        comparison picks bucket vs heap, same-timestamp runs drain
        without extra bookkeeping, and the clock clamp never moves time
        backwards.
        """
        executed = 0
        bucket, queue = self._bucket, self._queue
        clock = self.clock
        heappop = heapq.heappop
        while queue or bucket:
            from_bucket = bucket and (not queue or bucket[0] < queue[0])
            head = bucket[0] if from_bucket else queue[0]
            if until is not None and head[0] > until:
                clock.advance_to(until)
                return
            if executed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded event budget of {max_events}"
                )
            if from_bucket:
                bucket.popleft()
            else:
                heappop(queue)
            time = head[0]
            if time > clock._now:
                clock._now = time
            self._events_run += 1
            head[2]()
            executed += 1
        if until is not None and until > self.clock.now:
            self.clock.advance_to(until)
