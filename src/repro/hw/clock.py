"""Simulated time and the discrete-event core.

Everything in the simulation shares one :class:`Clock`.  The
:class:`Simulator` is a minimal discrete-event engine: callables are
scheduled at absolute times and executed in time order (FIFO within a
time).  The process layer (:mod:`repro.proc.scheduler`) builds
generator-coroutine multiprogramming on top of this engine; devices use
it directly to model transfer latencies.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class Clock:
    """A monotonic cycle counter shared by the whole machine."""

    def __init__(self) -> None:
        self._now = 0

    @property
    def now(self) -> int:
        """Current simulated time, in cycles."""
        return self._now

    def advance_to(self, time: int) -> None:
        """Move the clock forward to ``time``.

        Time never runs backwards; attempting to is a simulator bug.
        """
        if time < self._now:
            raise ValueError(
                f"clock cannot run backwards ({time} < {self._now})"
            )
        self._now = time

    def advance(self, cycles: int) -> int:
        """Advance by ``cycles`` and return the new time."""
        if cycles < 0:
            raise ValueError("cannot advance by a negative amount")
        self._now += cycles
        return self._now


class Simulator:
    """Discrete-event engine driving the simulated machine.

    Events are ``(time, seq, fn)`` triples in a heap; ``seq`` makes
    ordering deterministic for simultaneous events.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or Clock()
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._events_run = 0

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(
            self._queue, (self.clock.now + delay, next(self._seq), fn)
        )

    def schedule_at(self, time: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute time ``time`` (>= now)."""
        if time < self.clock.now:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._queue, (time, next(self._seq), fn))

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._queue)

    def clear_pending(self) -> int:
        """Drop every unexecuted event; returns how many were dropped.

        Models a crash/power failure: in-flight device completions and
        scheduled wakeups simply never happen.  The clock itself is not
        reset — simulated time survives a reboot.
        """
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

    @property
    def events_run(self) -> int:
        """Total events executed so far (for sanity limits in tests)."""
        return self._events_run

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty.

        An event whose time has already passed — the SMP complex
        advances the shared clock directly, without draining the queue
        — runs immediately at the current clock; the clock never moves
        backwards.
        """
        if not self._queue:
            return False
        time, _seq, fn = heapq.heappop(self._queue)
        self.clock.advance_to(max(time, self.clock.now))
        self._events_run += 1
        fn()
        return True

    def run(self, until: int | None = None, max_events: int = 10_000_000) -> None:
        """Run events until the queue drains, ``until`` passes, or the
        event budget is exhausted.

        ``max_events`` is a guard against accidental livelock in tests; a
        healthy workload never comes close to it.
        """
        executed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.clock.advance_to(until)
                return
            if executed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded event budget of {max_events}"
                )
            self.step()
            executed += 1
        if until is not None and until > self.clock.now:
            self.clock.advance_to(until)
