"""The SMP execution complex: N CPUs in deterministic lockstep.

The Honeywell 6180 ran Multics symmetrically on up to six processors;
the paper's traffic controller is "the lowest layer", multiplexing the
real processors, and the kernel's shared tables (ready queues, page
tables, the AST) are guarded by a handful of global locks.  This module
scales the simulator to N instruction-executing CPUs while keeping
every run **bit-for-bit reproducible**:

* **Lockstep rounds.**  Execution proceeds in rounds on the simulated
  clock.  Each round, every busy CPU advances its program by up to one
  scheduler quantum of simulated cycles (busy + stall); the shared
  clock then advances by the *longest* slice.  CPUs are stepped in
  index order inside a round, so the interleaving is a pure function of
  (config, submitted jobs) — no threads, no wall-clock, no host
  scheduling can perturb it.  Same seed + config -> byte-identical
  ``repro.obs/v1`` snapshot.

* **Per-CPU hardware.**  Each CPU owns a private associative memory
  (on the 6180 the AM is processor hardware, not process state),
  cleared by a full cam whenever the CPU is connected to a different
  descriptor segment and listening — like every live AM — to the
  system-wide ``cam_uid``/``cam_all`` broadcasts page control issues
  when a frame moves.

* **Lock discipline.**  Dispatch happens under the global
  traffic-control lock; a missing-page fault is serviced by page
  control under the global page-table lock at the faulting CPU's
  *virtual* time within the round.  When two CPUs fault into the same
  window, the later one waits out the earlier one's hold and the wait
  lands in its ``stall_cycles`` — contention degrades throughput
  exactly where the paper's kernel serializes, and nowhere else.

* **Fault containment.**  A job that dies on a simulated hardware
  error (:class:`repro.errors.ReproError` — illegal instruction,
  access violation, device error from an injected fault during its
  page-in) takes down only its own job; the CPU is idle again next
  round and the complex keeps dispatching.

* **Graceful CPU loss.**  :meth:`SmpComplex.lose_cpu` removes a CPU
  mid-run (the chaos plane's ``cpu.loss`` site): the job it was
  executing is requeued at the *front* of the queue and restarts from
  its entry point on another CPU (:meth:`CPU.stepper` builds fresh
  frames per call, so a restart is clean), the offline CPU is skipped
  by dispatch, and the complex runs on degraded.  Losing a CPU costs
  the interrupted job's elapsed time — denial of use — never its data.
  :meth:`SmpComplex.restore_cpu` is the other half of the arc: an
  offline CPU rejoins dispatch with a cold (cammed) private AM, so a
  chaos scenario can script a full degrade-and-recover window.

A single-CPU complex is cycle-identical to the pre-SMP synchronous
path: no other CPU can hold a lock, so no stalls accrue, dispatch costs
``CostModel.smp_dispatch`` (zero by default), and the clock advances by
exactly the cycles :meth:`repro.hw.cpu.CPU.execute` would have charged
(bench E17 asserts the identity).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.errors import ReproError
from repro.hw.assoc import AssociativeMemory
from repro.hw.clock import Simulator
from repro.hw.cpu import CPU, MachineContext
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer


@dataclass(slots=True)
class CpuJob:
    """One program execution submitted to the complex.

    Inputs mirror :meth:`CPU.execute`; results are filled in when the
    job completes (``result`` on success, ``error`` on a contained
    hardware fault).  Slotted: a workload run carries tens of
    thousands of these.
    """

    ctx: MachineContext
    segno: int
    entry: int = 0
    args: list[int] = field(default_factory=list)
    max_instructions: int = 1_000_000
    label: str = ""
    # -- results -------------------------------------------------------
    result: int | None = None
    error: ReproError | None = None
    cpu_id: int = -1
    #: Simulated times (shared-clock timeline) of dispatch / completion.
    started: int = -1
    finished: int = -1
    #: Busy cycles this job charged and stall cycles it waited.
    cycles: int = 0
    stall_cycles: int = 0
    instructions: int = 0

    @property
    def done(self) -> bool:
        return self.result is not None or self.error is not None


class _Slot:
    """One CPU's current assignment."""

    __slots__ = ("job", "gen", "primed", "c0", "h0", "w0", "x0", "s0",
                 "i0")

    def __init__(self, job: CpuJob, gen) -> None:
        self.job = job
        self.gen = gen
        #: Whether the stepper has run its entry setup (first ``next``)
        #: and parked before instruction one — see CPU.stepper's
        #: driving protocol.
        self.primed = False
        # Per-job counter baselines on the hosting CPU.
        self.c0 = 0
        self.h0 = 0
        self.w0 = 0
        self.x0 = 0
        self.s0 = 0
        self.i0 = 0


class SmpComplex:
    """N instruction-executing CPUs sharing one memory and one kernel."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        core,
        page_control,
        ast,
        tc_lock,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        meters=None,
        n_cpus: int | None = None,
        on_linkage_fault=None,
        timeline=None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.page_control = page_control
        self.ast = ast
        self.tc_lock = tc_lock
        self.tracer = tracer or NULL_TRACER
        self.meters = meters
        #: Optional repro.obs.timeline.TimelineSampler polled at round
        #: boundaries; reads instruments only, zero simulated cycles.
        self.timeline = timeline
        self.n_cpus = config.cpu_count() if n_cpus is None else n_cpus
        if self.n_cpus < 1:
            raise ValueError("need at least one CPU")
        self.cpus: list[CPU] = []
        for i in range(self.n_cpus):
            private_am = (
                AssociativeMemory(capacity=config.am_entries)
                if config.am_enabled else None
            )
            self.cpus.append(CPU(
                core=core,
                costs=config.costs,
                ring_mode=config.ring_mode,
                page_size=config.page_size,
                on_missing_page=self._page_handler(i),
                on_linkage_fault=on_linkage_fault,
                metrics=None,  # cpu.* names belong to the session CPU
                tracer=self.tracer,
                am_enabled=config.am_enabled,
                meters=meters,
                cpu_id=i,
                private_am=private_am,
                fast_path=config.fast_path,
            ))
        self._queue: deque[CpuJob] = deque()
        self._running: list[_Slot | None] = [None] * self.n_cpus
        self._offline = [False] * self.n_cpus
        #: Virtual-time bookkeeping for the current round.
        self._round_base = 0
        self._slice_start = [0] * self.n_cpus
        # Aggregate accounting (fixed metric names; per-CPU numbers go
        # through the meters plane and the bench extras, never into
        # config-dependent metric names).
        self.rounds = 0
        self.dispatches = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.busy_cycles = 0
        self.stall_cycles = 0
        self.elapsed_cycles = 0
        self.cpus_lost = 0
        self.cpus_restored = 0
        self.jobs_requeued = 0
        if metrics is not None:
            metrics.counter("smp.rounds", "lockstep rounds executed",
                            source=lambda: self.rounds)
            metrics.counter("smp.dispatches", "jobs connected to a CPU",
                            source=lambda: self.dispatches)
            metrics.counter("smp.jobs_completed", "jobs that returned",
                            source=lambda: self.jobs_completed)
            metrics.counter("smp.jobs_failed",
                            "jobs contained after a hardware fault",
                            source=lambda: self.jobs_failed)
            metrics.counter("smp.busy_cycles",
                            "cycles CPUs of the complex spent executing",
                            source=lambda: self.busy_cycles)
            metrics.counter("smp.stall_cycles",
                            "cycles CPUs of the complex spent lock-stalled",
                            source=lambda: self.stall_cycles)
            metrics.counter("smp.elapsed_cycles",
                            "simulated clock advanced by the complex",
                            source=lambda: self.elapsed_cycles)
            metrics.gauge("smp.cpus", "CPUs of the complex still online",
                          source=self.online_count)
            metrics.counter("smp.cpus_lost", "CPUs removed mid-run",
                            source=lambda: self.cpus_lost)
            metrics.counter("smp.cpus_restored",
                            "offline CPUs returned to service mid-run",
                            source=lambda: self.cpus_restored)
            metrics.counter("smp.jobs_requeued",
                            "jobs restarted after losing their CPU",
                            source=lambda: self.jobs_requeued)
            metrics.counter("smp.am_hits",
                            "translations served by per-CPU AMs",
                            source=lambda: sum(
                                c.private_am.hits for c in self.cpus
                                if c.private_am is not None
                            ))
            metrics.counter("smp.am_misses",
                            "per-CPU AM misses (full walks)",
                            source=lambda: sum(
                                c.private_am.misses for c in self.cpus
                                if c.private_am is not None
                            ))

    # -- fault plumbing --------------------------------------------------

    def _page_handler(self, index: int):
        """The missing-page callback for CPU ``index``: service the
        fault under the page-table lock at the CPU's virtual time, and
        stall the CPU for the wait + serialized service."""

        def handler(ctx, segno, pageno):
            cpu = self.cpus[index]
            uid = ctx.dseg.get(segno).uid
            spent = self.page_control.service_sync(
                self.ast.get(uid), pageno,
                now=self._vnow(index), owner=cpu,
            )
            cpu.stall(spent)

        return handler

    def _vnow(self, index: int) -> int:
        """CPU ``index``'s virtual time inside the current round."""
        cpu = self.cpus[index]
        progress = (cpu.cycles + cpu.stall_cycles) - self._slice_start[index]
        return self._round_base + progress

    # -- job intake ------------------------------------------------------

    def submit(self, job: CpuJob) -> CpuJob:
        self._queue.append(job)
        return job

    def submit_program(self, ctx: MachineContext, segno: int,
                       entry: int = 0, args: list[int] | None = None,
                       max_instructions: int = 1_000_000,
                       label: str = "") -> CpuJob:
        return self.submit(CpuJob(
            ctx=ctx, segno=segno, entry=entry, args=list(args or []),
            max_instructions=max_instructions, label=label,
        ))

    @property
    def busy(self) -> bool:
        return bool(self._queue) or any(
            slot is not None for slot in self._running
        )

    # -- CPU loss (the chaos plane's cpu.loss site) ----------------------

    def online(self, index: int) -> bool:
        return 0 <= index < self.n_cpus and not self._offline[index]

    def online_count(self) -> int:
        return self.n_cpus - sum(self._offline)

    def last_online(self) -> int:
        """Highest-indexed CPU still online (-1 if none are)."""
        for i in range(self.n_cpus - 1, -1, -1):
            if not self._offline[i]:
                return i
        return -1

    def lose_cpu(self, index: int) -> CpuJob | None:
        """Remove CPU ``index`` from the complex mid-run.

        The job it was executing (if any) is requeued at the front of
        the queue and restarts from its entry point on another CPU —
        lost time, never lost data.  Returns the requeued job.  The
        last online CPU cannot be lost: that would be system loss, not
        degradation.
        """
        if not 0 <= index < self.n_cpus:
            raise ValueError(f"no CPU {index} in a {self.n_cpus}-CPU complex")
        if self._offline[index]:
            raise ValueError(f"CPU {index} is already offline")
        if self.online_count() <= 1:
            raise ValueError("cannot lose the last online CPU")
        self._offline[index] = True
        self.cpus_lost += 1
        slot = self._running[index]
        self._running[index] = None
        requeued: CpuJob | None = None
        if slot is not None:
            requeued = slot.job
            requeued.cpu_id = -1
            requeued.started = -1
            self._queue.appendleft(requeued)
            self.jobs_requeued += 1
        if self.tracer.enabled:
            self.tracer.point(
                "smp_cpu_lost", origin="smp", cpu=index,
                requeued=requeued.label or requeued.segno
                if requeued is not None else None,
            )
        return requeued

    def restore_cpu(self, index: int) -> None:
        """Return an offline CPU to service (the chaos plane's
        ``cpu.restore`` site).

        The CPU rejoins dispatch on the next round with a cold private
        associative memory — a full cam, since translations cached
        before the outage may describe pages that moved while it was
        away.  Restoring is recovery, not a fault: the complex's
        capacity goes back up and the degradation window closes.
        """
        if not 0 <= index < self.n_cpus:
            raise ValueError(f"no CPU {index} in a {self.n_cpus}-CPU complex")
        if not self._offline[index]:
            raise ValueError(f"CPU {index} is already online")
        self._offline[index] = False
        self.cpus_restored += 1
        cpu = self.cpus[index]
        if cpu.private_am is not None:
            cpu.private_am.cam()
        if self.tracer.enabled:
            self.tracer.point("smp_cpu_restored", origin="smp", cpu=index)

    # -- the lockstep engine ---------------------------------------------

    def _dispatch(self) -> None:
        """Connect queued jobs to idle CPUs, in CPU index order, under
        the global traffic-control lock."""
        for i, cpu in enumerate(self.cpus):
            if (self._offline[i] or self._running[i] is not None
                    or not self._queue):
                continue
            stall0 = cpu.stall_cycles
            wait = self.tc_lock.acquire(self._round_base, cpu)
            cost = self.config.costs.smp_dispatch
            if cost:
                self.tc_lock.hold(cost)
            if wait or cost:
                cpu.stall(wait + cost)
            job = self._queue.popleft()
            slot = _Slot(job, cpu.stepper(
                job.ctx, job.segno, job.entry, job.args,
                job.max_instructions,
            ))
            slot.c0, slot.h0 = cpu.cycles, cpu.am_hit_cycles
            slot.w0, slot.x0 = cpu.walk_cycles, cpu.calls_cross_ring
            slot.s0 = stall0
            slot.i0 = cpu.instructions_executed
            job.cpu_id = i
            job.started = self._round_base
            self._running[i] = slot
            self.dispatches += 1

    def _finish(self, index: int, slot: _Slot,
                result: int | None, error: ReproError | None) -> None:
        cpu = self.cpus[index]
        job = slot.job
        job.result = result
        job.error = error
        job.finished = self._vnow(index)
        job.cycles = cpu.cycles - slot.c0
        job.stall_cycles = cpu.stall_cycles - slot.s0
        job.instructions = cpu.instructions_executed - slot.i0
        if error is None:
            self.jobs_completed += 1
        else:
            self.jobs_failed += 1
        if self.meters is not None and self.meters.enabled:
            # The same attribution CPU.execute performs, per job.
            self.meters.note_execution(
                job.ctx,
                job.cycles,
                cpu.am_hit_cycles - slot.h0,
                cpu.walk_cycles - slot.w0,
                cpu.calls_cross_ring - slot.x0,
            )
            self.meters.note_cpu_slice(index, 0, 0, jobs=1)
        if self.tracer.enabled:
            self.tracer.point(
                "smp_job_done", origin="smp", cpu=index,
                label=job.label or job.segno,
                outcome="error" if error is not None else "ok",
                cycles=job.cycles, stalled=job.stall_cycles,
            )
        self._running[index] = None

    def _round(self, quantum: int) -> int:
        """One lockstep round; returns the clock advance."""
        self._round_base = self.sim.clock.now
        # Counter baselines *before* dispatch, so a CPU that stalls on
        # the traffic-control lock spends that wait out of its slice
        # (and the round's clock advance covers it).
        pre = [(cpu.cycles, cpu.stall_cycles) for cpu in self.cpus]
        self._dispatch()
        sid = -1
        if self.tracer.enabled:
            sid = self.tracer.begin(
                "smp_round", round=self.rounds,
                busy_cpus=sum(1 for s in self._running if s is not None),
            )
        advance = 0
        for i, cpu in enumerate(self.cpus):
            slot = self._running[i]
            if slot is None:
                continue
            busy0, stall0 = pre[i]
            start = busy0 + stall0
            self._slice_start[i] = start
            target = start + quantum
            try:
                # Drive the stepper protocol: the priming next() runs
                # entry setup under the same budget condition the old
                # per-instruction loop applied, then each send(target)
                # advances to the cycle target — one resume per
                # instruction for the classic interpreter, one per
                # round for the fast one.
                gen = slot.gen
                while cpu.cycles + cpu.stall_cycles < target:
                    if not slot.primed:
                        next(gen)
                        slot.primed = True
                    else:
                        gen.send(target)
            except StopIteration as stop:
                self._finish(i, slot, stop.value, None)
            except ReproError as exc:
                # Contained: the job dies, the CPU does not.
                self._finish(i, slot, None, exc)
            delta = (cpu.cycles + cpu.stall_cycles) - start
            busy = cpu.cycles - busy0
            stall = cpu.stall_cycles - stall0
            self.busy_cycles += busy
            self.stall_cycles += stall
            if self.meters is not None:
                self.meters.note_cpu_slice(i, busy, stall)
            advance = max(advance, delta)
        if advance:
            self.sim.clock.advance(advance)
            self.elapsed_cycles += advance
        self.rounds += 1
        if self.tracer.enabled:
            self.tracer.end(sid, advance=advance)
        return advance

    def run(self, quantum: int | None = None,
            max_rounds: int = 1_000_000, on_round=None) -> None:
        """Run lockstep rounds until every submitted job is done.

        ``on_round(self)`` is called after each round — the hook the
        chaos engine polls from, and where a driver can drain simulator
        events scheduled during the round (network deliveries).
        """
        q = self.config.quantum if quantum is None else quantum
        if q <= 0:
            raise ValueError("quantum must be positive")
        rounds = 0
        while self.busy:
            self._round(q)
            if on_round is not None:
                on_round(self)
            if self.timeline is not None:
                self.timeline.poll()
            rounds += 1
            if rounds >= max_rounds:
                raise RuntimeError(
                    f"SMP complex still busy after {max_rounds} rounds"
                )

    def run_jobs(self, jobs: list[CpuJob], quantum: int | None = None,
                 on_round=None) -> list[CpuJob]:
        """Submit ``jobs`` and run them all to completion."""
        for job in jobs:
            self.submit(job)
        self.run(quantum=quantum, on_round=on_round)
        return jobs
