"""An abstract CPU for the simulated 6180.

The CPU executes a small stack-machine instruction set.  It is not a
cycle-accurate 6180; it exists so that the protection architecture is
*enforced on a real execution path*: every operand reference goes
through :func:`repro.hw.segmentation.translate` (rings + bounds +
paging), every transfer of control through a CALL is validated by
:func:`repro.hw.rings.call_check` (gate discipline), and every call is
charged the ring-crossing cost of the configured machine (645 software
rings vs 6180 hardware rings — experiment E4).

Instructions live in code segments as a Python list (``SDW`` data pages
hold only *data* words); this keeps the simulation light while leaving
the protection semantics intact, because instruction fetch still
performs the FETCH access check against the code segment's SDW.

Dynamic linking: the ``CALLL`` instruction calls through a *linkage
section*.  An unsnapped link raises a linkage fault which the
environment resolves — in the kernel (legacy supervisor) or in the user
ring (security kernel), which is experiment E1's machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.config import CostModel, RingMode
from repro.errors import IllegalInstruction, MissingPageFault, ReproError
from repro.hw.assoc import AssociativeMemory, fetch_key
from repro.hw.memory import MemoryLevel
from repro.hw.rings import call_check, call_cost
from repro.hw.segmentation import (
    DescriptorSegment,
    Intent,
    check_access,
    translate,
)
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer


class Op(enum.Enum):
    """Stack-machine opcodes."""

    PUSHI = "pushi"    # push immediate
    LOAD = "load"      # push M[seg|off]
    STORE = "store"    # pop -> M[seg|off]
    LOADI = "loadi"    # pop off; push M[seg|off]
    STOREI = "storei"  # pop off, pop v; M[seg|off] = v
    LOADF = "loadf"    # push frame slot i (argument/local)
    STOREF = "storef"  # pop -> frame slot i
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    NOT = "not"
    JMP = "jmp"
    JZ = "jz"
    JNZ = "jnz"
    CALL = "call"      # static call: operands (segno, offset, nargs)
    CALLL = "calll"    # call through linkage-section slot: operands (index, nargs)
    RET = "ret"        # return; top of stack is the return value
    HALT = "halt"
    DUP = "dup"
    POP = "pop"
    SWAP = "swap"


@dataclass(frozen=True, slots=True)
class Instruction:
    op: Op
    a: int = 0
    b: int = 0
    c: int = 0

    def __repr__(self) -> str:
        return f"{self.op.value} {self.a} {self.b} {self.c}".rstrip(" 0") or self.op.value


@dataclass
class CodeSegment:
    """Executable image bound to a segment number.

    ``entry_points`` names the public entries (offset -> name) used by
    gates and by the linker's definitions section.

    The fast interpreter (:meth:`CPU.stepper` with ``fast_path``)
    caches a decoded form of ``instructions`` — plain
    ``(opcode, a, b, c)`` int tuples — on the segment, so a program
    shared by thousands of processes decodes once.  The cache is
    invalidated whenever the instruction list is replaced or resized.
    """

    instructions: list[Instruction]
    entry_points: dict[str, int] = field(default_factory=dict)
    _decoded: list | None = field(default=None, repr=False, compare=False)
    _decoded_src: list | None = field(default=None, repr=False,
                                      compare=False)

    def __len__(self) -> int:
        return len(self.instructions)


#: Op -> small-int opcode, in declaration order; the fast interpreter
#: dispatches on these instead of enum identity.
_OPCODE = {op: i for i, op in enumerate(Op)}

_PUSHI = _OPCODE[Op.PUSHI]
_LOAD = _OPCODE[Op.LOAD]
_STORE = _OPCODE[Op.STORE]
_LOADI = _OPCODE[Op.LOADI]
_STOREI = _OPCODE[Op.STOREI]
_LOADF = _OPCODE[Op.LOADF]
_STOREF = _OPCODE[Op.STOREF]
_ADD = _OPCODE[Op.ADD]
_SUB = _OPCODE[Op.SUB]
_MUL = _OPCODE[Op.MUL]
_DIV = _OPCODE[Op.DIV]
_MOD = _OPCODE[Op.MOD]
_NEG = _OPCODE[Op.NEG]
_EQ = _OPCODE[Op.EQ]
_NE = _OPCODE[Op.NE]
_LT = _OPCODE[Op.LT]
_LE = _OPCODE[Op.LE]
_GT = _OPCODE[Op.GT]
_GE = _OPCODE[Op.GE]
_NOT = _OPCODE[Op.NOT]
_JMP = _OPCODE[Op.JMP]
_JZ = _OPCODE[Op.JZ]
_JNZ = _OPCODE[Op.JNZ]
_CALL = _OPCODE[Op.CALL]
_CALLL = _OPCODE[Op.CALLL]
_RET = _OPCODE[Op.RET]
_HALT = _OPCODE[Op.HALT]
_DUP = _OPCODE[Op.DUP]
_POP = _OPCODE[Op.POP]
_SWAP = _OPCODE[Op.SWAP]


#: "No cycle target": the fast interpreter runs to completion.
_NO_TARGET = float("inf")


def _decoded_for(code: CodeSegment) -> list[tuple[int, int, int, int]]:
    """The decoded-instruction cache for ``code`` (build if stale)."""
    decoded = code._decoded
    if (decoded is None or code._decoded_src is not code.instructions
            or len(decoded) != len(code.instructions)):
        decoded = [(_OPCODE[i.op], i.a, i.b, i.c)
                   for i in code.instructions]
        code._decoded = decoded
        code._decoded_src = code.instructions
    return decoded


@dataclass
class Link:
    """One slot in a linkage section."""

    symbol: str                 # "segment$entry" symbolic reference
    snapped: bool = False
    segno: int = -1
    offset: int = -1


class LinkageFault(ReproError):
    """A CALLL went through an unsnapped link; the environment's linkage
    fault handler must snap it and restart the instruction."""

    def __init__(self, index: int, link: Link):
        self.index = index
        self.link = link
        super().__init__(f"linkage fault on link {index} ({link.symbol})")


class MachineContext(Protocol):
    """What the CPU needs to know about the executing process."""

    dseg: DescriptorSegment
    ring: int

    def stack_limit(self) -> int: ...
    def code_segment(self, segno: int) -> CodeSegment: ...
    def linkage(self) -> list[Link]: ...


@dataclass(slots=True)
class _Frame:
    return_segno: int
    return_pc: int
    return_ring: int
    slots: list[int]
    stack_base: int


class ExecutionLimit(ReproError):
    """The instruction budget was exhausted (runaway program)."""


class CPU:
    """Executes code segments for one context at a time.

    The CPU charges cycles to an internal counter; callers (the process
    layer, the benches) read :attr:`cycles` or diff it around a call.
    """

    def __init__(
        self,
        core: MemoryLevel,
        costs: CostModel,
        ring_mode: RingMode,
        page_size: int,
        on_missing_page: Callable[[MachineContext, int, int], None] | None = None,
        on_linkage_fault: Callable[[MachineContext, int], None] | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        am_enabled: bool = True,
        meters=None,
        cpu_id: int = 0,
        private_am: AssociativeMemory | None = None,
        fast_path: bool = False,
    ) -> None:
        self.core = core
        self.costs = costs
        self.ring_mode = ring_mode
        self.page_size = page_size
        self.on_missing_page = on_missing_page
        self.on_linkage_fault = on_linkage_fault
        self.tracer = tracer or NULL_TRACER
        #: Consult an associative memory on every reference and
        #: instruction fetch.
        self.am_enabled = am_enabled
        #: Optional metering plane (repro.obs.meters): :meth:`execute`
        #: attributes its cycle deltas to the executing context.
        self.meters = meters
        #: Which CPU of the complex this is (0 on a uniprocessor).
        self.cpu_id = cpu_id
        #: Run the inlined interpreter loop (decoded instructions,
        #: inlined AM probes, hoisted attribute chains).  Cycle charges,
        #: counters, and fault behaviour are byte-identical to the
        #: classic loop — bench E18's equivalence leg holds the two
        #: against each other.
        self.fast_path = fast_path
        #: A per-CPU associative memory, as on the real 6180 where the
        #: AM is processor hardware, not process state.  When set, it is
        #: used *instead of* the per-process ``ctx.dseg.am`` and cleared
        #: (full cam) whenever the CPU is connected to a different
        #: descriptor segment — the dseg switch the hardware cams on.
        self.private_am = private_am
        self._am_dseg: DescriptorSegment | None = None
        self.cycles = 0
        #: Cycles this CPU spent stalled — waiting out another CPU's
        #: kernel-lock hold window plus serialized fault service.  Kept
        #: apart from :attr:`cycles` so the uniprocessor cycle counts
        #: (and every pre-SMP bench identity) are untouched; the SMP
        #: complex advances the shared clock by busy + stall.
        self.stall_cycles = 0
        #: Counters for the benches.  The two translation-cost splits
        #: partition every translation cycle charged above: cycles ==
        #: am_hit_cycles + walk_cycles + (instruction, call and core
        #: access costs).
        self.calls_in_ring = 0
        self.calls_cross_ring = 0
        self.instructions_executed = 0
        self.am_hit_cycles = 0
        self.walk_cycles = 0
        if metrics is not None:
            metrics.counter("cpu.cycles", "simulated cycles charged",
                            source=lambda: self.cycles)
            metrics.counter("cpu.instructions", "instructions executed",
                            source=lambda: self.instructions_executed)
            metrics.counter("cpu.calls_in_ring", "same-ring calls",
                            source=lambda: self.calls_in_ring)
            metrics.counter("cpu.calls_cross_ring", "ring-crossing calls",
                            source=lambda: self.calls_cross_ring)
            metrics.counter("cpu.am_hit_cycles",
                            "translation cycles served by the AM",
                            source=lambda: self.am_hit_cycles)
            metrics.counter("cpu.walk_cycles",
                            "translation cycles spent on full walks",
                            source=lambda: self.walk_cycles)
            metrics.counter("cpu.stall_cycles",
                            "cycles stalled on kernel locks",
                            source=lambda: self.stall_cycles)
        if meters is not None:
            meters.register_cpu(self)

    def stall(self, cycles: int) -> None:
        """Charge lock-wait / serialized-service cycles to this CPU."""
        self.stall_cycles += cycles

    def _am_for(self, ctx: MachineContext) -> AssociativeMemory | None:
        """The associative memory consulted for ``ctx``'s references.

        With a private (per-CPU) AM, connecting the CPU to a different
        descriptor segment cams it first: entries witnessed against the
        previous process's dseg must never satisfy another process's
        references.
        """
        if not self.am_enabled:
            return None
        if self.private_am is None:
            return ctx.dseg.am
        if self._am_dseg is not ctx.dseg:
            if self._am_dseg is not None:
                self.private_am.cam()
            self._am_dseg = ctx.dseg
        return self.private_am

    # -- memory helpers ---------------------------------------------------

    def _translate(self, ctx: MachineContext, segno: int, offset: int,
                   intent: Intent) -> tuple[int, int]:
        """One checked reference, with page faults serviced and the
        translation cost (AM hit vs full walk) charged."""
        am = self._am_for(ctx)
        while True:
            try:
                if am is None:
                    located = translate(
                        ctx.dseg, segno, offset, ctx.ring, intent,
                        self.page_size,
                    )
                    self.cycles += self.costs.translate_walk
                    self.walk_cycles += self.costs.translate_walk
                    return located
                hits_before = am.hits
                located = translate(
                    ctx.dseg, segno, offset, ctx.ring, intent,
                    self.page_size, am=am,
                )
                if am.hits != hits_before:
                    self.cycles += self.costs.am_hit
                    self.am_hit_cycles += self.costs.am_hit
                else:
                    self.cycles += self.costs.translate_walk
                    self.walk_cycles += self.costs.translate_walk
                return located
            except MissingPageFault as fault:
                self.cycles += self.costs.translate_walk
                self.walk_cycles += self.costs.translate_walk
                self._service_page_fault(ctx, fault)

    def _read(self, ctx: MachineContext, segno: int, offset: int) -> int:
        frame, word = self._translate(ctx, segno, offset, Intent.READ)
        self.cycles += self.costs.core_access
        return self.core.read(frame, word)

    def _write(self, ctx: MachineContext, segno: int, offset: int, value: int) -> None:
        frame, word = self._translate(ctx, segno, offset, Intent.WRITE)
        self.cycles += self.costs.core_access
        self.core.write(frame, word, value)

    def _service_page_fault(self, ctx: MachineContext, fault: MissingPageFault) -> None:
        if self.on_missing_page is None:
            raise fault
        self.on_missing_page(ctx, fault.segno, fault.pageno)

    # -- execution --------------------------------------------------------

    def execute(
        self,
        ctx: MachineContext,
        segno: int,
        entry: int = 0,
        args: list[int] | None = None,
        max_instructions: int = 1_000_000,
    ) -> int:
        """Run from ``segno|entry`` until HALT or a RET from the initial
        frame.  Returns the value on top of the stack (0 if empty).

        Hardware faults other than missing-page and linkage faults
        propagate to the caller — in the full system the supervisor
        reflects them to the faulting process; in tests they are the
        assertion of interest.
        """
        if self.meters is None or not self.meters.enabled:
            return self._execute(ctx, segno, entry, args, max_instructions)
        # Attribute this run's cycle deltas to the executing context,
        # even if it faults out: the counters are plain ints, so the
        # simulated cost is identical with metering on or off.
        c0, h0 = self.cycles, self.am_hit_cycles
        w0, x0 = self.walk_cycles, self.calls_cross_ring
        try:
            return self._execute(ctx, segno, entry, args, max_instructions)
        finally:
            self.meters.note_execution(
                ctx,
                self.cycles - c0,
                self.am_hit_cycles - h0,
                self.walk_cycles - w0,
                self.calls_cross_ring - x0,
            )

    def _execute(
        self,
        ctx: MachineContext,
        segno: int,
        entry: int = 0,
        args: list[int] | None = None,
        max_instructions: int = 1_000_000,
    ) -> int:
        runner = self.stepper(ctx, segno, entry, args, max_instructions)
        try:
            while True:
                next(runner)
        except StopIteration as stop:
            return stop.value

    def stepper(
        self,
        ctx: MachineContext,
        segno: int,
        entry: int = 0,
        args: list[int] | None = None,
        max_instructions: int = 1_000_000,
    ):
        """A resumable execution: a generator returning the program's
        result via StopIteration.

        This is the SMP complex's hook: it advances each CPU's runner a
        bounded number of cycles per lockstep round, giving a
        deterministic interleaving on the simulated clock.  Unlike
        :meth:`execute`, no metering wrap is applied — the complex
        attributes cycles itself, per slice.

        Protocol: the first ``next()`` runs entry setup and parks before
        the first instruction.  After that the driver advances it with
        ``send(target)`` — the classic loop yields before *every*
        instruction (``send`` ≡ ``next``, the value is ignored), while
        the fast loop runs instructions until
        ``cycles + stall_cycles >= target`` and only then yields.
        ``send(None)`` (what plain ``next()`` does) means "no target":
        the fast loop runs to completion.  Instruction boundaries are
        identical either way because both loops test the same condition
        before each instruction.
        """
        if self.fast_path:
            return self._run_fast(ctx, segno, entry, args, max_instructions)
        return self._run(ctx, segno, entry, args, max_instructions)

    def _run(
        self,
        ctx: MachineContext,
        segno: int,
        entry: int = 0,
        args: list[int] | None = None,
        max_instructions: int = 1_000_000,
    ):
        code = ctx.code_segment(segno)
        # Instruction fetch legality for the *initial* transfer: treat it
        # like a call from the current ring.
        sdw = ctx.dseg.get(segno)
        new_ring = call_check(sdw.brackets, ctx.ring, entry, sdw.gates)
        self.cycles += call_cost(self.costs, self.ring_mode, ctx.ring, new_ring)
        self._count_call(ctx.ring, new_ring)

        stack: list[int] = []
        frames: list[_Frame] = [
            _Frame(-1, -1, ctx.ring, list(args or []), 0)
        ]
        ctx.ring = new_ring
        pc = entry
        executed = 0
        am = self._am_for(ctx)

        while True:
            yield
            if executed >= max_instructions:
                raise ExecutionLimit(
                    f"exceeded {max_instructions} instructions"
                )
            if not 0 <= pc < len(code.instructions):
                raise IllegalInstruction(
                    f"pc {pc} outside code segment {segno}"
                )
            # Instruction fetch check: the executing ring must still be
            # allowed to execute this segment.  The AM caches the
            # decision per (segno, ring); every invalidation that could
            # change it (SDW swap, revocation, teardown) clears it.
            if am is not None and am.fetch_probe(segno, ctx.ring):
                self.cycles += self.costs.am_hit
                self.am_hit_cycles += self.costs.am_hit
            else:
                sdw = ctx.dseg.get(segno)
                check_access(sdw, ctx.ring, Intent.FETCH)
                self.cycles += self.costs.translate_walk
                self.walk_cycles += self.costs.translate_walk
                if am is not None:
                    am.fetch_insert(segno, ctx.ring, sdw.uid)

            inst = code.instructions[pc]
            pc += 1
            executed += 1
            self.instructions_executed += 1
            self.cycles += self.costs.instruction
            op = inst.op

            if op is Op.PUSHI:
                stack.append(inst.a)
            elif op is Op.LOAD:
                stack.append(self._read(ctx, inst.a, inst.b))
            elif op is Op.STORE:
                self._write(ctx, inst.a, inst.b, self._pop(stack))
            elif op is Op.LOADI:
                offset = self._pop(stack)
                stack.append(self._read(ctx, inst.a, offset))
            elif op is Op.STOREI:
                offset = self._pop(stack)
                value = self._pop(stack)
                self._write(ctx, inst.a, offset, value)
            elif op is Op.LOADF:
                frame = frames[-1]
                self._check_slot(frame, inst.a)
                stack.append(frame.slots[inst.a])
            elif op is Op.STOREF:
                frame = frames[-1]
                self._check_slot(frame, inst.a, grow=True)
                frame.slots[inst.a] = self._pop(stack)
            elif op in _BINOPS:
                rhs = self._pop(stack)
                lhs = self._pop(stack)
                stack.append(_BINOPS[op](lhs, rhs))
            elif op is Op.NEG:
                stack.append(-self._pop(stack))
            elif op is Op.NOT:
                stack.append(0 if self._pop(stack) else 1)
            elif op is Op.DUP:
                stack.append(stack[-1])
            elif op is Op.POP:
                self._pop(stack)
            elif op is Op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op is Op.JMP:
                pc = inst.a
            elif op is Op.JZ:
                if self._pop(stack) == 0:
                    pc = inst.a
            elif op is Op.JNZ:
                if self._pop(stack) != 0:
                    pc = inst.a
            elif op is Op.CALL:
                segno, code, pc = self._do_call(
                    ctx, frames, stack, segno, pc,
                    inst.a, inst.b, inst.c,
                )
            elif op is Op.CALLL:
                target = self._resolve_link(ctx, inst.a)
                segno, code, pc = self._do_call(
                    ctx, frames, stack, segno, pc,
                    target[0], target[1], inst.b,
                )
            elif op is Op.RET:
                result = stack.pop() if stack else 0
                frame = frames.pop()
                ctx.ring = frame.return_ring
                if not frames:
                    return result
                stack.append(result)
                segno = frame.return_segno
                code = ctx.code_segment(segno)
                pc = frame.return_pc
            elif op is Op.HALT:
                return stack[-1] if stack else 0
            else:  # pragma: no cover - enum is closed
                raise IllegalInstruction(f"cannot execute {op!r}")

    def _run_fast(
        self,
        ctx: MachineContext,
        segno: int,
        entry: int = 0,
        args: list[int] | None = None,
        max_instructions: int = 1_000_000,
    ):
        """The inlined interpreter loop (see :meth:`stepper` for the
        driving protocol).

        Architecturally identical to :meth:`_run`: same checks in the
        same order, same cycle charges, same counters, same faults.
        What changes is the Python: instructions are decoded to int
        tuples once per code segment, the AM probe and the translate
        hit case are inlined (any non-hit falls back to the classic
        :meth:`_translate` *before* touching a counter), cost constants
        and bound methods are hoisted out of the loop, and the
        generator suspends once per cycle target instead of once per
        instruction.

        Counter updates are *batched* (the profiling hook's single
        biggest finding): the pure-hit loop accumulates cycle, hit,
        and instruction deltas in locals and folds them into the
        instance counters only at a boundary — a quantum yield, any
        classic-path excursion (translate walk, fetch miss, call,
        linkage), a return, or an exception (the ``finally`` below).
        No event runs and nothing reads the counters between
        boundaries, so every *observable* value — what the SMP round
        accounting, the mid-fault virtual clock, the meters, and the
        snapshot see — is identical to the eager classic loop; only
        the per-instruction attribute writes disappear.
        """
        code = ctx.code_segment(segno)
        sdw = ctx.dseg.get(segno)
        new_ring = call_check(sdw.brackets, ctx.ring, entry, sdw.gates)
        self.cycles += call_cost(self.costs, self.ring_mode, ctx.ring, new_ring)
        self._count_call(ctx.ring, new_ring)

        stack: list[int] = []
        frames: list[_Frame] = [
            _Frame(-1, -1, ctx.ring, list(args or []), 0)
        ]
        ctx.ring = new_ring
        pc = entry
        executed = 0
        am = self._am_for(ctx)

        # Hoisted loop invariants.
        costs = self.costs
        inst_cost = costs.instruction
        hit_cost = costs.am_hit
        walk_cost = costs.translate_walk
        core_cost = costs.core_access
        hit_core = hit_cost + core_cost
        page_size = self.page_size
        core_read = self.core.read
        core_write = self.core.write
        translate_slow = self._translate
        dseg = ctx.dseg
        entries = am._entries if am is not None else None
        R, W, F = Intent.READ, Intent.WRITE, Intent.FETCH
        ring = ctx.ring
        decoded = _decoded_for(code)
        n_inst = len(decoded)
        fkey = fetch_key(segno, ring)

        target = yield
        # Pending counter deltas (see docstring): folded into the
        # instance counters at every boundary, never observable stale.
        cyc = 0      # -> self.cycles
        hits = 0     # -> am.hits
        hitc = 0     # -> self.am_hit_cycles
        wlkc = 0     # -> self.walk_cycles (AM-off fetch walks)
        ninst = 0    # -> self.instructions_executed
        base = self.cycles
        stall = self.stall_cycles
        try:
            while True:
                limit = target if target is not None else _NO_TARGET
                while base + cyc + stall < limit:
                    if executed >= max_instructions:
                        raise ExecutionLimit(
                            f"exceeded {max_instructions} instructions"
                        )
                    if not 0 <= pc < n_inst:
                        raise IllegalInstruction(
                            f"pc {pc} outside code segment {segno}"
                        )
                    # Instruction fetch check (same order and counters
                    # as AssociativeMemory.fetch_probe + the classic
                    # walk).
                    if entries is not None:
                        if fkey in entries:
                            hits += 1
                            cyc += hit_cost
                            hitc += hit_cost
                        else:
                            # Boundary: run the miss at live counters.
                            self.cycles += cyc
                            self.walk_cycles += wlkc
                            self.instructions_executed += ninst
                            if hits:
                                am.hits += hits
                                self.am_hit_cycles += hitc
                            cyc = hits = hitc = wlkc = ninst = 0
                            am.misses += 1
                            sdw = dseg.get(segno)
                            check_access(sdw, ring, F)
                            self.cycles += walk_cost
                            self.walk_cycles += walk_cost
                            am.fetch_insert(segno, ring, sdw.uid)
                            base = self.cycles
                    else:
                        sdw = dseg.get(segno)
                        check_access(sdw, ring, F)
                        cyc += walk_cost
                        wlkc += walk_cost

                    op, a, b, c = decoded[pc]
                    pc += 1
                    executed += 1
                    ninst += 1
                    cyc += inst_cost

                    if op == _PUSHI:
                        stack.append(a)
                    elif op == _LOAD or op == _LOADI:
                        if op == _LOAD:
                            off = b
                        else:
                            if not stack:
                                raise IllegalInstruction(
                                    "operand stack underflow"
                                )
                            off = stack.pop()
                        if entries is not None and off >= 0:
                            pg = off // page_size
                            e = entries.get((a, pg, ring, R))
                            if e is not None:
                                fr, ptw, bnd = e
                                if (off < bnd and ptw.in_core
                                        and ptw.frame == fr):
                                    hits += 1
                                    cyc += hit_core
                                    hitc += hit_cost
                                    ptw.used = True
                                    stack.append(
                                        core_read(fr, off - pg * page_size)
                                    )
                                    continue
                        # Boundary: a fault inside the walk reads the
                        # live counters for its virtual time.
                        self.cycles += cyc
                        self.walk_cycles += wlkc
                        self.instructions_executed += ninst
                        if hits:
                            am.hits += hits
                            self.am_hit_cycles += hitc
                        cyc = hits = hitc = wlkc = ninst = 0
                        fr, word = translate_slow(ctx, a, off, R)
                        self.cycles += core_cost
                        base = self.cycles
                        stall = self.stall_cycles
                        stack.append(core_read(fr, word))
                    elif op == _STORE or op == _STOREI:
                        if op == _STORE:
                            off = b
                            if not stack:
                                raise IllegalInstruction(
                                    "operand stack underflow"
                                )
                            value = stack.pop()
                        else:
                            if not stack:
                                raise IllegalInstruction(
                                    "operand stack underflow"
                                )
                            off = stack.pop()
                            if not stack:
                                raise IllegalInstruction(
                                    "operand stack underflow"
                                )
                            value = stack.pop()
                        if entries is not None and off >= 0:
                            pg = off // page_size
                            e = entries.get((a, pg, ring, W))
                            if e is not None:
                                fr, ptw, bnd = e
                                if (off < bnd and ptw.in_core
                                        and ptw.frame == fr):
                                    hits += 1
                                    cyc += hit_core
                                    hitc += hit_cost
                                    ptw.used = True
                                    ptw.modified = True
                                    core_write(
                                        fr, off - pg * page_size, value
                                    )
                                    continue
                        self.cycles += cyc
                        self.walk_cycles += wlkc
                        self.instructions_executed += ninst
                        if hits:
                            am.hits += hits
                            self.am_hit_cycles += hitc
                        cyc = hits = hitc = wlkc = ninst = 0
                        fr, word = translate_slow(ctx, a, off, W)
                        self.cycles += core_cost
                        base = self.cycles
                        stall = self.stall_cycles
                        core_write(fr, word, value)
                    elif op == _LOADF:
                        frame = frames[-1]
                        slots = frame.slots
                        if 0 <= a < len(slots):
                            stack.append(slots[a])
                        else:
                            self._check_slot(frame, a)
                    elif op == _STOREF:
                        frame = frames[-1]
                        self._check_slot(frame, a, grow=True)
                        if not stack:
                            raise IllegalInstruction(
                                "operand stack underflow"
                            )
                        frame.slots[a] = stack.pop()
                    elif _ADD <= op <= _GE and op != _NEG:
                        if not stack:
                            raise IllegalInstruction(
                                "operand stack underflow"
                            )
                        rhs = stack.pop()
                        if not stack:
                            raise IllegalInstruction(
                                "operand stack underflow"
                            )
                        lhs = stack.pop()
                        if op == _ADD:
                            stack.append(lhs + rhs)
                        elif op == _SUB:
                            stack.append(lhs - rhs)
                        elif op == _MUL:
                            stack.append(lhs * rhs)
                        elif op == _EQ:
                            stack.append(int(lhs == rhs))
                        elif op == _NE:
                            stack.append(int(lhs != rhs))
                        elif op == _LT:
                            stack.append(int(lhs < rhs))
                        elif op == _LE:
                            stack.append(int(lhs <= rhs))
                        elif op == _GT:
                            stack.append(int(lhs > rhs))
                        elif op == _GE:
                            stack.append(int(lhs >= rhs))
                        elif op == _DIV:
                            stack.append(_div(lhs, rhs))
                        else:
                            stack.append(_mod(lhs, rhs))
                    elif op == _JMP:
                        pc = a
                    elif op == _JZ:
                        if not stack:
                            raise IllegalInstruction(
                                "operand stack underflow"
                            )
                        if stack.pop() == 0:
                            pc = a
                    elif op == _JNZ:
                        if not stack:
                            raise IllegalInstruction(
                                "operand stack underflow"
                            )
                        if stack.pop() != 0:
                            pc = a
                    elif op == _NEG:
                        if not stack:
                            raise IllegalInstruction(
                                "operand stack underflow"
                            )
                        stack.append(-stack.pop())
                    elif op == _NOT:
                        if not stack:
                            raise IllegalInstruction(
                                "operand stack underflow"
                            )
                        stack.append(0 if stack.pop() else 1)
                    elif op == _DUP:
                        stack.append(stack[-1])
                    elif op == _POP:
                        if not stack:
                            raise IllegalInstruction(
                                "operand stack underflow"
                            )
                        stack.pop()
                    elif op == _SWAP:
                        stack[-1], stack[-2] = stack[-2], stack[-1]
                    elif op == _CALL:
                        # Boundary: call_cost reads the live counters.
                        self.cycles += cyc
                        self.walk_cycles += wlkc
                        self.instructions_executed += ninst
                        if hits:
                            am.hits += hits
                            self.am_hit_cycles += hitc
                        cyc = hits = hitc = wlkc = ninst = 0
                        segno, code, pc = self._do_call(
                            ctx, frames, stack, segno, pc, a, b, c,
                        )
                        base = self.cycles
                        stall = self.stall_cycles
                        ring = ctx.ring
                        decoded = _decoded_for(code)
                        n_inst = len(decoded)
                        fkey = fetch_key(segno, ring)
                    elif op == _CALLL:
                        self.cycles += cyc
                        self.walk_cycles += wlkc
                        self.instructions_executed += ninst
                        if hits:
                            am.hits += hits
                            self.am_hit_cycles += hitc
                        cyc = hits = hitc = wlkc = ninst = 0
                        tgt = self._resolve_link(ctx, a)
                        segno, code, pc = self._do_call(
                            ctx, frames, stack, segno, pc, tgt[0], tgt[1], b,
                        )
                        base = self.cycles
                        stall = self.stall_cycles
                        ring = ctx.ring
                        decoded = _decoded_for(code)
                        n_inst = len(decoded)
                        fkey = fetch_key(segno, ring)
                    elif op == _RET:
                        result = stack.pop() if stack else 0
                        frame = frames.pop()
                        ctx.ring = frame.return_ring
                        ring = frame.return_ring
                        if not frames:
                            return result
                        stack.append(result)
                        segno = frame.return_segno
                        code = ctx.code_segment(segno)
                        pc = frame.return_pc
                        decoded = _decoded_for(code)
                        n_inst = len(decoded)
                        fkey = fetch_key(segno, ring)
                    elif op == _HALT:
                        return stack[-1] if stack else 0
                    else:  # pragma: no cover - enum is closed
                        raise IllegalInstruction(
                            f"cannot execute opcode {op}"
                        )
                # Quantum boundary: fold the pending deltas so the SMP
                # round accounting sees exact values while suspended.
                self.cycles += cyc
                self.walk_cycles += wlkc
                self.instructions_executed += ninst
                if hits:
                    am.hits += hits
                    self.am_hit_cycles += hitc
                cyc = hits = hitc = wlkc = ninst = 0
                target = yield
                base = self.cycles
                stall = self.stall_cycles
        finally:
            # Returns and contained faults exit through here: fold
            # whatever is pending so job accounting stays exact.
            self.cycles += cyc
            self.walk_cycles += wlkc
            self.instructions_executed += ninst
            if hits:
                am.hits += hits
                self.am_hit_cycles += hitc

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _pop(stack: list[int]) -> int:
        if not stack:
            raise IllegalInstruction("operand stack underflow")
        return stack.pop()

    @staticmethod
    def _check_slot(frame: _Frame, index: int, grow: bool = False) -> None:
        if index < 0:
            raise IllegalInstruction(f"negative frame slot {index}")
        if index >= len(frame.slots):
            if not grow or index >= 4096:
                if not grow:
                    raise IllegalInstruction(
                        f"frame slot {index} not initialized"
                    )
                raise IllegalInstruction("frame too large")
            frame.slots.extend([0] * (index + 1 - len(frame.slots)))

    def _count_call(self, old_ring: int, new_ring: int) -> None:
        if old_ring == new_ring:
            self.calls_in_ring += 1
        else:
            self.calls_cross_ring += 1
            if self.tracer.enabled:
                self.tracer.point(
                    "ring_crossing", origin="cpu",
                    from_ring=old_ring, to_ring=new_ring,
                )

    def _do_call(
        self,
        ctx: MachineContext,
        frames: list[_Frame],
        stack: list[int],
        caller_segno: int,
        return_pc: int,
        target_segno: int,
        target_offset: int,
        nargs: int,
    ) -> tuple[int, CodeSegment, int]:
        sdw = ctx.dseg.get(target_segno)
        new_ring = call_check(sdw.brackets, ctx.ring, target_offset, sdw.gates)
        self.cycles += call_cost(self.costs, self.ring_mode, ctx.ring, new_ring)
        self._count_call(ctx.ring, new_ring)
        if nargs > len(stack):
            raise IllegalInstruction("not enough arguments on stack")
        slots = stack[len(stack) - nargs:] if nargs else []
        del stack[len(stack) - nargs:]
        frames.append(
            _Frame(caller_segno, return_pc, ctx.ring, list(slots), len(stack))
        )
        ctx.ring = new_ring
        code = ctx.code_segment(target_segno)
        return target_segno, code, target_offset

    def _resolve_link(self, ctx: MachineContext, index: int) -> tuple[int, int]:
        links = ctx.linkage()
        if not 0 <= index < len(links):
            raise IllegalInstruction(f"no linkage slot {index}")
        link = links[index]
        if not link.snapped:
            if self.on_linkage_fault is None:
                raise LinkageFault(index, link)
            self.on_linkage_fault(ctx, index)
            link = ctx.linkage()[index]
            if not link.snapped:
                raise LinkageFault(index, link)
        return link.segno, link.offset


_BINOPS = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.DIV: lambda a, b: _div(a, b),
    Op.MOD: lambda a, b: _mod(a, b),
    Op.EQ: lambda a, b: int(a == b),
    Op.NE: lambda a, b: int(a != b),
    Op.LT: lambda a, b: int(a < b),
    Op.LE: lambda a, b: int(a <= b),
    Op.GT: lambda a, b: int(a > b),
    Op.GE: lambda a, b: int(a >= b),
}


def _div(a: int, b: int) -> int:
    if b == 0:
        raise IllegalInstruction("division by zero")
    return int(a / b)  # truncate toward zero, like the hardware


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise IllegalInstruction("modulo by zero")
    return a - _div(a, b) * b
