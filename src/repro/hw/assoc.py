"""Associative memory: the simulated 6180 SDW/PTW translation cache.

The paper's reference-monitor argument requires *every* reference to
pass SDW access + bracket checks and a PTW residence check
(:func:`repro.hw.segmentation.translate`).  The real 6180 made that
affordable with small associative memories holding recently used SDWs
and PTWs, so the full descriptor walk ran only on an AM miss.  This
module models that cache: a bounded LRU, per process (the simulated
analogue of per-CPU, since a process's descriptor segment defines its
translation context), keyed on ``(segno, pageno, ring, intent)`` and
holding the *result* of a complete check chain — the core frame plus
the PTW that witnessed it.

Security invariant — the cache must never outlive the decision it
caches.  Two mechanisms enforce it:

1. **Explicit invalidation** (the Multics ``cam`` — clear associative
   memory — instruction, and its selective descendants).  Every kernel
   action that changes a translation's inputs clears the affected
   entries: SDW add/remove (:class:`~repro.hw.segmentation.
   DescriptorSegment`), ACL/brackets revocation (``KernelServices.
   revoke_branch_access``), page eviction and placement
   (:mod:`repro.vm.page_control`), and address-space teardown.
   Cross-process events (a page leaving core affects every process
   sharing the segment) broadcast through :func:`cam_uid` /
   :func:`cam_all` to every live AM, exactly as the 6180's connect
   mechanism fired ``cam`` on every CPU.

2. **Witness checks on hit** (:meth:`AssociativeMemory.probe`).  A hit
   is honoured only if the cached PTW is still in core in the cached
   frame and the offset is inside the cached bound.  The *access*
   decision has no such cheap authoritative witness — that is what the
   explicit ``cam`` on revocation exists for — but residence staleness
   can never leak a reused frame even if an invalidation hook were
   missed.

Fetch-legality entries (``pageno == FETCH_PAGENO``) cache the
instruction-fetch access check the CPU otherwise performs per
instruction; they hold no frame and are cleared by the same
invalidations.
"""

from __future__ import annotations

import weakref

#: Default entries per associative memory (the 6180's PTW AM held 16;
#: we default larger because one AM serves a whole process here).
DEFAULT_ENTRIES = 64

#: Pseudo page number keying fetch-legality entries (no frame cached).
FETCH_PAGENO = -1

#: Pseudo intent keying fetch-legality entries, kept private to this
#: module so it can never collide with a real Intent.
_FETCH = object()

#: Every live AM, for the cam broadcast (WeakSet: an AM dies with its
#: descriptor segment and drops out of the broadcast automatically).
_LIVE: "weakref.WeakSet[AssociativeMemory]" = weakref.WeakSet()

#: uid -> the AMs currently caching at least one entry for that object.
#: ``cam_uid`` visits only these instead of every live AM: with a 10k-user
#: population there are 10k+ live AMs but each segment is cached by a
#: handful, and page control fires ``cam_uid`` on *every* page movement.
#: AMs without the uid contributed nothing to the broadcast anyway
#: (``invalidate_uid`` returns 0 before touching any counter), so the
#: restricted walk is observationally identical.
_BY_UID: dict[int, "weakref.WeakSet[AssociativeMemory]"] = {}


def fetch_key(segno: int, ring: int) -> tuple:
    """The cache key of a fetch-legality entry.

    Public so the CPU's fast interpreter can test membership in the
    entry table directly without reconstructing the private intent
    sentinel; :meth:`AssociativeMemory.fetch_probe` remains the
    counting lookup.
    """
    return (segno, FETCH_PAGENO, ring, _FETCH)


class AssociativeMemory:
    """Bounded cache of checked translations for one descriptor segment.

    Replacement is round-robin (evict in insertion order), like the
    hardware's replacement cursor: a hit is a pure lookup, with no
    recency bookkeeping on the hot path.

    Slotted: a 10k-user population carries one AM per process, and the
    CPU touches the entry table on every reference.  ``__weakref__``
    stays declared so the ``_LIVE`` cam-broadcast WeakSet keeps
    working.
    """

    __slots__ = ("capacity", "_entries", "_by_segno", "_by_uid",
                 "_key_uid", "hits", "misses", "invalidations", "cams",
                 "capacity_evictions", "__weakref__")

    def __init__(self, capacity: int = DEFAULT_ENTRIES) -> None:
        self.capacity = capacity
        #: key -> (frame, ptw, bound) for translations, None for
        #: fetch-legality entries.  Insertion order is eviction order.
        self._entries: dict[tuple, tuple | None] = {}
        #: Secondary indexes for selective invalidation.
        self._by_segno: dict[int, set[tuple]] = {}
        self._by_uid: dict[int, set[tuple]] = {}
        self._key_uid: dict[tuple, int] = {}
        # Accounting (aggregated into am.* metrics by KernelServices).
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.cams = 0
        self.capacity_evictions = 0
        _LIVE.add(self)

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup ----------------------------------------------------------

    def probe(self, segno: int, pageno: int, ring: int, intent,
              offset: int) -> tuple | None:
        """Return ``(frame, ptw)`` for a still-valid cached translation,
        else None.  Counts the hit/miss; drops entries whose witness
        checks fail (see module docstring)."""
        key = (segno, pageno, ring, intent)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        frame, ptw, bound = entry
        if offset >= bound or not ptw.in_core or ptw.frame != frame:
            # Residence or bound witness failed: the mapping moved
            # underneath the cache.  Never honour it.
            self._drop(key)
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return frame, ptw

    def fetch_probe(self, segno: int, ring: int) -> bool:
        """True if instruction fetch from ``segno`` in ``ring`` was
        already checked and not since invalidated."""
        key = fetch_key(segno, ring)
        if key in self._entries:
            self.hits += 1
            return True
        self.misses += 1
        return False

    # -- insertion -------------------------------------------------------

    def insert(self, segno: int, pageno: int, ring: int, intent,
               frame: int, ptw, bound: int, uid: int | None) -> None:
        """Record one fully checked translation."""
        self._insert((segno, pageno, ring, intent), (frame, ptw, bound),
                     segno, uid)

    def fetch_insert(self, segno: int, ring: int, uid: int | None) -> None:
        """Record one fully checked fetch-legality decision."""
        self._insert(fetch_key(segno, ring), None, segno, uid)

    def _insert(self, key, value, segno, uid) -> None:
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.pop(key)
        while len(self._entries) >= self.capacity:
            self._drop(next(iter(self._entries)))
            self.capacity_evictions += 1
        self._entries[key] = value
        self._by_segno.setdefault(segno, set()).add(key)
        if uid is not None:
            keys = self._by_uid.get(uid)
            if keys is None:
                self._by_uid[uid] = {key}
                index = _BY_UID.get(uid)
                if index is None:
                    index = _BY_UID[uid] = weakref.WeakSet()
                index.add(self)
            else:
                keys.add(key)
            self._key_uid[key] = uid

    # -- invalidation ----------------------------------------------------

    def _drop(self, key) -> None:
        self._entries.pop(key, None)
        segno = key[0]
        keys = self._by_segno.get(segno)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_segno[segno]
        uid = self._key_uid.pop(key, None)
        if uid is not None:
            ukeys = self._by_uid.get(uid)
            if ukeys is not None:
                ukeys.discard(key)
                if not ukeys:
                    del self._by_uid[uid]
                    self._unindex(uid)

    def _unindex(self, uid: int) -> None:
        """Leave the global uid index once nothing is cached for it."""
        index = _BY_UID.get(uid)
        if index is not None:
            index.discard(self)
            if not index:
                del _BY_UID[uid]

    def invalidate_segno(self, segno: int) -> int:
        """Clear every entry for one segment number (SDW add/remove)."""
        keys = self._by_segno.get(segno)
        if not keys:
            return 0
        dropped = 0
        for key in list(keys):
            self._drop(key)
            dropped += 1
        self.invalidations += dropped
        return dropped

    def invalidate_uid(self, uid: int, pageno: int | None = None) -> int:
        """Clear entries for one file-system object: all of them
        (``pageno=None`` — revocation) or one page's translations
        (page eviction/placement; fetch-legality entries are untouched,
        their decision does not depend on residence)."""
        keys = self._by_uid.get(uid)
        if not keys:
            return 0
        dropped = 0
        for key in list(keys):
            if pageno is not None and key[1] != pageno:
                continue
            self._drop(key)
            dropped += 1
        self.invalidations += dropped
        return dropped

    def cam(self) -> int:
        """Clear associative memory — the 6180 instruction: drop
        everything (address-space teardown, descriptor-segment swap)."""
        dropped = len(self._entries)
        self._entries.clear()
        self._by_segno.clear()
        for uid in list(self._by_uid):
            self._unindex(uid)
        self._by_uid.clear()
        self._key_uid.clear()
        self.cams += 1
        self.invalidations += dropped
        return dropped


# ---------------------------------------------------------------------------
# the cam broadcast (the 6180 "connect": fire cam on every CPU)
# ---------------------------------------------------------------------------

def cam_uid(uid: int | None, pageno: int | None = None) -> int:
    """Invalidate one object's cached translations in *every* live AM.

    Page-control events are expressed in UIDs (a page of segment
    ``uid`` left or entered core) while AM entries are per-process
    segment numbers; the per-AM uid index bridges the two.  Only AMs
    that actually cache the uid are visited (the ``_BY_UID`` index), so
    the broadcast costs O(sharers), not O(live AMs).
    """
    if uid is None:
        return 0
    index = _BY_UID.get(uid)
    if not index:
        if index is not None:
            del _BY_UID[uid]  # every registered AM died; drop the husk
        return 0
    return sum(am.invalidate_uid(uid, pageno) for am in list(index))


def cam_all() -> int:
    """Fire ``cam`` on every live AM (drastic, rarely needed)."""
    return sum(am.cam() for am in list(_LIVE))
