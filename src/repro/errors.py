"""Exception hierarchy for the simulated Multics.

Two families matter:

* :class:`HardwareFault` subclasses model faults raised by the simulated
  Honeywell 6180 hardware (segment faults, page faults, access violations,
  gate violations).  Inside the simulation these are *events*, not errors:
  the supervisor catches and services them (a missing-page fault starts
  page control; an access violation is reflected to the offending process).

* :class:`KernelDenial` subclasses model *refusals* by kernel software:
  a gate rejecting a malformed argument, the reference monitor denying an
  access, the file system reporting a missing entry.

Keeping the families separate matches the paper's framing: the hardware
is the enforcement point of last resort, while kernel software implements
the security model on top of it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Hardware faults (simulated 6180 fault vector)
# ---------------------------------------------------------------------------

class HardwareFault(ReproError):
    """A fault signalled by the simulated hardware."""

    #: Short mnemonic used in fault logs and audit records.
    mnemonic = "fault"


class SegmentFault(HardwareFault):
    """Reference to a segment number with no valid SDW (segment not active)."""

    mnemonic = "segfault"

    def __init__(self, segno: int, message: str = ""):
        self.segno = segno
        super().__init__(message or f"segment fault on segment {segno}")


class MissingPageFault(HardwareFault):
    """Reference to a page whose PTW says it is not in primary memory."""

    mnemonic = "pagefault"

    def __init__(self, segno: int, pageno: int):
        self.segno = segno
        self.pageno = pageno
        super().__init__(f"missing page fault: segment {segno} page {pageno}")


class AccessViolation(HardwareFault):
    """The ring/permission check on a reference failed.

    This is the hardware half of the reference monitor: an SDW grants the
    executing ring no right to perform the attempted reference.
    """

    mnemonic = "access"

    def __init__(self, message: str):
        super().__init__(message)


class GateViolation(AccessViolation):
    """An inward call did not enter through a legitimate gate entry point."""

    mnemonic = "gate"


class BoundsViolation(AccessViolation):
    """Reference beyond the bound recorded in the SDW."""

    mnemonic = "bounds"


class IllegalInstruction(HardwareFault):
    """The CPU decoded an instruction it cannot execute (or a privileged
    instruction attempted outside ring 0)."""

    mnemonic = "illegal"


# ---------------------------------------------------------------------------
# Injected hardware failures and the recovery plane (repro.faults)
# ---------------------------------------------------------------------------

class TransientFault(HardwareFault):
    """A recoverable hardware failure (injected by a fault plan).

    The kernel's recovery layer retries these with bounded backoff in
    simulated time; a transient fault that survives every retry is
    promoted to :class:`DeviceError`.  Like all hardware faults these
    are *events*: containment requires that they can cause only denial
    of use, never an unaudited security decision.
    """

    mnemonic = "transient"

    def __init__(self, site: str, message: str = ""):
        self.site = site
        super().__init__(message or f"transient fault at {site}")


class ParityError(TransientFault):
    """A parity hit on a frame read at some memory level."""

    mnemonic = "parity"

    def __init__(self, level: str, frame: int, offset: int | None = None):
        self.level = level
        self.frame = frame
        self.offset = offset
        where = f"{level} frame {frame}"
        if offset is not None:
            where += f" offset {offset}"
        super().__init__(f"memory.{level}.read", f"parity error reading {where}")


class DeviceError(HardwareFault):
    """A device or transfer path failed for good.

    Raised when bounded retries are exhausted or when an operation is
    attempted on equipment already marked out of service; the caller
    sees denial of use, nothing more.
    """

    mnemonic = "device"


class SalvageNeeded(HardwareFault):
    """The hierarchy (or its shutdown marker) shows crash damage; the
    salvager must run before the entry can be trusted."""

    mnemonic = "salvage"


# ---------------------------------------------------------------------------
# Kernel software denials
# ---------------------------------------------------------------------------

class KernelDenial(ReproError):
    """Base class for refusals issued by kernel software through a gate."""


class InvalidArgument(KernelDenial):
    """A gate rejected a caller-supplied argument before acting on it.

    The paper identifies user-constructed arguments (the linker's input
    segments being the worst case) as a major source of supervisor
    vulnerability; every kernel gate validates its arguments first.
    """


class AccessDenied(KernelDenial):
    """The reference monitor denied the requested access (ACL or MAC)."""


class NoSuchEntry(KernelDenial):
    """A directory lookup failed."""


class NameDuplication(KernelDenial):
    """An entry name already exists in the target directory."""


class QuotaExceeded(KernelDenial):
    """Storage quota would be exceeded by the requested allocation."""


class AuthenticationError(KernelDenial):
    """Login failed: unknown user or wrong password."""


class SpecializationDenial(KernelDenial):
    """A specialized kernel's deny stub refused a gate outside the
    workload profile it was generated for.

    Denial of use, never wrong data: the gate exists (same name, same
    ring brackets, same argument validation), but its handler is a stub
    that refuses and audits through the one funnel every other denial
    uses.
    """


# ---------------------------------------------------------------------------
# User-ring software errors (not security relevant; never raised by kernel)
# ---------------------------------------------------------------------------

class UserRingError(ReproError):
    """Base class for errors raised by non-kernel, user-ring software."""


class LinkageError(UserRingError):
    """The dynamic linker could not resolve a symbolic reference."""


class ObjectFormatError(UserRingError):
    """A purported object segment is malformed.

    In the legacy supervisor this condition surfaces *inside ring 0* (the
    in-kernel linker parses the segment); in the new system it surfaces
    harmlessly in the user ring.
    """


class SearchFailed(UserRingError):
    """Search rules exhausted without locating the requested name."""


class CompilationError(UserRingError):
    """The kernel-language compiler rejected a source program."""


class CertificationError(ReproError):
    """Object code failed conformance checking against its source model."""
