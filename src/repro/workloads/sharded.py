"""Shard-parallel workload execution with a deterministic merge.

One Python process pins the 10k-user engine (E18) to one core.  This
module partitions a seeded population by user UID across N *shards* —
each an independent, deterministically seeded
:class:`~repro.system.MulticsSystem` + :class:`WorkloadDriver` running
in its own OS process under a spawn-context
:class:`multiprocessing.pool.Pool` — and folds the per-shard results
back into one global report.  The design follows MultiK's "many kernel
instances over a shared substrate" scaling unit: shards share nothing
at runtime, so the reference-monitor guarantees hold per shard and the
merge is pure bookkeeping.

Determinism contract (bench E19 asserts all three):

* same seed + same shard count → byte-identical merged documents
  (``canonical_json``), independent of worker scheduling order;
* 1 shard in-process equals the unsharded ``WorkloadDriver`` exactly —
  same report numbers, same snapshot;
* the serial fallback (``multiprocessing`` unavailable or refused)
  produces the same bytes as the process pool, just slower.

Wall-clock numbers (the only nondeterministic outputs) ride beside the
deterministic documents, never inside them.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.workloads.driver import UserSpec, WorkloadReport
from repro.workloads.shards.merge import (
    MergeMetrics,
    merge_audits,
    merge_reports,
    merge_snapshots,
    merge_timelines,
)
from repro.workloads.shards.spec import (
    ShardResult,
    ShardSpec,
    assign_shard,
    partition_population,
)
from repro.workloads.shards.worker import run_shard

__all__ = [
    "ShardedReport",
    "ShardResult",
    "ShardSpec",
    "assign_shard",
    "partition_population",
    "run_sharded",
]

#: Execution modes: ``auto`` tries the process pool and falls back to
#: serial; the other two force one path (``processes`` raises if the
#: pool cannot be built).
MODES = ("auto", "processes", "serial")


@dataclass
class ShardedReport:
    """The merged view of one sharded run.

    Deterministic content (report numbers, merged snapshot, audit
    totals) lives in :meth:`canonical_dict`; wall-clock throughput
    lives beside it in :meth:`to_dict`.
    """

    n_shards: int
    #: "processes" or "serial" — how the shards actually ran.  Not part
    #: of the canonical document: both modes produce the same bytes.
    mode: str
    report: WorkloadReport
    snapshot: dict = field(default_factory=dict)
    audit: dict = field(default_factory=dict)
    #: The merged ``repro.timeline/v1`` document; None when the config
    #: ran without a timeline.
    timeline: dict | None = None
    shards: list[ShardResult] = field(default_factory=list, repr=False)
    wall_seconds: float = 0.0

    @property
    def users_per_sec(self) -> float:
        if not self.wall_seconds:
            return 0.0
        return self.report.admitted / self.wall_seconds

    def canonical_dict(self) -> dict:
        """Everything deterministic: byte-identical across same-seed,
        same-shard-count runs regardless of mode or scheduling."""
        report = self.report.to_dict()
        for wall_key in ("wall_seconds", "users_per_sec", "cycles_per_sec"):
            report.pop(wall_key, None)
        doc = {
            "n_shards": self.n_shards,
            "report": report,
            "snapshot": self.snapshot,
            "audit": self.audit,
            "shard_clocks": [
                {"shard_id": s.shard_id, "end_clock": s.report.end_clock}
                for s in self.shards
            ],
        }
        if self.timeline is not None:
            # All-simulated values, so the merged timeline belongs in
            # the canonical (byte-stable) document.
            doc["timeline"] = self.timeline
        return doc

    def canonical_json(self) -> str:
        return json.dumps(self.canonical_dict(), sort_keys=True)

    def to_dict(self) -> dict:
        return {
            **self.canonical_dict(),
            "mode": self.mode,
            "wall_seconds": round(self.wall_seconds, 4),
            "users_per_sec": round(self.users_per_sec, 2),
            "shard_walls": [
                round(s.wall_seconds, 4)
                for s in sorted(self.shards, key=lambda s: s.shard_id)
            ],
        }


def _run_serial(specs: list[ShardSpec]) -> list[ShardResult]:
    return [run_shard(spec) for spec in specs]


def _spawn_safe_main() -> bool:
    """Whether spawn can re-import the caller's ``__main__``.

    ``spawn`` replays the parent's main module in every worker.  When
    the program came from stdin or a process substitution
    (``__main__.__file__`` is ``<stdin>`` or otherwise gone from disk),
    that replay dies with FileNotFoundError — and ``Pool`` respawns the
    crashing worker forever instead of failing the map, so the hang
    must be refused *before* the pool is built.
    """
    import sys

    main = sys.modules.get("__main__")
    main_file = getattr(main, "__file__", None)
    return main_file is None or os.path.exists(main_file)


def _in_spawn_bootstrap() -> bool:
    """Whether this process is a spawn worker replaying its parent's
    ``__main__`` (a consumer script that calls :func:`run_sharded` at
    top level without an ``if __name__ == "__main__"`` guard)."""
    from multiprocessing import process

    return bool(getattr(process.current_process(), "_inheriting", False))


def _run_processes(specs: list[ShardSpec]) -> list[ShardResult]:
    import concurrent.futures
    import multiprocessing

    if not _spawn_safe_main():
        raise RuntimeError(
            "__main__ is not re-importable (stdin/REPL script?): "
            "spawned shard workers would crash-loop"
        )
    ctx = multiprocessing.get_context("spawn")
    workers = min(len(specs), os.cpu_count() or 1)
    # ProcessPoolExecutor, not multiprocessing.Pool: when a worker dies
    # during spawn bootstrap (unguarded consumer __main__), Pool
    # respawns it forever and the map never returns; the executor marks
    # the pool broken and raises, which auto mode turns into the serial
    # fallback.
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, mp_context=ctx
    ) as pool:
        # map yields results in spec order == shard_id order, so
        # completion order never leaks into the merge.
        return list(pool.map(run_shard, specs))


def run_sharded(
    n_users: int,
    n_shards: int,
    seed: int,
    config: SystemConfig | None = None,
    *,
    mode: str = "auto",
    mix: dict[str, float] | None = None,
    process: str = "poisson",
    mean_gap: float = 400.0,
    burst_size: int = 32,
    mean_lull: float = 20_000.0,
    project: str = "Load",
    n_cpus: int | None = None,
    batch_size: int = 64,
    quantum: int | None = None,
    max_instructions: int = 1_000_000,
    population: list[UserSpec] | None = None,
) -> ShardedReport:
    """Run ``n_users`` across ``n_shards`` worker systems and merge.

    Each shard regenerates the full seeded population locally and keeps
    its UID slice, so specs pickle small at any population size.  Pass
    ``population`` to pre-partition an explicit list instead (its
    ``n_users``/``seed`` params still seed nothing but are recorded).
    ``config`` defaults to :func:`repro.kernel_config`.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if n_shards < 1:
        raise ValueError("need at least one shard")
    if config is None:
        from repro import kernel_config

        config = kernel_config()
    slices: list[tuple[UserSpec, ...] | None]
    if population is not None:
        slices = [
            tuple(part) for part in partition_population(population, n_shards)
        ]
        n_users = len(population)
    else:
        slices = [None] * n_shards
    specs = [
        ShardSpec(
            shard_id=shard_id,
            n_shards=n_shards,
            seed=seed,
            n_users=n_users,
            config=config,
            mix=mix,
            process=process,
            mean_gap=mean_gap,
            burst_size=burst_size,
            mean_lull=mean_lull,
            project=project,
            n_cpus=n_cpus,
            batch_size=batch_size,
            quantum=quantum,
            max_instructions=max_instructions,
            users=slices[shard_id],
        )
        for shard_id in range(n_shards)
    ]
    metrics = MergeMetrics()
    metrics.shards = n_shards
    metrics.users = n_users
    wall0 = time.perf_counter()
    if mode == "serial" or (mode == "auto" and n_shards == 1):
        results = _run_serial(specs)
        used = "serial"
    elif mode == "processes":
        results = _run_processes(specs)
        used = "processes"
    else:
        try:
            results = _run_processes(specs)
            used = "processes"
        except Exception:
            if _in_spawn_bootstrap():
                # We ARE a spawn worker replaying an unguarded consumer
                # script: falling back serial here would re-run that
                # whole script inside every worker.  Die loudly instead
                # (the parent's executor reports a broken pool and takes
                # this same fallback, once, in the right process).
                raise
            # No usable multiprocessing here (restricted sandbox, no
            # /dev/shm, missing spawn support): same results, one
            # process — the purity of run_shard guarantees the bytes.
            metrics.spawn_failures += 1
            results = _run_serial(specs)
            used = "serial"
    wall = time.perf_counter() - wall0
    merged = merge_reports(results)
    merged.wall_seconds = wall
    return ShardedReport(
        n_shards=n_shards,
        mode=used,
        report=merged,
        snapshot=merge_snapshots(results, metrics),
        audit=merge_audits(results),
        timeline=merge_timelines(results),
        shards=sorted(results, key=lambda r: r.shard_id),
        wall_seconds=wall,
    )
