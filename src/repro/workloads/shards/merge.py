"""Deterministic folds of per-shard results into one global view.

Everything here folds in **shard_id order**, never in worker completion
order, so the merged documents are independent of OS scheduling: same
seed, same shard count → byte-identical output (the property bench E19
asserts).  Merge semantics per instrument kind:

* counters — summed (flows add across independent systems);
* gauges — summed (levels read as fleet totals: free frames across
  all shard systems, active sessions across all listeners);
* histograms — count/sum/min/max folded, mean recomputed;
* clock — the **max** shard clock (the fleet is done when its slowest
  member is);
* audit summaries — seen/dropped/denials summed, per-shard rows kept;
* timelines — folded per interval *index* (all shards sample the same
  simulated cadence): counter deltas and gauge levels summed like the
  snapshot fold, histogram count/sum summed, percentile estimates
  folded with **max** (the conservative worst-shard bound — exact
  cross-shard quantiles would need the raw reservoirs), breach rows
  concatenated with their shard_id and sorted by (t, shard_id, rule).

Wall-clock numbers never enter the merged snapshot — they ride beside
it — so the deterministic documents stay stable across runs and hosts.
"""

from __future__ import annotations

from repro.obs.registry import SCHEMA, SCHEMA_VERSION, MetricsRegistry
from repro.workloads.driver import WorkloadReport
from repro.workloads.shards.spec import ShardResult


class MergeMetrics:
    """The merge layer's own ``shard.*`` instruments.

    Follows the repo's hot-path migration rule: plain integer
    attributes, registered as instrument sources on a private
    registry whose snapshot is folded into the global document.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.shards = 0
        self.users = 0
        self.folds = 0
        self.spawn_failures = 0
        self.registry.gauge(
            "shard.count", "shard workers in this run",
            source=lambda: self.shards,
        )
        self.registry.counter(
            "shard.users", "users partitioned across the shards",
            source=lambda: self.users,
        )
        self.registry.counter(
            "shard.merge.folds",
            "per-shard snapshots folded into the global document",
            source=lambda: self.folds,
        )
        self.registry.counter(
            "shard.spawn_failures",
            "process-pool launches that fell back to the serial path",
            source=lambda: self.spawn_failures,
        )


def merge_reports(results: list[ShardResult]) -> WorkloadReport:
    """Fold per-shard workload reports (shard_id order) into one.

    ``wall_seconds`` is left at 0 — the orchestrator stamps the outer
    wall time; summing per-worker walls would double-count overlap.
    """
    ordered = sorted(results, key=lambda r: r.shard_id)
    merged = WorkloadReport()
    for result in ordered:
        report = result.report
        merged.users += report.users
        merged.admitted += report.admitted
        merged.login_failures += report.login_failures
        merged.jobs_completed += report.jobs_completed
        merged.jobs_failed += report.jobs_failed
        merged.latencies.extend(report.latencies)
    clocks = [r.report for r in ordered if r.report.users]
    if clocks:
        merged.start_clock = min(r.start_clock for r in clocks)
        merged.end_clock = max(r.end_clock for r in clocks)
    return merged


def _fold_histogram(into: dict, summary: dict) -> None:
    into["count"] += summary["count"]
    into["sum"] += summary["sum"]
    for key, pick in (("min", min), ("max", max)):
        if summary[key] is not None:
            into[key] = (
                summary[key]
                if into[key] is None
                else pick(into[key], summary[key])
            )
    into["mean"] = into["sum"] / into["count"] if into["count"] else 0.0


def merge_snapshots(
    results: list[ShardResult], metrics: MergeMetrics | None = None
) -> dict:
    """Fold per-shard ``repro.obs/v1`` snapshots into one document.

    The result validates against :func:`repro.obs.validate_snapshot`;
    when ``metrics`` is given its ``shard.*`` instruments are folded in
    alongside the shard systems' own names.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    clock = 0
    for result in sorted(results, key=lambda r: r.shard_id):
        snap = result.snapshot
        if snap.get("clock") is not None:
            clock = max(clock, snap["clock"])
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, summary in snap.get("histograms", {}).items():
            into = histograms.setdefault(
                name,
                {"count": 0, "sum": 0, "min": None, "max": None, "mean": 0.0},
            )
            _fold_histogram(into, summary)
        if metrics is not None:
            metrics.folds += 1
    if metrics is not None:
        own = metrics.registry.snapshot()
        counters.update(own["counters"])
        gauges.update(own["gauges"])
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "clock": clock,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def merge_timelines(results: list[ShardResult]) -> dict | None:
    """Fold per-shard ``repro.timeline/v1`` documents into one.

    Returns None when no shard carried a timeline.  All shards of one
    run sample the same cadence from the same construction time, so
    samples align on interval *index*; shards whose documents disagree
    on ``t0`` or ``interval`` cannot be aligned and raise
    ``ValueError``.  Within an index bucket ``t``/``dt`` take the max
    (the bucket is covered when its slowest shard is).  The merged
    document validates against :func:`repro.obs.timeline.validate_timeline`.
    """
    from repro.obs.timeline import SCHEMA as TIMELINE_SCHEMA
    from repro.obs.timeline import SCHEMA_VERSION as TIMELINE_VERSION

    ordered = [
        r for r in sorted(results, key=lambda r: r.shard_id)
        if r.timeline is not None
    ]
    if not ordered:
        return None
    base = ordered[0].timeline
    buckets: dict[int, dict] = {}
    breaches: list[dict] = []
    dropped = 0
    capacity = 0
    for result in ordered:
        doc = result.timeline
        if (doc["t0"], doc["interval"]) != (base["t0"], base["interval"]):
            raise ValueError(
                f"shard {result.shard_id} timeline (t0={doc['t0']}, "
                f"interval={doc['interval']}) does not align with shard "
                f"{ordered[0].shard_id} (t0={base['t0']}, "
                f"interval={base['interval']})"
            )
        dropped += doc["dropped"]
        capacity = max(capacity, doc["capacity"])
        for sample in doc["samples"]:
            into = buckets.setdefault(sample["index"], {
                "index": sample["index"], "t": 0, "dt": 0,
                "counters": {}, "gauges": {}, "histograms": {},
            })
            into["t"] = max(into["t"], sample["t"])
            into["dt"] = max(into["dt"], sample["dt"])
            for name, value in sample["counters"].items():
                into["counters"][name] = (
                    into["counters"].get(name, 0) + value
                )
            for name, value in sample["gauges"].items():
                into["gauges"][name] = into["gauges"].get(name, 0) + value
            for name, row in sample["histograms"].items():
                fold = into["histograms"].setdefault(
                    name, {"count": 0, "sum": 0}
                )
                fold["count"] += row["count"]
                fold["sum"] += row["sum"]
                for key, value in row.items():
                    if not key.startswith("p") or value is None:
                        continue
                    prior = fold.get(key)
                    fold[key] = (
                        value if prior is None else max(prior, value)
                    )
        for breach in doc["breaches"]:
            breaches.append({**breach, "shard_id": result.shard_id})
    samples = [
        {
            **bucket,
            "counters": dict(sorted(bucket["counters"].items())),
            "gauges": dict(sorted(bucket["gauges"].items())),
            "histograms": dict(sorted(bucket["histograms"].items())),
        }
        for _, bucket in sorted(buckets.items())
    ]
    breaches.sort(key=lambda b: (b["t"], b["shard_id"], b["rule"]))
    return {
        "schema": TIMELINE_SCHEMA,
        "schema_version": TIMELINE_VERSION,
        "t0": base["t0"],
        "interval": base["interval"],
        "capacity": capacity,
        "dropped": dropped,
        "n_shards": len(ordered),
        "samples": samples,
        "breaches": breaches,
    }


def merge_audits(results: list[ShardResult]) -> dict:
    """Fold per-shard audit summaries: totals plus per-shard rows."""
    ordered = sorted(results, key=lambda r: r.shard_id)
    merged = {"seen": 0, "dropped": 0, "denials": 0, "per_shard": []}
    for result in ordered:
        for key in ("seen", "dropped", "denials"):
            merged[key] += result.audit.get(key, 0)
        merged["per_shard"].append(
            {"shard_id": result.shard_id, **result.audit}
        )
    return merged
