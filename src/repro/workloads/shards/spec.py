"""The shard wire format and the user-UID partition.

A :class:`ShardSpec` is everything one worker process needs to rebuild
its slice of the world from scratch: the *population parameters* (not
the population — regenerating a seeded population in the worker keeps
the pickle a few hundred bytes no matter how many users the run has)
plus the :class:`~repro.config.SystemConfig` and driver knobs.  A
:class:`ShardResult` is everything the merge layer folds back: the
shard's :class:`~repro.workloads.driver.WorkloadReport`, its
``repro.obs/v1`` metric snapshot, and its audit-trail summary.

The partition is by *user UID* (the stable ``person`` name), not by
list position: ``assign_shard`` hashes the principal with CRC-32, so a
user lands on the same shard for any population ordering, and the
population a worker regenerates locally is byte-for-byte the slice the
orchestrator would have sent it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.workloads.driver import UserSpec, WorkloadReport


def assign_shard(person: str, n_shards: int) -> int:
    """Stable shard index for one principal (CRC-32 of the name)."""
    if n_shards < 1:
        raise ValueError("need at least one shard")
    if n_shards == 1:
        return 0
    return zlib.crc32(person.encode("utf-8")) % n_shards


def partition_population(
    population: list[UserSpec], n_shards: int
) -> list[list[UserSpec]]:
    """Split a population into per-shard lists by user UID.

    Every user appears in exactly one slice; relative arrival order
    within a slice follows the input order.
    """
    slices: list[list[UserSpec]] = [[] for _ in range(n_shards)]
    for spec in population:
        slices[assign_shard(spec.person, n_shards)].append(spec)
    return slices


@dataclass(frozen=True)
class ShardSpec:
    """One worker's complete, picklable job description.

    ``users`` is normally ``None`` — the worker regenerates the full
    seeded population locally and keeps its own slice.  A pre-built
    population can be passed explicitly (tuple, for pickling) when the
    caller needs a hand-crafted one; it is used as-is, unfiltered.
    """

    shard_id: int
    n_shards: int
    seed: int
    n_users: int
    config: SystemConfig = field(default_factory=SystemConfig)
    # Population parameters (mirror generate_population's signature).
    mix: dict[str, float] | None = None
    process: str = "poisson"
    mean_gap: float = 400.0
    burst_size: int = 32
    mean_lull: float = 20_000.0
    project: str = "Load"
    # Driver knobs (mirror WorkloadDriver's signature).
    n_cpus: int | None = None
    batch_size: int = 64
    quantum: int | None = None
    max_instructions: int = 1_000_000
    #: Explicit population override; bypasses regeneration AND the
    #: shard filter.
    users: tuple[UserSpec, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("need at least one shard")
        if not 0 <= self.shard_id < self.n_shards:
            raise ValueError(
                f"shard_id {self.shard_id} outside [0, {self.n_shards})"
            )
        if self.n_users < 0:
            raise ValueError("n_users cannot be negative")


@dataclass
class ShardResult:
    """What one worker sends back for merging."""

    shard_id: int
    report: WorkloadReport
    #: The shard system's ``repro.obs/v1`` snapshot (deterministic —
    #: simulated values only, no wall-clock numbers).
    snapshot: dict = field(default_factory=dict)
    #: Audit-trail summary: seen / dropped / denials.
    audit: dict = field(default_factory=dict)
    #: The shard's ``repro.timeline/v1`` document (None when the config
    #: runs without a timeline).  All-simulated values, so it folds
    #: deterministically — see ``shards/merge.merge_timelines``.
    timeline: dict | None = None
    #: Wall seconds this worker spent end to end (boot included).
    #: Lives outside the snapshot so merged documents stay
    #: byte-identical across same-seed runs.
    wall_seconds: float = 0.0
