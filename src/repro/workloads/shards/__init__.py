"""Shard runner plumbing for :mod:`repro.workloads.sharded`.

Three pieces, split so every one of them is importable from a spawned
worker process without dragging the orchestration layer along:

* :mod:`~repro.workloads.shards.spec` — the picklable wire format
  (:class:`ShardSpec` in, :class:`ShardResult` out) plus the stable
  user-UID partition function;
* :mod:`~repro.workloads.shards.worker` — the module-level worker entry
  point a spawn-context :class:`multiprocessing.pool.Pool` can import
  by name (never a closure, never ``__main__``);
* :mod:`~repro.workloads.shards.merge` — deterministic folds of
  per-shard reports, ``repro.obs/v1`` snapshots, and audit summaries.
"""

from repro.workloads.shards.merge import (
    MergeMetrics,
    merge_audits,
    merge_reports,
    merge_snapshots,
    merge_timelines,
)
from repro.workloads.shards.spec import (
    ShardResult,
    ShardSpec,
    assign_shard,
    partition_population,
)
from repro.workloads.shards.worker import materialize_population, run_shard

__all__ = [
    "MergeMetrics",
    "ShardResult",
    "ShardSpec",
    "assign_shard",
    "materialize_population",
    "merge_audits",
    "merge_reports",
    "merge_snapshots",
    "merge_timelines",
    "partition_population",
    "run_shard",
]
