"""The shard worker: one :class:`ShardSpec` in, one result out.

``run_shard`` is a plain module-level function so a spawn-context pool
can pickle it by qualified name; everything it needs rides in the spec.
Each worker is a *pure function* of its spec — fresh
:class:`~repro.system.MulticsSystem`, deterministically regenerated
population slice, seeded driver — so results are identical whether the
spec runs in a child process, in-process serially, or on another
machine entirely.  That purity is what lets the orchestrator fall back
from processes to a serial loop without changing a single merged byte.
"""

from __future__ import annotations

import time

from repro.system import MulticsSystem
from repro.workloads.driver import (
    UserSpec,
    WorkloadDriver,
    generate_population,
)
from repro.workloads.shards.spec import ShardResult, ShardSpec, assign_shard


def materialize_population(spec: ShardSpec) -> list[UserSpec]:
    """The population slice this shard runs.

    Regenerates the *full* seeded population, then keeps the users the
    UID partition assigns here — so each user's profile and arrival
    time are independent of the shard count, and a 1-shard run sees
    exactly what an unsharded :class:`WorkloadDriver` would.
    """
    if spec.users is not None:
        return list(spec.users)
    population = generate_population(
        spec.n_users,
        spec.seed,
        mix=spec.mix,
        process=spec.process,
        mean_gap=spec.mean_gap,
        burst_size=spec.burst_size,
        mean_lull=spec.mean_lull,
        project=spec.project,
    )
    if spec.n_shards == 1:
        return population
    return [
        user
        for user in population
        if assign_shard(user.person, spec.n_shards) == spec.shard_id
    ]


def run_shard(spec: ShardSpec) -> ShardResult:
    """Boot a fresh system, run this shard's slice, report back."""
    wall0 = time.perf_counter()
    population = materialize_population(spec)
    system = MulticsSystem(spec.config)
    system.boot()
    driver = WorkloadDriver(
        system,
        n_cpus=spec.n_cpus,
        batch_size=spec.batch_size,
        quantum=spec.quantum,
        max_instructions=spec.max_instructions,
    )
    report = driver.run(population)
    trail = system.audit_trail
    return ShardResult(
        shard_id=spec.shard_id,
        report=report,
        snapshot=system.metrics.snapshot(),
        audit={
            "seen": trail.seen,
            "dropped": trail.dropped,
            "denials": trail.denials,
        },
        timeline=system.timeline_document(),
        wall_seconds=time.perf_counter() - wall0,
    )
