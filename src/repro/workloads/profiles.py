"""User behavior profiles and their generated programs.

Each profile describes one kind of interactive user as the mix the
Multics sites actually saw: quick shell commands, long compilations,
store-heavy io daemons, and working sets too large for their share of
core.  A profile compiles to one small object-segment program — a loop
that strides through the user's private data segment — whose shape
(loop length, stride, store ratio, extra ALU work) realizes the
behavior on the simulated CPU:

* ``shell`` — short read bursts over one page: command interpretation.
* ``compile`` — long ALU-heavy passes over a small working set.
* ``io`` — streaming read-modify-write over a buffer segment.
* ``paging`` — page-sized strides across a working set several times
  the size of the others, generating steady fault traffic.

Programs are position-independent except for the segment number of the
data segment, which the ``LOADI``/``STOREI`` operand bakes in.  Bulk
sessions initiate their address spaces in an identical order, so the
driver bakes the canary session's data segno and verifies each user
landed on the same one (patching a private copy when not).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.cpu import Instruction as I, Op
from repro.user.object_format import ObjectSegment


@dataclass(frozen=True)
class Profile:
    """One user behavior class (see module docstring)."""

    name: str
    #: Pages of private data the user strides over.
    data_pages: int
    #: Loop iterations per interactive burst.
    iters: int
    #: Offset stride between touches (page-sized strides page-fault).
    stride: int
    #: Store back every touch (read-modify-write) instead of read-only.
    stores: bool
    #: Extra ALU operations folded into each iteration.
    alu: int


PROFILES: dict[str, Profile] = {
    "shell": Profile("shell", data_pages=1, iters=24, stride=1,
                     stores=False, alu=0),
    "compile": Profile("compile", data_pages=2, iters=160, stride=3,
                       stores=False, alu=2),
    "io": Profile("io", data_pages=2, iters=96, stride=1,
                  stores=True, alu=0),
    "paging": Profile("paging", data_pages=8, iters=64, stride=17,
                      stores=False, alu=0),
}

#: Population mix when the caller does not specify one: mostly shell
#: users, the rest split across the heavier classes.
DEFAULT_MIX: dict[str, float] = {
    "shell": 0.55,
    "compile": 0.2,
    "io": 0.15,
    "paging": 0.1,
}


def build_program(profile: Profile, data_segno: int,
                  page_size: int) -> ObjectSegment:
    """Compile ``profile`` into an object segment touching
    ``data_segno``.

    The program is one loop, frame slots 0=acc, 1=i::

        for i in range(iters):
            off = (i * stride) % span
            acc = acc + M[data][off]
            (stores:) M[data][off] = acc
            (alu:)    acc = acc * 3 % 8191   # per extra ALU op

    It returns ``acc`` — a data-dependent checksum, so a wrong load
    anywhere changes the job result.
    """
    span = profile.data_pages * page_size
    code: list[I] = [
        I(Op.PUSHI, 0), I(Op.STOREF, 0),          # acc = 0
        I(Op.PUSHI, 0), I(Op.STOREF, 1),          # i = 0
    ]
    top = len(code)
    code += [
        I(Op.LOADF, 1), I(Op.PUSHI, profile.iters), I(Op.LT),
        I(Op.JZ, -1),                              # patched to `end`
        # off = (i * stride) % span  ... kept on the stack
        I(Op.LOADF, 1), I(Op.PUSHI, profile.stride), I(Op.MUL),
        I(Op.PUSHI, span), I(Op.MOD),
    ]
    if profile.stores:
        # acc += M[data][off]; M[data][off] = acc
        code += [
            I(Op.DUP),
            I(Op.LOADI, data_segno),
            I(Op.LOADF, 0), I(Op.ADD), I(Op.STOREF, 0),
            I(Op.LOADF, 0), I(Op.SWAP),
            I(Op.STOREI, data_segno),
        ]
    else:
        code += [
            I(Op.LOADI, data_segno),
            I(Op.LOADF, 0), I(Op.ADD), I(Op.STOREF, 0),
        ]
    for _ in range(profile.alu):
        code += [
            I(Op.LOADF, 0), I(Op.PUSHI, 3), I(Op.MUL),
            I(Op.PUSHI, 8191), I(Op.MOD), I(Op.STOREF, 0),
        ]
    code += [
        I(Op.LOADF, 1), I(Op.PUSHI, 1), I(Op.ADD), I(Op.STOREF, 1),
        I(Op.JMP, top),
    ]
    end = len(code)
    code += [I(Op.LOADF, 0), I(Op.RET)]
    jz = top + 3
    code[jz] = I(Op.JZ, end)
    return ObjectSegment(
        f"wl_{profile.name}", code=code, definitions={"main": 0}
    )


def rebind_data_segno(obj: ObjectSegment, data_segno: int) -> ObjectSegment:
    """A copy of ``obj`` with its indirect references re-baked (used
    when a session's data segment landed on an unexpected segno)."""
    return ObjectSegment(
        obj.name,
        code=[
            I(inst.op, data_segno)
            if inst.op in (Op.LOADI, Op.STOREI) else inst
            for inst in obj.code
        ],
        definitions=dict(obj.definitions),
    )
