"""Population generation and the batch session driver.

The driver realizes a seeded population against one booted system:

1. every user principal is registered, and a single *author* session
   builds the shared program library (``>workload``) — one object
   segment per profile, ACL'd executable for the whole project, parsed
   once so ten thousand processes share one decoded
   :class:`~repro.hw.cpu.CodeSegment`, the simulated analogue of
   Multics' shared pure-procedure segments;
2. users arrive under the population's arrival process and log in
   through the non-privileged E14 listener path (``quiet`` — no
   per-terminal transcript at bulk scale), skipping the home-directory
   ceremony: each bulk session gets a private data segment in the
   library directory instead;
3. each session's interactive burst is compiled from its profile and
   fed through the SMP complex in batches; a burst's *interactive
   latency* is the simulated-cycle span from the user's arrival to its
   job completing (queueing included).

Everything is driven off the simulated clock and seeded generators, so
a run is a pure function of (config, population) — bench E18 leans on
that to compare the fast-path core against the classic one byte for
byte.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.config import SupervisorKind
from repro.errors import AuthenticationError, KernelDenial
from repro.hw.cpu import CodeSegment
from repro.hw.smp import CpuJob
from repro.workloads.arrivals import bursty_arrivals, poisson_arrivals
from repro.workloads.profiles import (
    DEFAULT_MIX,
    PROFILES,
    Profile,
    build_program,
    rebind_data_segno,
)

#: Where the shared program library and the bulk data segments live.
LIBRARY_PATH = ">workload"


@dataclass(frozen=True)
class UserSpec:
    """One simulated user: who they are, how they behave, when they
    arrive (simulated cycles)."""

    person: str
    project: str
    password: str
    profile: Profile
    arrival: int


def generate_population(
    n: int,
    seed: int,
    mix: dict[str, float] | None = None,
    process: str = "poisson",
    mean_gap: float = 400.0,
    burst_size: int = 32,
    mean_lull: float = 20_000.0,
    project: str = "Load",
) -> list[UserSpec]:
    """A seeded population of ``n`` users.

    Profiles are drawn from ``mix`` (name -> weight, default
    :data:`~repro.workloads.profiles.DEFAULT_MIX`); arrivals come from
    the named ``process`` (``"poisson"`` or ``"bursty"``).  Same seed,
    same population.
    """
    weights = mix or DEFAULT_MIX
    unknown = set(weights) - set(PROFILES)
    if unknown:
        raise ValueError(f"unknown profiles in mix: {sorted(unknown)}")
    rng = random.Random(seed)
    names = list(weights)
    chosen = rng.choices(names, weights=[weights[k] for k in names], k=n)
    arrival_seed = rng.randrange(2**32)
    if process == "poisson":
        arrivals = poisson_arrivals(n, mean_gap, arrival_seed)
    elif process == "bursty":
        arrivals = bursty_arrivals(n, burst_size, mean_lull, arrival_seed)
    else:
        raise ValueError(f"unknown arrival process {process!r}")
    return [
        UserSpec(
            person=f"U{i:05d}",
            project=project,
            password="wl-pw",
            profile=PROFILES[name],
            arrival=when,
        )
        for i, (name, when) in enumerate(zip(chosen, arrivals))
    ]


@dataclass
class WorkloadReport:
    """What one driver run measured.

    Latencies are simulated cycles from a user's arrival to its burst
    completing; throughput numbers divide by the *wall* seconds the run
    took, which is what bench E18 compares across interpreter cores.
    """

    users: int = 0
    admitted: int = 0
    login_failures: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    start_clock: int = 0
    end_clock: int = 0
    wall_seconds: float = 0.0
    latencies: list[int] = field(default_factory=list, repr=False)
    #: Top-N cProfile dump when ``SystemConfig.profiling`` is on;
    #: empty otherwise (and then absent from :meth:`to_dict`).
    profile: str = field(default="", repr=False)

    @property
    def elapsed_cycles(self) -> int:
        return self.end_clock - self.start_clock

    def latency_percentile(self, q: float) -> int:
        """Nearest-rank percentile of the latency sample (0 if empty).

        ``q`` is clamped to [0, 1], so a degenerate quantile request
        never indexes off either end of the sample.
        """
        if not self.latencies:
            return 0
        ordered = sorted(self.latencies)
        index = int(q * (len(ordered) - 1) + 0.5)
        return ordered[max(0, min(len(ordered) - 1, index))]

    @property
    def p50_latency(self) -> int:
        return self.latency_percentile(0.50)

    @property
    def p95_latency(self) -> int:
        return self.latency_percentile(0.95)

    @property
    def users_per_sec(self) -> float:
        return self.admitted / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def cycles_per_sec(self) -> float:
        if not self.wall_seconds:
            return 0.0
        return self.elapsed_cycles / self.wall_seconds

    def to_dict(self) -> dict:
        doc = {
            "users": self.users,
            "admitted": self.admitted,
            "login_failures": self.login_failures,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "elapsed_cycles": self.elapsed_cycles,
            "wall_seconds": round(self.wall_seconds, 4),
            "users_per_sec": round(self.users_per_sec, 2),
            "cycles_per_sec": round(self.cycles_per_sec, 2),
            "p50_latency_cycles": self.p50_latency,
            "p95_latency_cycles": self.p95_latency,
        }
        if self.profile:
            doc["profile"] = self.profile
        return doc


class WorkloadDriver:
    """Feed a population through one booted system's SMP complex."""

    AUTHOR = "Workload"

    def __init__(self, system, n_cpus: int | None = None,
                 batch_size: int = 64, quantum: int | None = None,
                 max_instructions: int = 1_000_000,
                 seed_words: int = 8, on_round=None) -> None:
        if system.config.supervisor is SupervisorKind.LEGACY:
            raise ValueError(
                "the workload driver logs in through the E14 listener; "
                "boot a kernel-supervisor system"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.system = system
        self.batch_size = batch_size
        self.quantum = quantum
        self.max_instructions = max_instructions
        self.seed_words = seed_words
        self.complex = system.cpu_complex(n_cpus)
        #: Forwarded to every ``run_jobs`` call — the hook a bench wires
        #: its chaos engine through at workload scale.
        self.on_round = on_round
        #: The system's timeline sampler (None when off): polled at
        #: burst boundaries so idle admission gaps still land in the
        #: right interval, and flushed once at run end.
        self._timeline = system.services.timeline
        self._listener = system.listener
        # The shared library: profile name -> (object, parsed code).
        self._library: dict[str, CodeSegment] = {}
        self._objects: dict[str, object] = {}
        self._author = None
        self._data_segno: int | None = None
        # Accounting (the workload.* metric sources).
        self.arrivals = 0
        self.logins = 0
        self.login_failures = 0
        self.batches = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.code_rebinds = 0
        self._register_metrics(system.metrics)

    def _register_metrics(self, metrics) -> None:
        metrics.counter("workload.arrivals", "users the driver admitted "
                        "to the login queue", source=lambda: self.arrivals)
        metrics.counter("workload.logins",
                        "bulk sessions admitted via the E14 listener",
                        source=lambda: self.logins)
        metrics.counter("workload.login_failures",
                        "bulk logins the kernel refused",
                        source=lambda: self.login_failures)
        metrics.counter("workload.batches",
                        "session batches fed to the SMP complex",
                        source=lambda: self.batches)
        metrics.counter("workload.jobs_completed",
                        "interactive bursts that returned",
                        source=lambda: self.jobs_completed)
        metrics.counter("workload.jobs_failed",
                        "interactive bursts contained after a fault",
                        source=lambda: self.jobs_failed)
        metrics.counter("workload.code_rebinds",
                        "sessions needing a private program copy",
                        source=lambda: self.code_rebinds)
        metrics.gauge("workload.active_sessions",
                      "sessions currently logged in",
                      source=lambda: self._listener.active_count)
        self._latency = metrics.histogram(
            "workload.latency",
            "arrival-to-completion interactive latency, simulated cycles",
        )

    # -- the shared program library --------------------------------------

    def _ensure_author(self):
        if self._author is None:
            self.system.register_user(self.AUTHOR, "Load", "wl-author-pw")
            self._author = self.system.login(
                self.AUTHOR, "Load", "wl-author-pw"
            )
            self._author.create_dir(LIBRARY_PATH)
            # Project members create their data segments here and
            # execute the library; "rw" on the directory covers entry
            # creation, per-object ACLs cover execution.
            self._author.set_acl(LIBRARY_PATH, "*.*", "rw")
        return self._author

    def _install_library(self, data_segno: int) -> None:
        """Install + parse every profile program, baked for
        ``data_segno`` (the segno bulk sessions' data lands on)."""
        author = self._ensure_author()
        page_size = self.system.config.page_size
        for name, profile in PROFILES.items():
            obj = build_program(profile, data_segno, page_size)
            path = f"{LIBRARY_PATH}>wl_{name}"
            segno = author.install_object(path, obj)
            author.set_acl(path, "*.*", "re")
            author.load_program(segno)
            self._objects[name] = obj
            # One parsed (and, on the fast path, decoded) image for the
            # whole population.
            self._library[name] = author.process.code_segments[segno]

    # -- sessions ---------------------------------------------------------

    def _admit(self, spec: UserSpec, index: int) -> tuple | None:
        """Log one user in and stage its burst; None if login failed."""
        from repro.system import Session

        clock = self.system.clock
        if spec.arrival > clock.now:
            clock.advance_to(spec.arrival)
        self.arrivals += 1
        try:
            user = self._listener.login(
                spec.person, spec.project, spec.password,
                source="workload", quiet=True,
            )
        except (AuthenticationError, KernelDenial):
            self.login_failures += 1
            return None
        self.logins += 1
        process = self.system.services.created_processes[user.pid]
        session = Session(self.system, process, user.session_id)
        data = session.create_segment(
            f"{LIBRARY_PATH}>d{user.pid}", n_pages=spec.profile.data_pages
        )
        if self._data_segno is None:
            self._data_segno = data
            self._install_library(data)
        session.write_words(
            data,
            [(index * 7 + k) % 509 + 1 for k in range(self.seed_words)],
        )
        code_segno = session.initiate(
            f"{LIBRARY_PATH}>wl_{spec.profile.name}"
        )
        if data == self._data_segno:
            code = self._library[spec.profile.name]
        else:
            # This session's address space initiated in a different
            # order (it existed before the run, say); give it a private
            # image re-baked for where its data actually landed.
            self.code_rebinds += 1
            obj = rebind_data_segno(self._objects[spec.profile.name], data)
            code = CodeSegment(
                instructions=obj.code, entry_points=dict(obj.definitions)
            )
        process.code_segments[code_segno] = code
        job = CpuJob(
            ctx=process, segno=code_segno,
            entry=code.entry_points.get("main", 0),
            max_instructions=self.max_instructions,
            label=f"{spec.person}:{spec.profile.name}",
        )
        return job, spec

    # -- the run ----------------------------------------------------------

    def run(self, population: list[UserSpec]) -> WorkloadReport:
        """Admit the population in arrival order, run every burst, and
        report.

        With ``SystemConfig.profiling`` on, the run is wrapped in
        :mod:`cProfile` and the report carries a top-N cumulative dump
        — the instrument that picked the batched-counter hot-path
        round.  Simulated results are identical either way.
        """
        if not self.system.config.profiling:
            return self._run(population)
        import cProfile
        import io
        import pstats

        prof = cProfile.Profile()
        prof.enable()
        try:
            report = self._run(population)
        finally:
            prof.disable()
        out = io.StringIO()
        stats = pstats.Stats(prof, stream=out)
        stats.sort_stats("cumulative").print_stats(25)
        report.profile = out.getvalue()
        return report

    def _run(self, population: list[UserSpec]) -> WorkloadReport:
        ordered = sorted(population, key=lambda spec: spec.arrival)
        self._ensure_author()  # the library directory must pre-date login
        for spec in ordered:
            self.system.register_user(spec.person, spec.project,
                                      spec.password)
        report = WorkloadReport(users=len(ordered))
        report.start_clock = self.system.clock.now
        wall0 = time.perf_counter()
        for at in range(0, len(ordered), self.batch_size):
            batch = ordered[at:at + self.batch_size]
            staged = [
                admitted
                for i, spec in enumerate(batch, start=at)
                if (admitted := self._admit(spec, i)) is not None
            ]
            if not staged:
                if self._timeline is not None:
                    self._timeline.poll()
                continue
            self.complex.run_jobs([job for job, _ in staged],
                                  quantum=self.quantum,
                                  on_round=self.on_round)
            self.batches += 1
            for job, spec in staged:
                if job.error is not None:
                    self.jobs_failed += 1
                    continue
                self.jobs_completed += 1
                latency = job.finished - spec.arrival
                self._latency.observe(latency)
                report.latencies.append(latency)
            if self._timeline is not None:
                self._timeline.poll()
        if self._timeline is not None:
            # Flush trailing activity mid-interval so the last sample
            # always covers through end_clock.
            self._timeline.poll(force=True)
        report.wall_seconds = time.perf_counter() - wall0
        report.end_clock = self.system.clock.now
        report.admitted = self.logins
        report.login_failures = self.login_failures
        report.jobs_completed = self.jobs_completed
        report.jobs_failed = self.jobs_failed
        return report
