"""Seeded arrival processes, in simulated cycles.

Traffic shaping for the workload driver: a list of non-decreasing
arrival times (simulated cycles) for ``n`` users.  Both processes are
pure functions of their seed — same seed, same arrivals — which is what
lets bench E18 compare fast-path on/off runs byte for byte.

* :func:`poisson_arrivals` — memoryless interactive demand: i.i.d.
  exponential inter-arrival times at a mean rate.
* :func:`bursty_arrivals` — shift-change logins: tight bursts of
  near-simultaneous arrivals separated by exponential lulls.
"""

from __future__ import annotations

import random


def poisson_arrivals(n: int, mean_gap: float, seed: int,
                     start: int = 0) -> list[int]:
    """``n`` Poisson arrivals with ``mean_gap`` simulated cycles
    between them on average, starting at ``start``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if mean_gap <= 0:
        raise ValueError("mean_gap must be positive")
    rng = random.Random(seed)
    now = float(start)
    times: list[int] = []
    for _ in range(n):
        now += rng.expovariate(1.0 / mean_gap)
        times.append(int(now))
    return times


def bursty_arrivals(n: int, burst_size: int, mean_lull: float, seed: int,
                    start: int = 0, jitter: int = 8) -> list[int]:
    """``n`` arrivals in bursts of ``burst_size``, bursts separated by
    exponential lulls of ``mean_lull`` mean cycles; arrivals inside a
    burst spread over at most ``jitter`` cycles."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if burst_size < 1:
        raise ValueError("burst_size must be at least 1")
    if mean_lull <= 0:
        raise ValueError("mean_lull must be positive")
    rng = random.Random(seed)
    now = float(start)
    times: list[int] = []
    while len(times) < n:
        base = int(now)
        offsets = sorted(
            rng.randrange(jitter + 1)
            for _ in range(min(burst_size, n - len(times)))
        )
        times.extend(base + off for off in offsets)
        now += rng.expovariate(1.0 / mean_lull)
    return times
