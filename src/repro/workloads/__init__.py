"""Synthetic multi-user workloads over the simulated kernel.

The paper's kernel served an interactive time-sharing population; this
package generates one.  A seeded population of user profiles (shell,
compile, io, paging mixes) logs in through the non-privileged E14
listener path, arrives under a shaped process (Poisson or bursty), and
runs its interactive bursts through the SMP complex in batches.  The
driver reports admitted users/sec and p50/p95 interactive latency in
simulated cycles, and registers ``workload.*`` metrics in the
``repro.obs/v1`` snapshot.  Bench E18 runs this at 1k and 10k users.
"""

from repro.workloads.arrivals import bursty_arrivals, poisson_arrivals
from repro.workloads.driver import (
    UserSpec,
    WorkloadDriver,
    WorkloadReport,
    generate_population,
)
from repro.workloads.profiles import DEFAULT_MIX, PROFILES, Profile

__all__ = [
    "DEFAULT_MIX",
    "PROFILES",
    "Profile",
    "UserSpec",
    "WorkloadDriver",
    "WorkloadReport",
    "bursty_arrivals",
    "generate_population",
    "poisson_arrivals",
]
