"""Synthetic multi-user workloads over the simulated kernel.

The paper's kernel served an interactive time-sharing population; this
package generates one.  A seeded population of user profiles (shell,
compile, io, paging mixes) logs in through the non-privileged E14
listener path, arrives under a shaped process (Poisson or bursty), and
runs its interactive bursts through the SMP complex in batches.  The
driver reports admitted users/sec and p50/p95 interactive latency in
simulated cycles, and registers ``workload.*`` metrics in the
``repro.obs/v1`` snapshot.  Bench E18 runs this at 1k and 10k users.

Past one process's ceiling, :func:`run_sharded` partitions the
population by user UID across N OS-process shards — independent seeded
systems whose reports, snapshots, and audit summaries merge
deterministically (bench E19 runs this up to 100k users).
"""

from repro.workloads.arrivals import bursty_arrivals, poisson_arrivals
from repro.workloads.driver import (
    UserSpec,
    WorkloadDriver,
    WorkloadReport,
    generate_population,
)
from repro.workloads.profiles import DEFAULT_MIX, PROFILES, Profile
from repro.workloads.sharded import (
    ShardedReport,
    ShardResult,
    ShardSpec,
    assign_shard,
    partition_population,
    run_sharded,
)

__all__ = [
    "DEFAULT_MIX",
    "PROFILES",
    "Profile",
    "ShardSpec",
    "ShardResult",
    "ShardedReport",
    "UserSpec",
    "WorkloadDriver",
    "WorkloadReport",
    "assign_shard",
    "bursty_arrivals",
    "generate_population",
    "partition_population",
    "poisson_arrivals",
    "run_sharded",
]
