"""repro — a reproduction of Schroeder, "Engineering a Security Kernel
for Multics" (SOSP 1975).

A complete simulated Multics: a 6180-like hardware substrate
(segments, rings, gates, a three-level memory hierarchy), a
discrete-event process implementation, a two-layer file system with
ACLs and the MITRE compartment lattice — and **two supervisors** on
top: the full legacy supervisor and the paper's minimized security
kernel.  Every engineering claim of the paper is reproduced as a
measured before/after experiment (see DESIGN.md and EXPERIMENTS.md).

Quick start::

    from repro import MulticsSystem, SystemConfig

    system = MulticsSystem(SystemConfig()).boot()
    system.register_user("Alice", "Crypto", "alice-pw")
    session = system.login("Alice", "Crypto", "alice-pw")
    segno = session.create_segment("notes", n_pages=2)
    session.write_words(segno, [1, 2, 3])
"""

from repro.config import (
    BufferKind,
    InitKind,
    InterruptKind,
    PageControlKind,
    RingMode,
    SupervisorKind,
    SystemConfig,
)
from repro.security.mac import SecurityLabel
from repro.security.principal import Principal
from repro.system import MulticsSystem, Session

__version__ = "1.0.0"

__all__ = [
    "MulticsSystem",
    "Session",
    "SystemConfig",
    "SupervisorKind",
    "RingMode",
    "PageControlKind",
    "BufferKind",
    "InitKind",
    "InterruptKind",
    "SecurityLabel",
    "Principal",
    "legacy_config",
    "kernel_config",
    "__version__",
]


def legacy_config(**overrides) -> SystemConfig:
    """The historical 'before' configuration: 645 software rings,
    sequential page control, circular buffers, in-kernel everything."""
    config = SystemConfig(
        supervisor=SupervisorKind.LEGACY,
        ring_mode=RingMode.SOFTWARE_645,
        page_control=PageControlKind.SEQUENTIAL,
        buffers=BufferKind.CIRCULAR,
        init=InitKind.BOOTSTRAP,
        interrupts=InterruptKind.IN_PROCESS,
        clear_freed_frames=False,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def kernel_config(**overrides) -> SystemConfig:
    """The paper's 'after' configuration: the security kernel on 6180
    hardware rings with every simplification applied."""
    config = SystemConfig()
    for key, value in overrides.items():
        setattr(config, key, value)
    return config
