"""The KPL compiler: a PL/I-flavoured subset to the stack-machine ISA.

Grammar (informally)::

    program   := procedure+
    procedure := "procedure" NAME "(" params? ")" ";" body "end" ";"
    body      := stmt*
    stmt      := "declare" NAME ";"
               | NAME "=" expr ";"
               | "if" expr "then" body ("else" body)? "end" ";"
               | "while" expr "do" body "end" ";"
               | "return" expr ";"
               | "call" NAME "(" args? ")" ";"
    expr      := comparison with + - * / mod, unary -, parentheses,
                 integer literals, variables, and calls NAME(args)

Calls compile to linkage-section references (``CALLL``): internal calls
get the symbol ``<module>$<proc>``, so the loader binds the module's
own reference name and the same dynamic-linking machinery serves both
intra- and inter-module calls — exactly how Multics object segments
behaved.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import CompilationError
from repro.hw.cpu import Instruction, Op
from repro.user.object_format import ObjectSegment


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass
class Num:
    value: int


@dataclass
class Var:
    name: str


@dataclass
class Unary:
    op: str
    operand: object


@dataclass
class BinOp:
    op: str
    left: object
    right: object


@dataclass
class Call:
    target: str          # "proc" or "module$proc"
    args: list = field(default_factory=list)


@dataclass
class Declare:
    name: str


@dataclass
class Assign:
    name: str
    value: object


@dataclass
class If:
    cond: object
    then: list
    otherwise: list


@dataclass
class While:
    cond: object
    body: list


@dataclass
class Return:
    value: object


@dataclass
class CallStmt:
    call: Call


@dataclass
class Procedure:
    name: str
    params: list[str]
    body: list


@dataclass
class Program:
    module: str
    procedures: dict[str, Procedure]


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*(?:\$[A-Za-z_][A-Za-z_0-9]*)?)"
    r"|(?P<op><=|>=|\^=|=|<|>|\+|-|\*|/|\(|\)|;|,))"
)

KEYWORDS = {
    "procedure", "end", "declare", "if", "then", "else", "while", "do",
    "return", "call", "mod",
}


def tokenize(source: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    # Strip PL/I comments /* ... */
    source = re.sub(r"/\*.*?\*/", " ", source, flags=re.S)
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            rest = source[pos:].strip()
            if not rest:
                break
            raise CompilationError(f"cannot tokenize near {rest[:20]!r}")
        pos = match.end()
        if match.group("num") is not None:
            tokens.append(("num", match.group("num")))
        elif match.group("name") is not None:
            word = match.group("name")
            tokens.append(("kw" if word in KEYWORDS else "name", word))
        else:
            tokens.append(("op", match.group("op")))
    tokens.append(("eof", ""))
    return tokens


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> str:
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise CompilationError(
                f"expected {value or kind}, found {token[1]!r}"
            )
        return token[1]

    def accept(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        if token[0] == kind and (value is None or token[1] == value):
            self.pos += 1
            return True
        return False

    # -- grammar ------------------------------------------------------------

    def program(self, module: str) -> Program:
        procedures: dict[str, Procedure] = {}
        while not self.accept("eof"):
            proc = self.procedure()
            if proc.name in procedures:
                raise CompilationError(f"duplicate procedure {proc.name!r}")
            procedures[proc.name] = proc
        if not procedures:
            raise CompilationError("empty program")
        return Program(module, procedures)

    def procedure(self) -> Procedure:
        self.expect("kw", "procedure")
        name = self.expect("name")
        self.expect("op", "(")
        params: list[str] = []
        if not self.accept("op", ")"):
            params.append(self.expect("name"))
            while self.accept("op", ","):
                params.append(self.expect("name"))
            self.expect("op", ")")
        self.expect("op", ";")
        body = self.body()
        self.expect("kw", "end")
        self.expect("op", ";")
        return Procedure(name, params, body)

    def body(self) -> list:
        statements = []
        while True:
            token = self.peek()
            if token == ("kw", "end") or token == ("kw", "else") or token[0] == "eof":
                return statements
            statements.append(self.statement())

    def statement(self):
        if self.accept("kw", "declare"):
            name = self.expect("name")
            self.expect("op", ";")
            return Declare(name)
        if self.accept("kw", "if"):
            cond = self.expr()
            self.expect("kw", "then")
            then = self.body()
            otherwise: list = []
            if self.accept("kw", "else"):
                otherwise = self.body()
            self.expect("kw", "end")
            self.expect("op", ";")
            return If(cond, then, otherwise)
        if self.accept("kw", "while"):
            cond = self.expr()
            self.expect("kw", "do")
            body = self.body()
            self.expect("kw", "end")
            self.expect("op", ";")
            return While(cond, body)
        if self.accept("kw", "return"):
            value = self.expr()
            self.expect("op", ";")
            return Return(value)
        if self.accept("kw", "call"):
            name = self.expect("name")
            call = Call(name, self.call_args())
            self.expect("op", ";")
            return CallStmt(call)
        # assignment
        name = self.expect("name")
        self.expect("op", "=")
        value = self.expr()
        self.expect("op", ";")
        return Assign(name, value)

    def call_args(self) -> list:
        self.expect("op", "(")
        args = []
        if not self.accept("op", ")"):
            args.append(self.expr())
            while self.accept("op", ","):
                args.append(self.expr())
            self.expect("op", ")")
        return args

    # expressions: comparison > additive > multiplicative > unary > primary
    def expr(self):
        left = self.additive()
        token = self.peek()
        if token[0] == "op" and token[1] in ("=", "<", ">", "<=", ">=", "^="):
            op = self.next()[1]
            right = self.additive()
            return BinOp(op, left, right)
        return left

    def additive(self):
        left = self.multiplicative()
        while True:
            token = self.peek()
            if token[0] == "op" and token[1] in ("+", "-"):
                op = self.next()[1]
                left = BinOp(op, left, self.multiplicative())
            else:
                return left

    def multiplicative(self):
        left = self.unary()
        while True:
            token = self.peek()
            if (token[0] == "op" and token[1] in ("*", "/")) or token == ("kw", "mod"):
                op = self.next()[1]
                left = BinOp(op, left, self.unary())
            else:
                return left

    def unary(self):
        if self.accept("op", "-"):
            return Unary("-", self.unary())
        return self.primary()

    def primary(self):
        token = self.next()
        if token[0] == "num":
            return Num(int(token[1]))
        if token[0] == "name":
            if self.peek() == ("op", "("):
                return Call(token[1], self.call_args())
            return Var(token[1])
        if token == ("op", "("):
            inner = self.expr()
            self.expect("op", ")")
            return inner
        raise CompilationError(f"unexpected token {token[1]!r} in expression")


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------

_CMP_OPS = {"=": Op.EQ, "<": Op.LT, ">": Op.GT, "<=": Op.LE, ">=": Op.GE,
            "^=": Op.NE}
_ARITH_OPS = {"+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV,
              "mod": Op.MOD}


class _CodeGen:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.code: list[Instruction] = []
        self.links: list[str] = []
        self._link_index: dict[str, int] = {}

    def link_for(self, target: str) -> int:
        """Linkage slot for a call target (module-qualified)."""
        if "$" not in target:
            target = f"{self.program.module}${target}"
        if target not in self._link_index:
            self._link_index[target] = len(self.links)
            self.links.append(target)
        return self._link_index[target]

    def emit(self, op: Op, a: int = 0, b: int = 0, c: int = 0) -> int:
        self.code.append(Instruction(op, a, b, c))
        return len(self.code) - 1

    def generate(self) -> ObjectSegment:
        definitions: dict[str, int] = {}
        for proc in self.program.procedures.values():
            definitions[proc.name] = len(self.code)
            self.gen_procedure(proc)
        obj = ObjectSegment(
            name=self.program.module,
            code=self.code,
            definitions=definitions,
            links=self.links,
        )
        obj.validate()
        return obj

    def gen_procedure(self, proc: Procedure) -> None:
        slots = {name: i for i, name in enumerate(proc.params)}
        for stmt in proc.body:
            self.gen_stmt(stmt, slots, proc)
        # Fall off the end: return 0.
        self.emit(Op.PUSHI, 0)
        self.emit(Op.RET)

    def gen_stmt(self, stmt, slots: dict[str, int], proc: Procedure) -> None:
        if isinstance(stmt, Declare):
            if stmt.name in slots:
                raise CompilationError(
                    f"{proc.name}: {stmt.name!r} already declared"
                )
            slots[stmt.name] = len(slots)
            self.emit(Op.PUSHI, 0)
            self.emit(Op.STOREF, slots[stmt.name])
        elif isinstance(stmt, Assign):
            if stmt.name not in slots:
                raise CompilationError(
                    f"{proc.name}: assignment to undeclared {stmt.name!r}"
                )
            self.gen_expr(stmt.value, slots, proc)
            self.emit(Op.STOREF, slots[stmt.name])
        elif isinstance(stmt, Return):
            self.gen_expr(stmt.value, slots, proc)
            self.emit(Op.RET)
        elif isinstance(stmt, If):
            self.gen_expr(stmt.cond, slots, proc)
            jz = self.emit(Op.JZ)
            for inner in stmt.then:
                self.gen_stmt(inner, slots, proc)
            if stmt.otherwise:
                jmp = self.emit(Op.JMP)
                self.code[jz] = Instruction(Op.JZ, len(self.code))
                for inner in stmt.otherwise:
                    self.gen_stmt(inner, slots, proc)
                self.code[jmp] = Instruction(Op.JMP, len(self.code))
            else:
                self.code[jz] = Instruction(Op.JZ, len(self.code))
        elif isinstance(stmt, While):
            top = len(self.code)
            self.gen_expr(stmt.cond, slots, proc)
            jz = self.emit(Op.JZ)
            for inner in stmt.body:
                self.gen_stmt(inner, slots, proc)
            self.emit(Op.JMP, top)
            self.code[jz] = Instruction(Op.JZ, len(self.code))
        elif isinstance(stmt, CallStmt):
            self.gen_expr(stmt.call, slots, proc)
            self.emit(Op.POP)
        else:  # pragma: no cover - parser produces only the above
            raise CompilationError(f"unknown statement {stmt!r}")

    def gen_expr(self, expr, slots: dict[str, int], proc: Procedure) -> None:
        if isinstance(expr, Num):
            self.emit(Op.PUSHI, expr.value)
        elif isinstance(expr, Var):
            if expr.name not in slots:
                raise CompilationError(
                    f"{proc.name}: undeclared variable {expr.name!r}"
                )
            self.emit(Op.LOADF, slots[expr.name])
        elif isinstance(expr, Unary):
            self.gen_expr(expr.operand, slots, proc)
            self.emit(Op.NEG)
        elif isinstance(expr, BinOp):
            self.gen_expr(expr.left, slots, proc)
            self.gen_expr(expr.right, slots, proc)
            op = _CMP_OPS.get(expr.op) or _ARITH_OPS.get(expr.op)
            if op is None:  # pragma: no cover
                raise CompilationError(f"unknown operator {expr.op!r}")
            self.emit(op)
        elif isinstance(expr, Call):
            for arg in expr.args:
                self.gen_expr(arg, slots, proc)
            self.emit(Op.CALLL, self.link_for(expr.target), len(expr.args))
        else:  # pragma: no cover
            raise CompilationError(f"unknown expression {expr!r}")


# ---------------------------------------------------------------------------
# front door
# ---------------------------------------------------------------------------

def parse(source: str, module: str = "module") -> Program:
    return _Parser(tokenize(source)).program(module)


def compile_source(source: str, module: str = "module") -> ObjectSegment:
    """Compile KPL source into an object segment."""
    return _CodeGen(parse(source, module)).generate()
