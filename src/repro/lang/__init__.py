"""KPL — a PL/I-subset kernel language, its compiler, and the
per-module certifier of the paper's footnote 6.

"The kernel needs to work correctly for all possible inputs; the
compiler need compile correctly only the specific programs of the
kernel — not all possible programs.  Thus, the compiler's effect on the
kernel can be certified by comparing the source code 'model' for each
kernel module with the compiler-produced object code 'implementation',
a task much simpler than certifying the compiler correct for all
possible source programs."

:mod:`repro.lang.compiler` builds object segments from KPL source;
:mod:`repro.lang.certifier` performs exactly that per-module
comparison: structural checks plus differential execution of the object
code (on the simulated CPU) against an independent interpretation of
the source (experiment E13).
"""

from repro.lang.compiler import Program, compile_source
from repro.lang.certifier import CertificationReport, certify_module

__all__ = [
    "Program",
    "compile_source",
    "CertificationReport",
    "certify_module",
]
