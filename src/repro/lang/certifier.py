"""Per-module compiler certification (footnote 6, experiment E13).

Certifying the compiler for *all* programs is hopeless; certifying its
effect on the kernel's *specific* modules is tractable:

1. **structural conformance** — the object segment parses, every
   definition lands on a code offset, every outward reference is a
   declared link, and the instruction stream contains no operation the
   source could not have produced;
2. **behavioural conformance** — for a supplied set of test vectors,
   the object code executed on the simulated CPU produces the same
   results as an *independent interpretation* of the source text (the
   "source code model").

A tampered or miscompiled object fails one of the two checks; the test
suite tampers deliberately to prove the certifier catches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CertificationError, CompilationError
from repro.hw.cpu import CPU, CodeSegment, Instruction, Link, Op
from repro.hw.memory import MemoryLevel
from repro.hw.rings import user_brackets
from repro.hw.segmentation import SDW, AccessMode, DescriptorSegment
from repro.config import CostModel, RingMode
from repro.lang.compiler import (
    Assign,
    BinOp,
    Call,
    CallStmt,
    Declare,
    If,
    Num,
    Procedure,
    Program,
    Return,
    Unary,
    Var,
    While,
    compile_source,
    parse,
)
from repro.user.object_format import ObjectSegment, parse_symbol


# ---------------------------------------------------------------------------
# the independent source interpreter (the "model")
# ---------------------------------------------------------------------------

class _ReturnSignal(Exception):
    def __init__(self, value: int):
        self.value = value


class SourceInterpreter:
    """Executes the AST directly, sharing no code with the compiler's
    back end."""

    def __init__(self, program: Program, max_steps: int = 1_000_000) -> None:
        self.program = program
        self.max_steps = max_steps
        self._steps = 0

    def run(self, proc_name: str, args: list[int]) -> int:
        proc = self.program.procedures.get(proc_name)
        if proc is None:
            raise CertificationError(f"no procedure {proc_name!r}")
        if len(args) != len(proc.params):
            raise CertificationError(
                f"{proc_name} takes {len(proc.params)} arguments"
            )
        env = dict(zip(proc.params, args))
        try:
            self._exec_body(proc.body, env)
        except _ReturnSignal as signal:
            return signal.value
        return 0

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise CertificationError("source interpretation diverged")

    def _exec_body(self, body: list, env: dict[str, int]) -> None:
        for stmt in body:
            self._exec(stmt, env)

    def _exec(self, stmt, env: dict[str, int]) -> None:
        self._tick()
        if isinstance(stmt, Declare):
            env[stmt.name] = 0
        elif isinstance(stmt, Assign):
            env[stmt.name] = self._eval(stmt.value, env)
        elif isinstance(stmt, Return):
            raise _ReturnSignal(self._eval(stmt.value, env))
        elif isinstance(stmt, If):
            if self._eval(stmt.cond, env):
                self._exec_body(stmt.then, env)
            else:
                self._exec_body(stmt.otherwise, env)
        elif isinstance(stmt, While):
            while self._eval(stmt.cond, env):
                self._tick()
                self._exec_body(stmt.body, env)
        elif isinstance(stmt, CallStmt):
            self._eval(stmt.call, env)
        else:  # pragma: no cover
            raise CertificationError(f"unknown statement {stmt!r}")

    def _eval(self, expr, env: dict[str, int]) -> int:
        self._tick()
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, Var):
            return env[expr.name]
        if isinstance(expr, Unary):
            return -self._eval(expr.operand, env)
        if isinstance(expr, BinOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            return self._apply(expr.op, left, right)
        if isinstance(expr, Call):
            target = expr.target
            if "$" in target:
                module, target = target.split("$", 1)
                if module != self.program.module:
                    raise CertificationError(
                        "kernel modules under certification may not call "
                        f"outside themselves ({expr.target})"
                    )
            return self.run(target, [self._eval(a, env) for a in expr.args])
        raise CertificationError(f"unknown expression {expr!r}")

    @staticmethod
    def _apply(op: str, a: int, b: int) -> int:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                raise CertificationError("source model divides by zero")
            return int(a / b)
        if op == "mod":
            if b == 0:
                raise CertificationError("source model mod by zero")
            return a - int(a / b) * b
        if op == "=":
            return int(a == b)
        if op == "^=":
            return int(a != b)
        if op == "<":
            return int(a < b)
        if op == "<=":
            return int(a <= b)
        if op == ">":
            return int(a > b)
        if op == ">=":
            return int(a >= b)
        raise CertificationError(f"unknown operator {op!r}")


# ---------------------------------------------------------------------------
# executing object code in a sandbox
# ---------------------------------------------------------------------------

class _SandboxContext:
    """A minimal MachineContext: one executable segment, self-links."""

    SEGNO = 100

    def __init__(self, obj: ObjectSegment, module: str) -> None:
        self.dseg = DescriptorSegment()
        self.ring = 4
        self.dseg.add(
            SDW(
                segno=self.SEGNO,
                access=AccessMode.RE,
                brackets=user_brackets(4),
                page_table=[],
                bound=1,
            )
        )
        self._code = CodeSegment(
            instructions=obj.code, entry_points=dict(obj.definitions)
        )
        self._links: list[Link] = []
        for sym in obj.links:
            ref, entry = parse_symbol(sym)
            link = Link(symbol=sym)
            if ref == module and entry in obj.definitions:
                link.snapped = True
                link.segno = self.SEGNO
                link.offset = obj.definitions[entry]
            self._links.append(link)

    def code_segment(self, segno: int) -> CodeSegment:
        return self._code

    def linkage(self) -> list[Link]:
        return self._links

    def stack_limit(self) -> int:
        return 4096


def execute_object(obj: ObjectSegment, module: str, entry: str,
                   args: list[int]) -> int:
    """Run object code on the simulated CPU, isolated from any system."""
    if entry not in obj.definitions:
        raise CertificationError(f"object exports no {entry!r}")
    context = _SandboxContext(obj, module)
    cpu = CPU(
        core=MemoryLevel("sandbox", 1, 1, page_size=16),
        costs=CostModel(),
        ring_mode=RingMode.HARDWARE_6180,
        page_size=16,
    )
    return cpu.execute(
        context, _SandboxContext.SEGNO, obj.definitions[entry], args,
        max_instructions=2_000_000,
    )


# ---------------------------------------------------------------------------
# the certifier
# ---------------------------------------------------------------------------

#: Operations the KPL back end can legitimately emit.
_ALLOWED_OPS = {
    Op.PUSHI, Op.LOADF, Op.STOREF, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD,
    Op.NEG, Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE, Op.JMP, Op.JZ,
    Op.JNZ, Op.CALLL, Op.RET, Op.POP, Op.NOT, Op.DUP, Op.SWAP,
}


@dataclass
class CertificationReport:
    module: str
    procedures_checked: list[str] = field(default_factory=list)
    vectors_run: int = 0
    structural_ok: bool = False

    @property
    def certified(self) -> bool:
        return self.structural_ok and self.vectors_run > 0


def check_structure(obj: ObjectSegment, module: str) -> None:
    """Structural conformance (see module docstring, check 1)."""
    obj.validate()
    for i, inst in enumerate(obj.code):
        if inst.op not in _ALLOWED_OPS:
            raise CertificationError(
                f"instruction {i} uses {inst.op.value!r}, which the "
                "kernel-language back end never emits"
            )
        if inst.op in (Op.JMP, Op.JZ, Op.JNZ) and not (
            0 <= inst.a <= len(obj.code)
        ):
            raise CertificationError(
                f"instruction {i} jumps outside the module"
            )
        if inst.op is Op.CALLL and not 0 <= inst.a < len(obj.links):
            raise CertificationError(
                f"instruction {i} calls through an undeclared link"
            )
    for sym in obj.links:
        ref, _entry = parse_symbol(sym)
        if ref != module:
            raise CertificationError(
                f"kernel module refers outside itself: {sym!r}"
            )


def certify_module(
    source: str,
    module: str,
    vectors: dict[str, list[list[int]]],
    obj: ObjectSegment | None = None,
) -> CertificationReport:
    """Certify that object code matches its source model.

    ``vectors`` maps procedure names to argument lists.  ``obj``
    defaults to a fresh compilation; pass the deployed object segment
    to certify what actually ships.
    """
    program = parse(source, module)
    if obj is None:
        obj = compile_source(source, module)
    check_structure(obj, module)
    report = CertificationReport(module=module, structural_ok=True)
    for proc_name, arg_lists in vectors.items():
        if proc_name not in program.procedures:
            raise CertificationError(f"source has no procedure {proc_name!r}")
        if proc_name not in obj.definitions:
            raise CertificationError(f"object exports no {proc_name!r}")
        for args in arg_lists:
            expected = SourceInterpreter(program).run(proc_name, list(args))
            actual = execute_object(obj, module, proc_name, list(args))
            if expected != actual:
                raise CertificationError(
                    f"{module}${proc_name}{tuple(args)}: source model says "
                    f"{expected}, object code says {actual}"
                )
            report.vectors_run += 1
        report.procedures_checked.append(proc_name)
    return report
