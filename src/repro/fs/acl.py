"""Access control lists.

Each branch carries an ACL: an ordered set of
``(principal-pattern, mode)`` entries.  The effective mode for a
principal is taken from the *most specific* matching entry — the
Multics rule — not the union of matches, so a specific denial
(``mode=n``) overrides a general grant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.segmentation import AccessMode
from repro.security.principal import Principal, PrincipalPattern


@dataclass(frozen=True)
class AclEntry:
    pattern: PrincipalPattern
    mode: AccessMode

    @classmethod
    def make(cls, pattern: str, mode: str) -> "AclEntry":
        return cls(PrincipalPattern.parse(pattern), AccessMode.from_string(mode))

    def __str__(self) -> str:
        return f"{self.mode.to_string():4s} {self.pattern}"


class Acl:
    """An ordered access control list with most-specific-match lookup."""

    def __init__(self, entries: list[AclEntry] | None = None) -> None:
        self._entries: list[AclEntry] = list(entries or [])

    @classmethod
    def make(cls, *pairs: tuple[str, str]) -> "Acl":
        """Build from ``("Person.Project.tag", "rw")`` pairs."""
        return cls([AclEntry.make(pattern, mode) for pattern, mode in pairs])

    def add(self, pattern: str, mode: str) -> None:
        """Add or replace the entry for ``pattern``."""
        new = AclEntry.make(pattern, mode)
        self._entries = [
            e for e in self._entries if str(e.pattern) != str(new.pattern)
        ]
        self._entries.append(new)

    def remove(self, pattern: str) -> bool:
        """Drop the entry for ``pattern``; returns whether one existed."""
        target = str(PrincipalPattern.parse(pattern))
        before = len(self._entries)
        self._entries = [
            e for e in self._entries if str(e.pattern) != target
        ]
        return len(self._entries) != before

    def effective_mode(self, principal: Principal) -> AccessMode:
        """Mode granted to ``principal``: most specific match wins,
        no match means no access."""
        best: AclEntry | None = None
        for entry in self._entries:
            if not entry.pattern.matches(principal):
                continue
            if best is None or entry.pattern.specificity > best.pattern.specificity:
                best = entry
        return best.mode if best else AccessMode.NONE

    def entries(self) -> list[AclEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __str__(self) -> str:
        return "\n".join(str(e) for e in self._entries) or "(empty acl)"

    def copy(self) -> "Acl":
        return Acl(self._entries)
