"""Layer 2 of the file system: the naming hierarchy.

Directories map character-string names to *branches*; a branch carries
the entry's UID, ACL, ring brackets, and security label.  Paths use the
Multics ``>`` separator (``>udd>Crypto>alice>notes``).

Two lookup interfaces coexist, matching the paper's removal project:

* :meth:`DirectoryTree.resolve` walks a full tree name inside the
  kernel — the **legacy** interface ("identifying a directory by
  character string tree name");
* :meth:`DirectoryTree.lookup` performs a *single* name step on a
  directory the caller already holds — the **new** minimal interface
  ("Instead ... a segment number is used.  The algorithms for following
  a tree name through the file system hierarchy ... are thus removed
  from the supervisor"), with the walking loop living in the user ring
  (:mod:`repro.user.search_rules`).

MAC non-decrease: a branch's label must dominate its directory's label,
so walking *down* the tree never descends in classification — the
bottom-layer compartment enforcement the paper's partitioning section
proposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AccessDenied, InvalidArgument, NameDuplication, NoSuchEntry
from repro.fs.acl import Acl
from repro.hw.rings import RingBrackets
from repro.security.mac import BOTTOM, SecurityLabel

#: Path separator (Multics convention).
SEP = ">"


def validate_name(name: str) -> None:
    """Entry names: non-empty, no separator, no NUL, at most 32 chars."""
    if not name or len(name) > 32:
        raise InvalidArgument(f"bad entry name {name!r}")
    if SEP in name or "\x00" in name:
        raise InvalidArgument(f"entry name may not contain {SEP!r}: {name!r}")


def split_path(path: str) -> list[str]:
    """``">a>b>c"`` -> ``["a", "b", "c"]``; ``">"`` -> ``[]``."""
    if not path.startswith(SEP):
        raise InvalidArgument(f"paths are absolute and start with '>': {path!r}")
    parts = [p for p in path.split(SEP) if p]
    for part in parts:
        validate_name(part)
    return parts


@dataclass
class Branch:
    """One directory entry."""

    name: str
    uid: int
    is_directory: bool
    acl: Acl = field(default_factory=Acl)
    brackets: RingBrackets = field(default_factory=lambda: RingBrackets(4, 4, 4))
    label: SecurityLabel = field(default=BOTTOM)
    author: str = ""
    #: Additional names (Multics "added names").
    names: set[str] = field(default_factory=set)
    #: When on, the entry refuses deletion (Multics safety switch).
    safety_switch: bool = False
    #: Meaningful data length in bits (maintained by convention).
    bit_count: int = 0

    def all_names(self) -> set[str]:
        return {self.name} | self.names


class Directory:
    """One directory: an ordered mapping of names to branches.

    A directory carries its own ACL and label (and a display name) so
    the reference monitor can check directory operations — listing is a
    read of the directory, creating/deleting entries is a write — with
    the same code path it uses for segments.
    """

    def __init__(
        self,
        uid: int,
        parent_uid: int | None,
        label: SecurityLabel,
        acl: Acl | None = None,
        name: str = "",
    ) -> None:
        self.uid = uid
        self.parent_uid = parent_uid
        self.label = label
        self.acl = acl if acl is not None else Acl.make(("*.*.*", "rw"))
        self.name = name or f"dir#{uid}"
        #: Storage quota, in pages, for branches created here.
        self.quota_pages = 1 << 20
        #: Memo of the segment pages charged to this directory, or None
        #: when a structural change made it stale.  The quota gate
        #: (``fs_gates._used_pages``) maintains it so that creating the
        #: N-th segment does not rescan the previous N-1 branches; any
        #: mutation outside that gate (salvager, boot image) just
        #: invalidates and the next check rescans.
        self.used_pages_cache: int | None = None
        self._by_name: dict[str, Branch] = {}
        self._branches: list[Branch] = []

    # -- mutation ------------------------------------------------------------

    def add(self, branch: Branch) -> None:
        for name in branch.all_names():
            validate_name(name)
            if name in self._by_name:
                raise NameDuplication(
                    f"name {name!r} already exists in directory {self.uid}"
                )
        if not branch.label.dominates(self.label):
            raise AccessDenied(
                f"branch label {branch.label} does not dominate "
                f"directory label {self.label} (MAC non-decrease)"
            )
        for name in branch.all_names():
            self._by_name[name] = branch
        self._branches.append(branch)
        self.used_pages_cache = None

    def remove(self, name: str) -> Branch:
        branch = self.get(name)
        for alias in branch.all_names():
            del self._by_name[alias]
        self._branches.remove(branch)
        self.used_pages_cache = None
        return branch

    def add_name(self, existing: str, new_name: str) -> None:
        validate_name(new_name)
        branch = self.get(existing)
        if new_name in self._by_name:
            raise NameDuplication(f"name {new_name!r} already exists")
        branch.names.add(new_name)
        self._by_name[new_name] = branch

    def remove_name(self, name: str) -> None:
        branch = self.get(name)
        if name == branch.name:
            raise InvalidArgument(
                "cannot remove the primary name; delete or rename the branch"
            )
        branch.names.discard(name)
        del self._by_name[name]

    def rename(self, old: str, new: str) -> None:
        validate_name(new)
        branch = self.get(old)
        if new in self._by_name and self._by_name[new] is not branch:
            raise NameDuplication(f"name {new!r} already exists")
        if old != branch.name:
            raise InvalidArgument("rename must use the primary name")
        del self._by_name[old]
        branch.name = new
        self._by_name[new] = branch

    # -- queries ------------------------------------------------------------

    def get(self, name: str) -> Branch:
        try:
            return self._by_name[name]
        except KeyError:
            raise NoSuchEntry(
                f"no entry {name!r} in directory {self.uid}"
            ) from None

    def maybe(self, name: str) -> Branch | None:
        return self._by_name.get(name)

    def list_branches(self) -> list[Branch]:
        return list(self._branches)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._branches)


class DirectoryTree:
    """The hierarchy: a root directory plus a UID index of directories."""

    def __init__(self, root_uid: int, root_label: SecurityLabel = BOTTOM) -> None:
        self.root = Directory(root_uid, None, root_label, name=SEP)
        self._dirs: dict[int, Directory] = {root_uid: self.root}

    # -- registration ---------------------------------------------------------

    def register_directory(
        self,
        uid: int,
        parent: Directory,
        label: SecurityLabel,
        acl: Acl | None = None,
        name: str = "",
    ) -> Directory:
        if uid in self._dirs:
            raise InvalidArgument(f"directory uid {uid} already registered")
        if not label.dominates(parent.label):
            raise AccessDenied(
                f"directory label {label} must dominate parent label "
                f"{parent.label}"
            )
        directory = Directory(uid, parent.uid, label, acl=acl, name=name)
        self._dirs[uid] = directory
        return directory

    def drop_directory(self, uid: int) -> None:
        directory = self.directory(uid)
        if len(directory):
            raise InvalidArgument(f"directory {uid} is not empty")
        if directory is self.root:
            raise InvalidArgument("cannot drop the root")
        del self._dirs[uid]

    # -- lookup ------------------------------------------------------------

    def directory(self, uid: int) -> Directory:
        try:
            return self._dirs[uid]
        except KeyError:
            raise NoSuchEntry(f"no directory with uid {uid}") from None

    def is_directory_uid(self, uid: int) -> bool:
        return uid in self._dirs

    def lookup(self, directory: Directory, name: str) -> Branch:
        """The minimal kernel interface: one name, one directory."""
        return directory.get(name)

    def resolve(self, path: str) -> Branch:
        """The legacy kernel interface: walk a full tree name.

        (In the new system this loop executes in the user ring; the
        kernel only ever performs single :meth:`lookup` steps.)
        """
        parts = split_path(path)
        if not parts:
            raise InvalidArgument("the root has no branch")
        current = self.root
        for name in parts[:-1]:
            branch = current.get(name)
            if not branch.is_directory:
                raise NoSuchEntry(f"{name!r} in {path!r} is not a directory")
            current = self.directory(branch.uid)
        return current.get(parts[-1])

    def resolve_directory(self, path: str) -> Directory:
        """Resolve a path that must name a directory (legacy helper)."""
        parts = split_path(path)
        current = self.root
        for name in parts:
            branch = current.get(name)
            if not branch.is_directory:
                raise NoSuchEntry(f"{name!r} in {path!r} is not a directory")
            current = self.directory(branch.uid)
        return current

    def path_of(self, directory: Directory) -> str:
        """Reconstruct a directory's tree name (diagnostic use)."""
        if directory.parent_uid is None:
            return SEP
        names: list[str] = []
        current = directory
        while current.parent_uid is not None:
            parent = self.directory(current.parent_uid)
            name = next(
                (
                    b.name
                    for b in parent.list_branches()
                    if b.is_directory and b.uid == current.uid
                ),
                None,
            )
            if name is None:  # pragma: no cover - orphan
                name = f"#{current.uid}"
            names.append(name)
            current = parent
        return SEP + SEP.join(reversed(names))

    def directories(self) -> list[Directory]:
        return list(self._dirs.values())
