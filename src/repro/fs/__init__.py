"""The file system, in the paper's two layers.

* Layer 1 (:mod:`repro.fs.uid_layer`): "a file system in which all
  segments were named by system generated unique identifiers."
* Layer 2 (:mod:`repro.fs.directory`): "a naming hierarchy on top of
  the primitive first layer file system."

Plus ACLs (:mod:`repro.fs.acl`) and the split known segment table
(:mod:`repro.fs.kst`): the common half (segment numbers) stays in the
kernel, the private half (reference names) moves to the user ring
(:mod:`repro.user.refnames`) — the removal the paper credits with a
tenfold reduction in protected address-space-management code (E3).
"""

from repro.fs.acl import Acl, AclEntry
from repro.fs.directory import Branch, Directory, DirectoryTree
from repro.fs.kst import KnownSegmentTable
from repro.fs.uid_layer import UidFileSystem

__all__ = [
    "Acl",
    "AclEntry",
    "Branch",
    "Directory",
    "DirectoryTree",
    "KnownSegmentTable",
    "UidFileSystem",
]
