"""Layer 1 of the file system: segments named by unique identifiers.

The paper's bottom-layer proposal: "the bottom layer might implement a
file system in which all segments were named by system generated unique
identifiers."  This layer knows nothing about tree names, directories,
or reference names — only UIDs, sizes, security labels, and storage.

Compartmentalization (the MITRE model) is enforced *here*, at the
bottom layer, so that even the naming hierarchy above cannot create a
downward flow: every segment carries an immutable
:class:`~repro.security.mac.SecurityLabel` from creation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import InvalidArgument, NoSuchEntry, QuotaExceeded
from repro.security.mac import BOTTOM, SecurityLabel
from repro.vm.segment_control import ActiveSegmentTable


@dataclass
class SegmentRecord:
    """Layer-1 metadata for one segment."""

    uid: int
    n_pages: int
    label: SecurityLabel = field(default=BOTTOM)
    created_at: int = 0
    #: True for segments that hold a layer-2 directory's contents.
    is_directory: bool = False


class UidFileSystem:
    """The flat, UID-named segment store."""

    def __init__(
        self,
        ast: ActiveSegmentTable,
        max_pages: int | None = None,
        page_control=None,
    ) -> None:
        self.ast = ast
        #: Optional back-reference so deletion can flush resident pages.
        self.page_control = page_control
        self._uids = itertools.count(1000)
        self._records: dict[int, SegmentRecord] = {}
        #: Total page budget (defaults to the disk size).
        self.max_pages = (
            max_pages
            if max_pages is not None
            else ast.hierarchy.disk.n_frames
        )
        self.pages_in_use = 0

    # -- creation / deletion ----------------------------------------------

    def create_segment(
        self,
        n_pages: int,
        label: SecurityLabel = BOTTOM,
        is_directory: bool = False,
        created_at: int = 0,
    ) -> int:
        """Create a segment, returning its system-generated UID."""
        if n_pages <= 0:
            raise InvalidArgument("a segment needs at least one page")
        if self.pages_in_use + n_pages > self.max_pages:
            raise QuotaExceeded(
                f"creating {n_pages} pages would exceed the "
                f"{self.max_pages}-page store"
            )
        uid = next(self._uids)
        self._records[uid] = SegmentRecord(
            uid, n_pages, label, created_at, is_directory
        )
        self.ast.activate(uid, n_pages)
        self.pages_in_use += n_pages
        return uid

    def delete_segment(self, uid: int) -> None:
        """Delete a segment, reclaiming core frames and storage homes.

        Freeing clears frames (when so configured), which is what keeps
        the classic residue flaw out of the kernel (experiment E11).
        """
        record = self.record(uid)
        seg = self.ast.get(uid)
        if self.page_control is not None:
            self.page_control.flush_segment(seg)
        else:
            for pageno in seg.resident_pages():
                ptw = seg.ptws[pageno]
                self.ast.hierarchy.core.free(ptw.frame)
                ptw.evict()
        self.ast.drop(uid)
        del self._records[uid]
        self.pages_in_use -= record.n_pages

    # -- queries ------------------------------------------------------------

    def record(self, uid: int) -> SegmentRecord:
        try:
            return self._records[uid]
        except KeyError:
            raise NoSuchEntry(f"no segment with uid {uid}") from None

    def exists(self, uid: int) -> bool:
        return uid in self._records

    def label_of(self, uid: int) -> SecurityLabel:
        return self.record(uid).label

    def uids(self) -> list[int]:
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)
