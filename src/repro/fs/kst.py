"""The known segment table — the *common* half.

Before the removal project, the KST mixed two things: the mapping from
segment numbers to file-system objects (needed by the kernel to build
SDWs) and the management of symbolic *reference names* (needed only by
the user's own naming environment).  Bratt's project split it: "a data
base central to the management of the address space, the known segment
table, be split into a private and a common part".

This module is the common (kernel) half: segment-number allocation and
the segno ↔ UID correspondence, per process.  The private half —
reference names — lives in the user ring
(:mod:`repro.user.refnames`).  The tenfold code-size reduction of
experiment E3 is the difference between this module plus its gates and
the legacy in-kernel equivalent (address space + reference names +
tree-walking + search rules).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidArgument, NoSuchEntry

#: First segment number handed to user segments (lower numbers are
#: reserved for the kernel's own segments and per-ring stacks).
FIRST_USER_SEGNO = 8


@dataclass
class KstEntry:
    segno: int
    uid: int
    #: Whether the branch was a directory (the kernel lies about
    #: directories' existence to the user ring only via access checks,
    #: but it must remember what it mapped).
    is_directory: bool = False


class KnownSegmentTable:
    """Per-process segno <-> UID map (kernel data)."""

    def __init__(self, first_segno: int = FIRST_USER_SEGNO, capacity: int = 4096) -> None:
        if first_segno < 0:
            raise InvalidArgument("first segment number must be >= 0")
        self.first_segno = first_segno
        self.capacity = capacity
        self._by_segno: dict[int, KstEntry] = {}
        self._by_uid: dict[int, KstEntry] = {}
        self._next = first_segno

    def make_known(self, uid: int, is_directory: bool = False) -> tuple[int, bool]:
        """Map ``uid`` into the address space.

        Returns ``(segno, was_already_known)``; idempotent per UID, as
        in Multics (initiating the same segment twice yields the same
        segment number).
        """
        entry = self._by_uid.get(uid)
        if entry is not None:
            return entry.segno, True
        if len(self._by_segno) >= self.capacity:
            raise InvalidArgument("known segment table is full")
        segno = self._allocate_segno()
        entry = KstEntry(segno, uid, is_directory)
        self._by_segno[segno] = entry
        self._by_uid[uid] = entry
        return segno, False

    def terminate(self, segno: int) -> int:
        """Unmap a segment number; returns the UID it referenced."""
        entry = self._by_segno.pop(segno, None)
        if entry is None:
            raise NoSuchEntry(f"segment number {segno} is not known")
        del self._by_uid[entry.uid]
        return entry.uid

    def _allocate_segno(self) -> int:
        # Reuse the lowest free number at or above first_segno.
        while self._next in self._by_segno:
            self._next += 1
        segno = self._next
        self._next += 1
        return segno

    # -- queries ------------------------------------------------------------

    def uid_of(self, segno: int) -> int:
        try:
            return self._by_segno[segno].uid
        except KeyError:
            raise NoSuchEntry(f"segment number {segno} is not known") from None

    def segno_of(self, uid: int) -> int:
        try:
            return self._by_uid[uid].segno
        except KeyError:
            raise NoSuchEntry(f"uid {uid} is not known") from None

    def is_known(self, uid: int) -> bool:
        return uid in self._by_uid

    def entry(self, segno: int) -> KstEntry:
        try:
            return self._by_segno[segno]
        except KeyError:
            raise NoSuchEntry(f"segment number {segno} is not known") from None

    def entries(self) -> list[KstEntry]:
        return sorted(self._by_segno.values(), key=lambda e: e.segno)

    def __len__(self) -> int:
        return len(self._by_segno)
