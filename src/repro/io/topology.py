"""A simulated multi-node network topology in front of the attachment.

The paper's argument keeps exactly one external-I/O mechanism — the
network attachment (:mod:`repro.io.network`).  This module models the
*network behind it*: remote hosts connected to the kernel endpoint by
routed links, each with its own latency and failure behaviour.  A
message sent from a host traverses every link on its route; any link
may drop it, delay it, or be partitioned outright.  The existing
:class:`~repro.io.network.NetworkAttachment` becomes one endpoint of
the topology (the ``multics`` host), unchanged — traffic that enters
through :meth:`NetworkTopology.send` merely arrives at
:meth:`NetworkAttachment.deliver` later, or never.

Failure model.  Every link is a fault site named ``link.<name>``
(consulted per transit through the shared :class:`FaultInjector`, so
plan-driven faults compose with everything else) and understands four
kinds:

* ``drop``           — this transit is lost on the wire;
* ``latency_spike``  — this transit pays ``spike_cycles`` extra;
* ``partition``      — the link goes down for ``partition_cycles``
  (the triggering transit and everything sent while down is lost);
* ``flap``           — a short outage of ``flap_cycles`` (the link
  comes back by itself — the model of a bouncing interface).

The same four effects can be commanded directly (``partition()``,
``flap()``, ``spike()``, ``force_drop()``) — that is the scenario
engine's hook (:mod:`repro.faults.chaos`).  Either way the outcome is
pure denial of use: a message arrives intact or not at all; nothing in
this module can alter a message body or deliver it to the wrong
endpoint, which is exactly the degradation invariant the R2 bench
asserts end to end.

Transit decisions are evaluated at send time against the simulated
clock, so runs are a pure function of (config, workload, fault seed):
same seed, same storms, byte-identical exports.

Metric names are fixed aggregates over all links (``net.link.*``);
per-link numbers stay on the :class:`Link` objects and go into bench
extras, never into config-dependent metric names.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.hw.clock import Simulator
    from repro.io.network import NetworkAttachment

#: The topology name of the kernel's network attachment endpoint.
ATTACHMENT_HOST = "multics"

#: Failure kinds a ``link.<name>`` fault site understands.
LINK_FAULT_KINDS = ("drop", "latency_spike", "partition", "flap")

#: The default topology: one remote host, one direct link.  This is
#: the pre-topology behaviour (a single attachment point) expressed as
#: the degenerate network, so every system always has a topology and
#: the ``net.link.*`` names always register.
DEFAULT_SPEC: dict = {
    "hosts": ["remote"],
    "links": [{"name": "uplink", "a": "remote", "b": ATTACHMENT_HOST}],
}


class Link:
    """One routed link: latency, an outage window, and its own books."""

    def __init__(
        self,
        name: str,
        a: str,
        b: str,
        latency: int = 20,
        spike_cycles: int = 200,
        spike_window: int = 1000,
        partition_cycles: int = 2000,
        flap_cycles: int = 250,
    ) -> None:
        if latency < 0:
            raise ValueError(f"link {name!r}: latency cannot be negative")
        if min(spike_cycles, spike_window, partition_cycles, flap_cycles) <= 0:
            raise ValueError(f"link {name!r}: fault windows must be positive")
        self.name = name
        self.a = a
        self.b = b
        self.latency = latency
        self.spike_cycles = spike_cycles
        self.spike_window = spike_window
        self.partition_cycles = partition_cycles
        self.flap_cycles = flap_cycles
        #: Simulated time until which the link is down / degraded.
        self.down_until = 0
        self.spiked_until = 0
        #: Transits a scenario ``drop`` event has condemned in advance.
        self.pending_drops = 0
        # -- books (bench extras; aggregated into net.link.*) ----------
        self.attempts = 0
        self.delivered = 0
        self.dropped = 0
        self.partition_drops = 0
        self.latency_spikes = 0
        self.partitions = 0
        self.flaps = 0

    # -- scenario-driven effects ----------------------------------------

    def partition(self, now: int, cycles: int | None = None) -> None:
        """Take the link down for ``cycles`` (default its own window)."""
        self.partitions += 1
        self.down_until = max(
            self.down_until, now + (cycles or self.partition_cycles)
        )

    def flap(self, now: int, cycles: int | None = None) -> None:
        """A short self-healing outage."""
        self.flaps += 1
        self.down_until = max(
            self.down_until, now + (cycles or self.flap_cycles)
        )

    def spike(self, now: int, cycles: int | None = None) -> None:
        """Degrade latency for a window (each transit pays extra)."""
        self.spiked_until = max(
            self.spiked_until, now + (cycles or self.spike_window)
        )

    def force_drop(self, count: int = 1) -> None:
        """Condemn the next ``count`` transits."""
        self.pending_drops += count

    def down(self, now: int) -> bool:
        return now < self.down_until

    # -- the transit ----------------------------------------------------

    def transit(self, now: int,
                injector: "FaultInjector | None" = None,
                detail: str = "") -> tuple[bool, int]:
        """One message crosses the link; returns ``(survived, latency)``.

        The plan-driven fault site is consulted first, then scenario
        state (outage windows, condemned transits).  A lost message is
        lost whole — there is no path that mutates it.
        """
        self.attempts += 1
        kind = (
            injector.check(f"link.{self.name}", detail=detail)
            if injector is not None
            else None
        )
        if kind == "partition":
            self.partition(now)
        elif kind == "flap":
            self.flap(now)
        if self.pending_drops > 0:
            self.pending_drops -= 1
            self.dropped += 1
            return False, 0
        if kind == "drop":
            self.dropped += 1
            return False, 0
        if self.down(now):
            self.partition_drops += 1
            return False, 0
        latency = self.latency
        if kind == "latency_spike" or now < self.spiked_until:
            self.latency_spikes += 1
            latency += self.spike_cycles
        self.delivered += 1
        return True, latency

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.name}: {self.a}<->{self.b}, {self.latency}cy)"


def validate_spec(spec: object) -> None:
    """Raise ``ValueError`` on a malformed topology spec.

    Called from :meth:`SystemConfig.validate` so a bad declarative
    topology fails at configuration time, not mid-boot.
    """
    if not isinstance(spec, dict):
        raise ValueError("topology spec must be a dict")
    unknown = set(spec) - {"hosts", "links"}
    if unknown:
        raise ValueError(f"topology spec: unknown keys {sorted(unknown)}")
    hosts = spec.get("hosts", [])
    links = spec.get("links", [])
    if not isinstance(hosts, list) or not all(
        isinstance(h, str) and h for h in hosts
    ):
        raise ValueError("topology hosts must be a list of names")
    if ATTACHMENT_HOST in hosts:
        raise ValueError(
            f"host name {ATTACHMENT_HOST!r} is reserved for the attachment"
        )
    if not isinstance(links, list) or not links:
        raise ValueError("topology needs at least one link")
    known = set(hosts) | {ATTACHMENT_HOST}
    names: set[str] = set()
    for entry in links:
        if not isinstance(entry, dict):
            raise ValueError("each topology link must be a dict")
        for key in ("name", "a", "b"):
            if not isinstance(entry.get(key), str) or not entry[key]:
                raise ValueError(f"topology link needs a {key!r} string")
        if entry["name"] in names:
            raise ValueError(f"duplicate link name {entry['name']!r}")
        names.add(entry["name"])
        for end in (entry["a"], entry["b"]):
            if end not in known:
                raise ValueError(
                    f"link {entry['name']!r} endpoint {end!r} is not a host"
                )
    # Connectivity is checked at build time (routes must exist).


class NetworkTopology:
    """Hosts and routed links in front of one kernel attachment."""

    def __init__(
        self,
        sim: "Simulator",
        attachment: "NetworkAttachment",
        injector: "FaultInjector | None" = None,
        metrics=None,
    ) -> None:
        self.sim = sim
        self.attachment = attachment
        self.injector = injector
        self.hosts: list[str] = [ATTACHMENT_HOST]
        self.links: dict[str, Link] = {}
        #: host -> adjacent links, insertion-ordered (deterministic BFS).
        self._adjacent: dict[str, list[Link]] = {ATTACHMENT_HOST: []}
        self._routes: dict[str, list[Link] | None] = {}
        #: Messages topology.send lost before reaching the attachment.
        self.lost = 0
        self.sent = 0
        if metrics is not None:
            metrics.counter("net.link.attempts",
                            "message transits attempted across links",
                            source=lambda: self._sum("attempts"))
            metrics.counter("net.link.delivered",
                            "transits that crossed their link",
                            source=lambda: self._sum("delivered"))
            metrics.counter("net.link.dropped",
                            "transits lost to drop faults",
                            source=lambda: self._sum("dropped"))
            metrics.counter("net.link.partition_drops",
                            "transits lost to a downed link",
                            source=lambda: self._sum("partition_drops"))
            metrics.counter("net.link.latency_spikes",
                            "transits that paid spike latency",
                            source=lambda: self._sum("latency_spikes"))
            metrics.counter("net.link.partitions",
                            "partition events across links",
                            source=lambda: self._sum("partitions"))
            metrics.counter("net.link.flaps", "flap events across links",
                            source=lambda: self._sum("flaps"))
            metrics.gauge("net.link.links", "links in the topology",
                          source=lambda: len(self.links))
            metrics.gauge("net.link.down", "links currently partitioned",
                          source=lambda: sum(
                              1 for link in self.links.values()
                              if link.down(self.sim.clock.now)
                          ))

    def _sum(self, attr: str) -> int:
        return sum(getattr(link, attr) for link in self.links.values())

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        spec: dict | None,
        sim: "Simulator",
        attachment: "NetworkAttachment",
        injector: "FaultInjector | None" = None,
        metrics=None,
    ) -> "NetworkTopology":
        """Build from a declarative spec (``DEFAULT_SPEC`` when None)."""
        spec = DEFAULT_SPEC if spec is None else spec
        validate_spec(spec)
        topology = cls(sim, attachment, injector=injector, metrics=metrics)
        for host in spec.get("hosts", []):
            topology.add_host(host)
        for entry in spec["links"]:
            topology.add_link(**entry)
        for host in spec.get("hosts", []):
            if topology.route(host) is None:
                raise ValueError(
                    f"topology host {host!r} cannot reach the attachment"
                )
        return topology

    def add_host(self, name: str) -> None:
        if name in self._adjacent:
            raise ValueError(f"duplicate host {name!r}")
        self.hosts.append(name)
        self._adjacent[name] = []
        self._routes.clear()

    def add_link(self, name: str, a: str, b: str, **kwargs) -> Link:
        if name in self.links:
            raise ValueError(f"duplicate link {name!r}")
        for end in (a, b):
            if end not in self._adjacent:
                raise ValueError(f"link {name!r} endpoint {end!r} unknown")
        link = Link(name, a, b, **kwargs)
        self.links[name] = link
        self._adjacent[a].append(link)
        self._adjacent[b].append(link)
        self._routes.clear()
        return link

    # -- routing ---------------------------------------------------------

    def route(self, host: str) -> list[Link] | None:
        """The links a message from ``host`` traverses to the
        attachment — BFS shortest path, deterministic because adjacency
        lists keep insertion order.  None when partitioned by
        construction (no path at all, ever)."""
        if host not in self._adjacent:
            raise ValueError(f"unknown host {host!r}")
        cached = self._routes.get(host, Ellipsis)
        if cached is not Ellipsis:
            return cached
        paths: dict[str, list[Link]] = {host: []}
        frontier = deque([host])
        while frontier:
            node = frontier.popleft()
            if node == ATTACHMENT_HOST:
                break
            for link in self._adjacent[node]:
                other = link.b if link.a == node else link.a
                if other not in paths:
                    paths[other] = paths[node] + [link]
                    frontier.append(other)
        result = paths.get(ATTACHMENT_HOST)
        self._routes[host] = result
        return result

    def busiest_link(self) -> Link:
        """The link that has carried the most transits (ties broken by
        name) — the live metric the targeted chaos controller reads."""
        if not self.links:
            raise ValueError("topology has no links")
        return max(
            sorted(self.links.values(), key=lambda link: link.name),
            key=lambda link: link.attempts,
        )

    # -- traffic ---------------------------------------------------------

    def send(self, host: str, body: str) -> bool:
        """A message leaves ``host`` for the kernel attachment.

        Returns True when it will arrive (the delivery is scheduled at
        the route's accumulated latency); False when some link lost it.
        Loss is total — a surviving message reaches
        :meth:`NetworkAttachment.deliver` with its body intact.
        """
        route = self.route(host)
        if route is None:
            raise ValueError(f"host {host!r} has no route to the attachment")
        self.sent += 1
        now = self.sim.clock.now
        total_latency = 0
        for link in route:
            survived, latency = link.transit(
                now, self.injector, detail=f"{host}: {body[:24]}"
            )
            if not survived:
                self.lost += 1
                return False
            total_latency += latency
        self.sim.schedule(
            total_latency,
            lambda: self.attachment.deliver(host, body),
        )
        return True

    def link_report(self) -> dict[str, dict]:
        """Per-link books for bench extras (never metric names)."""
        return {
            name: {
                "attempts": link.attempts,
                "delivered": link.delivered,
                "dropped": link.dropped,
                "partition_drops": link.partition_drops,
                "latency_spikes": link.latency_spikes,
                "partitions": link.partitions,
                "flaps": link.flaps,
            }
            for name, link in sorted(self.links.items())
        }
