"""I/O: devices, the network attachment, and the two buffering designs.

The paper's simplification projects here:

* replace the zoo of per-device kernel mechanisms (terminals, tapes,
  card readers/punches, printers) with a single network attachment as
  the only path for external I/O;
* replace the circular network input buffer (with its
  old-messages-not-removed-before-a-complete-circuit bug) with a
  VM-backed buffer that appears infinite (experiment E6).

:mod:`repro.io.topology` grows the single attachment into a routed
multi-node topology — remote hosts reach the attachment over links
with latency/loss models and per-link fault sites, the substrate the
chaos plane (:mod:`repro.faults.chaos`) storms against.
"""

from repro.io.buffers import CircularBuffer, InfiniteVMBuffer
from repro.io.devices import (
    CardPunch,
    CardReader,
    Device,
    LinePrinter,
    TapeDrive,
    Terminal,
)
from repro.io.network import NetworkAttachment, TrafficPattern
from repro.io.topology import (
    ATTACHMENT_HOST,
    LINK_FAULT_KINDS,
    Link,
    NetworkTopology,
    validate_spec,
)

__all__ = [
    "CircularBuffer",
    "InfiniteVMBuffer",
    "Device",
    "Terminal",
    "TapeDrive",
    "CardReader",
    "CardPunch",
    "LinePrinter",
    "NetworkAttachment",
    "TrafficPattern",
    "ATTACHMENT_HOST",
    "LINK_FAULT_KINDS",
    "Link",
    "NetworkTopology",
    "validate_spec",
]
