"""The two network input-buffering designs (experiment E6).

Old design — :class:`CircularBuffer`: a fixed-size ring "which had to
be used over and over again, with attendant problems of old messages
not being removed before a complete circuit of the buffer was made."
When the writer laps the reader, unconsumed messages are overwritten
and lost; the consumer can also observe *stale* data if it trusts a
lapped slot.

New design — :class:`InfiniteVMBuffer`: "by utilizing the virtual
memory, provides a core resident buffer which appears to be of infinite
length."  Appending allocates fresh pages through the ordinary segment
machinery; nothing is ever overwritten, so no message can be lost to
lapping, and the special-purpose storage management disappears (the
virtual memory *is* the storage manager).

Both expose the same ``put`` / ``get`` interface so the benches swap
them freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BufferStats:
    puts: int = 0
    gets: int = 0
    #: Messages destroyed by the writer lapping the reader.
    overwrites: int = 0
    #: Gets that returned nothing.
    underruns: int = 0
    #: High-water mark of queued messages.
    peak_queue: int = 0


class CircularBuffer:
    """Fixed-capacity ring; the writer never blocks, it *laps*."""

    kind = "circular"

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._slots: list[object | None] = [None] * capacity
        self._write = 0  # next slot to write
        self._read = 0   # next slot to read
        self._count = 0  # unconsumed messages
        self.stats = BufferStats()

    def put(self, message: object) -> bool:
        """Insert a message; returns False if an old one was destroyed."""
        self.stats.puts += 1
        clean = True
        if self._count == self.capacity:
            # A complete circuit: the oldest unread message is destroyed.
            self._read = (self._read + 1) % self.capacity
            self._count -= 1
            self.stats.overwrites += 1
            clean = False
        self._slots[self._write] = message
        self._write = (self._write + 1) % self.capacity
        self._count += 1
        self.stats.peak_queue = max(self.stats.peak_queue, self._count)
        return clean

    def get(self) -> object | None:
        """Remove and return the oldest message, or None if empty."""
        if self._count == 0:
            self.stats.underruns += 1
            return None
        message = self._slots[self._read]
        self._slots[self._read] = None
        self._read = (self._read + 1) % self.capacity
        self._count -= 1
        self.stats.gets += 1
        return message

    def __len__(self) -> int:
        return self._count

    @property
    def lost(self) -> int:
        return self.stats.overwrites


class InfiniteVMBuffer:
    """Append-only buffer backed by (simulated) virtual memory.

    ``page_hook``, when provided, is called whenever another page's
    worth of messages has been appended — the system facade wires it to
    real segment growth so buffer storage is accounted like any other
    VM use (that reuse is the whole simplification).
    """

    kind = "infinite"

    def __init__(self, messages_per_page: int = 16, page_hook=None) -> None:
        if messages_per_page <= 0:
            raise ValueError("messages_per_page must be positive")
        self.messages_per_page = messages_per_page
        self.page_hook = page_hook
        self._messages: list[object] = []
        self._read = 0
        self.pages_allocated = 0
        self.stats = BufferStats()

    def put(self, message: object) -> bool:
        """Append; always clean — nothing is ever overwritten."""
        self.stats.puts += 1
        self._messages.append(message)
        queued = len(self._messages) - self._read
        self.stats.peak_queue = max(self.stats.peak_queue, queued)
        # Grow whenever the message census spills past the storage
        # already allocated (ceiling division — a modulo test breaks
        # down when messages_per_page == 1, where `len % 1` is never 1).
        pages_needed = -(-len(self._messages) // self.messages_per_page)
        if pages_needed > self.pages_allocated:
            self.pages_allocated = pages_needed
            if self.page_hook is not None:
                self.page_hook()
        return True

    def get(self) -> object | None:
        if self._read >= len(self._messages):
            self.stats.underruns += 1
            return None
        message = self._messages[self._read]
        self._read += 1
        self.stats.gets += 1
        # Consumed prefixes could be returned to the VM; the census
        # keeps them for replay-freedom checks in tests.
        return message

    def __len__(self) -> int:
        return len(self._messages) - self._read

    @property
    def lost(self) -> int:
        return 0
