"""Peripheral device models for the legacy I/O path.

Each device is a small state machine: attach/detach discipline, a
transfer latency, and an interrupt line it raises on completion.  The
legacy supervisor carries one kernel mechanism (gate family + handler
state) per device class — exactly the bulk the paper proposes to
replace with the single network attachment.
"""

from __future__ import annotations

from collections import deque

from repro.errors import InvalidArgument
from repro.hw.clock import Simulator
from repro.hw.interrupts import InterruptController


class Device:
    """Base device: attach discipline + completion interrupts."""

    device_class = "device"

    def __init__(
        self,
        name: str,
        sim: Simulator,
        interrupts: InterruptController,
        line: int,
        latency: int = 50,
    ) -> None:
        self.name = name
        self.sim = sim
        self.interrupts = interrupts
        self.line = line
        self.latency = latency
        self.attached_by: int | None = None  # pid
        self.operations = 0

    def attach(self, pid: int) -> None:
        if self.attached_by is not None and self.attached_by != pid:
            raise InvalidArgument(
                f"{self.name} is attached by process {self.attached_by}"
            )
        self.attached_by = pid

    def detach(self, pid: int) -> None:
        if self.attached_by != pid:
            raise InvalidArgument(f"{self.name} is not attached by {pid}")
        self.attached_by = None

    def _require_attached(self, pid: int) -> None:
        if self.attached_by != pid:
            raise InvalidArgument(
                f"{self.name}: process {pid} has not attached the device"
            )

    def _complete(self, payload: object = None) -> None:
        """Schedule the completion interrupt."""
        self.operations += 1
        self.sim.schedule(
            self.latency,
            lambda: self.interrupts.raise_line(self.line, payload),
        )


class Terminal(Device):
    """A remote-access terminal: typed input queue, printed output."""

    device_class = "terminal"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._input: deque[str] = deque()
        self.output: list[str] = []

    def type_line(self, line: str) -> None:
        """The (simulated) human types a line."""
        self._input.append(line)
        self._complete(("input_ready", self.name))

    def read_line(self, pid: int) -> str | None:
        self._require_attached(pid)
        self.operations += 1
        return self._input.popleft() if self._input else None

    def write_line(self, pid: int, line: str) -> None:
        self._require_attached(pid)
        self.output.append(line)
        self._complete(("write_done", self.name))


class TapeDrive(Device):
    """Sequential-access tape: records, positioned by a head."""

    device_class = "tape"

    def __init__(self, *args, latency: int = 200, **kwargs) -> None:
        super().__init__(*args, latency=latency, **kwargs)
        self.records: list[list[int]] = []
        self.position = 0

    def mount(self, records: list[list[int]]) -> None:
        self.records = [list(r) for r in records]
        self.position = 0

    def rewind(self, pid: int) -> None:
        self._require_attached(pid)
        self.position = 0
        self._complete(("rewound", self.name))

    def read_record(self, pid: int) -> list[int] | None:
        self._require_attached(pid)
        if self.position >= len(self.records):
            return None
        record = self.records[self.position]
        self.position += 1
        self._complete(("read_done", self.name))
        return list(record)

    def write_record(self, pid: int, record: list[int]) -> None:
        self._require_attached(pid)
        del self.records[self.position:]
        self.records.append(list(record))
        self.position = len(self.records)
        self._complete(("write_done", self.name))


class CardReader(Device):
    """Reads a deck, one 80-column card at a time."""

    device_class = "card_reader"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._deck: deque[str] = deque()

    def load_deck(self, cards: list[str]) -> None:
        for card in cards:
            if len(card) > 80:
                raise InvalidArgument("a card holds at most 80 columns")
        self._deck.extend(cards)

    def read_card(self, pid: int) -> str | None:
        self._require_attached(pid)
        self._complete(("card_read", self.name))
        return self._deck.popleft() if self._deck else None


class CardPunch(Device):
    """Punches cards into an output stacker."""

    device_class = "card_punch"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stacker: list[str] = []

    def punch_card(self, pid: int, card: str) -> None:
        self._require_attached(pid)
        if len(card) > 80:
            raise InvalidArgument("a card holds at most 80 columns")
        self.stacker.append(card)
        self._complete(("card_punched", self.name))


class LinePrinter(Device):
    """Prints lines onto paper (a list of pages of lines)."""

    device_class = "printer"

    LINES_PER_PAGE = 60

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.pages: list[list[str]] = [[]]

    def print_line(self, pid: int, line: str) -> None:
        self._require_attached(pid)
        if len(self.pages[-1]) >= self.LINES_PER_PAGE:
            self.pages.append([])
        self.pages[-1].append(line)
        self._complete(("printed", self.name))

    @property
    def lines_printed(self) -> int:
        return sum(len(page) for page in self.pages)
