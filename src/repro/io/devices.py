"""Peripheral device models for the legacy I/O path.

Each device is a small state machine: attach/detach discipline, a
transfer latency, and an interrupt line it raises on completion.  The
legacy supervisor carries one kernel mechanism (gate family + handler
state) per device class — exactly the bulk the paper proposes to
replace with the single network attachment.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.errors import DeviceError, InvalidArgument
from repro.hw.clock import Simulator
from repro.hw.interrupts import InterruptController

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector


class Device:
    """Base device: attach discipline + completion interrupts.

    Completions travel as *tokens* through a small recovery machine:
    a transfer error reschedules the completion with doubling backoff
    (bounded by ``max_retries``, after which the device is taken out of
    service and waiters see a ``device_error`` payload instead of a
    hang); a hang or lost completion interrupt is caught by a watchdog
    armed at ``latency * timeout_factor`` that redelivers the token.
    All timing is simulated-clock cycles — nothing sleeps.
    """

    device_class = "device"

    def __init__(
        self,
        name: str,
        sim: Simulator,
        interrupts: InterruptController,
        line: int,
        latency: int = 50,
        injector: "FaultInjector | None" = None,
        max_retries: int = 3,
        backoff_base: int = 32,
        timeout_factor: int = 8,
    ) -> None:
        self.name = name
        self.sim = sim
        self.interrupts = interrupts
        self.line = line
        self.latency = latency
        self.injector = injector
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.timeout_factor = timeout_factor
        self.attached_by: int | None = None  # pid
        self.operations = 0
        #: Permanently failed; attach refuses, completions stop.
        self.out_of_service = False
        self.failures = 0
        self.recoveries = 0
        self.cancelled_completions = 0
        #: Undelivered completion tokens (see _complete).
        self._pending: list[dict] = []

    @property
    def site(self) -> str:
        return f"device.{self.name}"

    def attach(self, pid: int) -> None:
        if self.out_of_service:
            raise DeviceError(f"{self.name} is out of service")
        if self.attached_by is not None and self.attached_by != pid:
            raise InvalidArgument(
                f"{self.name} is attached by process {self.attached_by}"
            )
        self.attached_by = pid

    def detach(self, pid: int) -> None:
        if self.attached_by != pid:
            raise InvalidArgument(f"{self.name} is not attached by {pid}")
        self.attached_by = None
        # Completions the detaching process was waiting for must not
        # fire later into whatever process attaches next.
        for token in self._pending:
            if token["pid"] == pid:
                token["cancelled"] = True

    def _require_attached(self, pid: int) -> None:
        if self.attached_by != pid:
            raise InvalidArgument(
                f"{self.name}: process {pid} has not attached the device"
            )

    # -- the completion machine ------------------------------------------

    def _complete(self, payload: object = None) -> None:
        """Start one completion: an interrupt after ``latency`` cycles,
        unless the fault plan says otherwise."""
        self.operations += 1
        token = {
            "payload": payload,
            "pid": self.attached_by,
            "delivered": False,
            "cancelled": False,
            "attempt": 0,
        }
        self._pending.append(token)
        self._start_completion(token)

    def _start_completion(self, token: dict) -> None:
        if token["cancelled"]:
            self._finish(token, cancelled=True)
            return
        if self.out_of_service:
            # Waiters on a dead device get a denial, not silence.
            token["payload"] = ("device_error", self.name)
            self.sim.schedule(self.latency, lambda: self._deliver(token))
            return
        kind = (
            self.injector.check(self.site, detail=str(token["payload"]))
            if self.injector is not None
            else None
        )
        if kind is None:
            self.sim.schedule(self.latency, lambda: self._deliver(token))
        elif kind == "transfer_error":
            self._retry_or_degrade(token)
        elif kind in ("hang", "lost_interrupt"):
            # The transfer stalls (hang) or finishes silently (lost
            # completion interrupt); only the watchdog saves the waiter.
            self.failures += 1
            timeout = self.latency * self.timeout_factor
            self.sim.schedule(timeout, lambda: self._watchdog(token, kind))
        else:  # an unknown kind is a plan bug; fail loudly
            raise DeviceError(f"{self.name}: unknown fault kind {kind!r}")

    def _retry_or_degrade(self, token: dict) -> None:
        self.failures += 1
        token["attempt"] += 1
        attempt = token["attempt"]
        if attempt > self.max_retries:
            if self.injector is not None:
                self.injector.note_fatal(
                    self.site, f"{self.max_retries} retries exhausted"
                )
                self.injector.note_degraded(
                    self.site, "device taken out of service"
                )
            self.out_of_service = True
            # Wake the waiter with a denial of use, not a hang.
            token["payload"] = ("device_error", self.name)
            self.sim.schedule(self.latency, lambda: self._deliver(token))
            return
        backoff = self.backoff_base << (attempt - 1)
        if self.injector is not None:
            self.injector.note_recovered(
                self.site, f"retry {attempt}", ticks=backoff
            )
        self.sim.schedule(
            self.latency + backoff, lambda: self._start_completion(token)
        )

    def _watchdog(self, token: dict, kind: str) -> None:
        if token["delivered"] or token["cancelled"]:
            return
        if self.injector is not None:
            self.injector.note_recovered(
                self.site,
                f"watchdog_redeliver:{kind}",
                ticks=self.latency * (self.timeout_factor - 1),
            )
        self.recoveries += 1
        self._deliver(token)

    def _deliver(self, token: dict) -> None:
        if token["cancelled"]:
            self._finish(token, cancelled=True)
            return
        if token["delivered"]:
            return
        token["delivered"] = True
        self._finish(token)
        self.interrupts.raise_line(self.line, token["payload"])

    def _finish(self, token: dict, cancelled: bool = False) -> None:
        if cancelled:
            self.cancelled_completions += 1
        try:
            self._pending.remove(token)
        except ValueError:
            pass

    def power_fail(self) -> None:
        """Crash semantics: the attachment and every in-flight
        completion vanish (their simulator events are dropped by the
        crash itself)."""
        self.attached_by = None
        for token in self._pending:
            token["cancelled"] = True
        self._pending.clear()


class Terminal(Device):
    """A remote-access terminal: typed input queue, printed output."""

    device_class = "terminal"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._input: deque[str] = deque()
        self.output: list[str] = []

    def type_line(self, line: str) -> None:
        """The (simulated) human types a line."""
        self._input.append(line)
        self._complete(("input_ready", self.name))

    def read_line(self, pid: int) -> str | None:
        self._require_attached(pid)
        self.operations += 1
        return self._input.popleft() if self._input else None

    def write_line(self, pid: int, line: str) -> None:
        self._require_attached(pid)
        self.output.append(line)
        self._complete(("write_done", self.name))


class TapeDrive(Device):
    """Sequential-access tape: records, positioned by a head."""

    device_class = "tape"

    def __init__(self, *args, latency: int = 200, **kwargs) -> None:
        super().__init__(*args, latency=latency, **kwargs)
        self.records: list[list[int]] = []
        self.position = 0

    def mount(self, records: list[list[int]]) -> None:
        self.records = [list(r) for r in records]
        self.position = 0

    def rewind(self, pid: int) -> None:
        self._require_attached(pid)
        self.position = 0
        self._complete(("rewound", self.name))

    def read_record(self, pid: int) -> list[int] | None:
        self._require_attached(pid)
        if self.position >= len(self.records):
            return None
        record = self.records[self.position]
        self.position += 1
        self._complete(("read_done", self.name))
        return list(record)

    def write_record(self, pid: int, record: list[int]) -> None:
        self._require_attached(pid)
        del self.records[self.position:]
        self.records.append(list(record))
        self.position = len(self.records)
        self._complete(("write_done", self.name))


class CardReader(Device):
    """Reads a deck, one 80-column card at a time."""

    device_class = "card_reader"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._deck: deque[str] = deque()

    def load_deck(self, cards: list[str]) -> None:
        for card in cards:
            if len(card) > 80:
                raise InvalidArgument("a card holds at most 80 columns")
        self._deck.extend(cards)

    def read_card(self, pid: int) -> str | None:
        self._require_attached(pid)
        self._complete(("card_read", self.name))
        return self._deck.popleft() if self._deck else None


class CardPunch(Device):
    """Punches cards into an output stacker."""

    device_class = "card_punch"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stacker: list[str] = []

    def punch_card(self, pid: int, card: str) -> None:
        self._require_attached(pid)
        if len(card) > 80:
            raise InvalidArgument("a card holds at most 80 columns")
        self.stacker.append(card)
        self._complete(("card_punched", self.name))


class LinePrinter(Device):
    """Prints lines onto paper (a list of pages of lines)."""

    device_class = "printer"

    LINES_PER_PAGE = 60

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.pages: list[list[str]] = [[]]

    def print_line(self, pid: int, line: str) -> None:
        self._require_attached(pid)
        if len(self.pages[-1]) >= self.LINES_PER_PAGE:
            self.pages.append([])
        self.pages[-1].append(line)
        self._complete(("printed", self.name))

    @property
    def lines_printed(self) -> int:
        return sum(len(page) for page in self.pages)
