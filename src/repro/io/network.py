"""The ARPA network attachment — the single external I/O path.

In the minimized kernel, "network technology ... provide[s] the only
path for external I/O to Multics": terminals, card decks, and print
streams all arrive and depart as network messages, and the kernel
keeps exactly one device mechanism instead of five.

The attachment feeds an input buffer (circular or infinite, per
configuration — experiment E6) and raises one interrupt line for
arrivals.  :class:`TrafficPattern` generates the bursty workloads the
buffer experiment sweeps over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.hw.clock import Simulator
from repro.hw.interrupts import InterruptController
from repro.io.buffers import CircularBuffer, InfiniteVMBuffer

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector


@dataclass(frozen=True)
class Message:
    """One network message."""

    seq: int
    host: str
    body: str


class NetworkAttachment:
    """The kernel's one external-I/O mechanism."""

    device_class = "network"

    def __init__(
        self,
        sim: Simulator,
        interrupts: InterruptController,
        line: int,
        buffer: CircularBuffer | InfiniteVMBuffer,
        latency: int = 20,
        injector: "FaultInjector | None" = None,
        metrics=None,
    ) -> None:
        self.sim = sim
        self.interrupts = interrupts
        self.line = line
        self.buffer = buffer
        self.latency = latency
        self.injector = injector
        self._seq = 0
        self.sent: list[Message] = []
        self.received_count = 0
        #: Fault-plane counters.
        self.dropped = 0
        self.duplicated = 0
        self.duplicates_suppressed = 0
        self._seen_seqs: set[int] = set()
        if metrics is not None:
            metrics.counter("net.received", "messages accepted into the buffer",
                            source=lambda: self.received_count)
            metrics.counter("net.dropped", "messages lost on the wire",
                            source=lambda: self.dropped)
            metrics.counter("net.duplicated", "messages duplicated in flight",
                            source=lambda: self.duplicated)
            metrics.counter("net.duplicates_suppressed",
                            "duplicate deliveries the kernel discarded",
                            source=lambda: self.duplicates_suppressed)
            # The input buffer's own book, whatever its kind.
            stats = self.buffer.stats
            metrics.counter("io.buffer.puts", "messages written to the buffer",
                            source=lambda: stats.puts)
            metrics.counter("io.buffer.gets", "messages read from the buffer",
                            source=lambda: stats.gets)
            metrics.counter("io.buffer.overwrites",
                            "messages destroyed by writer lapping reader",
                            source=lambda: stats.overwrites)
            metrics.counter("io.buffer.underruns", "reads that found nothing",
                            source=lambda: stats.underruns)
            metrics.counter("io.buffer.lost", "messages lost to the consumer",
                            source=lambda: self.buffer.lost)
            metrics.gauge("io.buffer.queued", "unconsumed messages now",
                          source=lambda: len(self.buffer))
            metrics.gauge("io.buffer.peak_queue", "queue high-water mark",
                          source=lambda: stats.peak_queue)
            metrics.gauge("io.buffer.pages_allocated",
                          "VM pages backing the infinite buffer",
                          source=lambda: getattr(
                              self.buffer, "pages_allocated", 0))

    # -- inbound ------------------------------------------------------------

    def deliver(self, host: str, body: str) -> Message:
        """A message arrives from the network (device side)."""
        self._seq += 1
        message = Message(self._seq, host, body)
        kind = (
            self.injector.check("net.deliver", detail=f"seq {message.seq}")
            if self.injector is not None
            else None
        )
        if kind == "drop":
            # Lost on the wire: never buffered, no interrupt.  Pure
            # denial of use; the sender's retransmission (outside this
            # model) is the recovery.
            self.dropped += 1
            return message
        copies = 2 if kind == "duplicate" else 1
        if kind == "duplicate":
            self.duplicated += 1
        for _ in range(copies):
            self.buffer.put(message)
            self.received_count += 1
            self.sim.schedule(
                self.latency,
                lambda: self.interrupts.raise_line(
                    self.line, ("net_input", None)
                ),
            )
        return message

    def receive(self) -> Message | None:
        """The kernel reads the next buffered message, suppressing
        duplicate sequence numbers (the recovery for ``duplicate``
        injection)."""
        while True:
            message = self.buffer.get()
            if message is None:
                return None
            if message.seq in self._seen_seqs:
                self.duplicates_suppressed += 1
                if self.injector is not None:
                    self.injector.note_recovered(
                        "net.deliver",
                        "duplicate_suppressed",
                        detail=f"seq {message.seq}",
                    )
                continue
            self._seen_seqs.add(message.seq)
            return message  # type: ignore[return-value]

    # -- outbound -----------------------------------------------------------

    def send(self, host: str, body: str) -> Message:
        self._seq += 1
        message = Message(self._seq, host, body)
        self.sent.append(message)
        return message

    # -- health ----------------------------------------------------------------

    @property
    def messages_lost(self) -> int:
        return self.buffer.lost

    @property
    def backlog(self) -> int:
        return len(self.buffer)


class TrafficPattern:
    """Deterministic bursty traffic for the buffer experiment.

    ``burst_size`` messages arrive back-to-back every ``burst_gap``
    cycles; the consumer drains at its own pace.  A linear-congruential
    generator varies message bodies so content checks are meaningful
    without nondeterminism.
    """

    def __init__(self, burst_size: int, burst_gap: int, n_bursts: int, seed: int = 1) -> None:
        if burst_size <= 0 or n_bursts <= 0 or burst_gap < 0:
            raise ValueError("bad traffic pattern parameters")
        self.burst_size = burst_size
        self.burst_gap = burst_gap
        self.n_bursts = n_bursts
        self._state = seed or 1

    def _next(self) -> int:
        self._state = (self._state * 1103515245 + 12345) % (2**31)
        return self._state

    def total_messages(self) -> int:
        return self.burst_size * self.n_bursts

    def schedule_into(self, net: NetworkAttachment) -> None:
        """Schedule every arrival into the simulator."""
        for burst in range(self.n_bursts):
            base = burst * self.burst_gap
            for k in range(self.burst_size):
                body = f"b{burst}m{k}x{self._next() % 9973}"
                net.sim.schedule_at(
                    net.sim.clock.now + base,
                    lambda b=body: net.deliver("remote-host", b),
                )

    @staticmethod
    def drain_rate_for_loss_free(burst_size: int, capacity: int) -> bool:
        """Whether a circular buffer of ``capacity`` can absorb a burst
        of ``burst_size`` with no consumption in between."""
        return burst_size <= capacity
