"""Bounded retry with backoff in simulated time.

One policy object shared by every recovery site (kernel word reads,
page transfers, device completions).  Backoff is measured in cycles of
the simulated clock: synchronous paths *charge* the cycles, DES paths
*wait* them out via the simulator — there is no wall-clock sleeping
anywhere in the fault plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar

from repro.errors import DeviceError, TransientFault

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import SystemConfig
    from repro.faults.injector import FaultInjector

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the kernel tries before giving up on an I/O path."""

    max_retries: int = 3
    backoff_base: int = 32

    @classmethod
    def from_config(cls, config: "SystemConfig") -> "RetryPolicy":
        return cls(
            max_retries=config.max_io_retries,
            backoff_base=config.retry_backoff_base,
        )

    def backoff(self, attempt: int) -> int:
        """Cycles to back off before retry number ``attempt`` (1-based)."""
        if attempt <= 0:
            raise ValueError("attempts are 1-based")
        return self.backoff_base << (attempt - 1)


def retry_call(
    thunk: Callable[[], T],
    policy: RetryPolicy,
    injector: "FaultInjector | None",
    site: str,
    tracer=None,
) -> tuple[T, int]:
    """Run ``thunk``, retrying transient faults up to the policy budget.

    Returns ``(result, backoff_cycles_spent)`` so the caller can charge
    the waiting to simulated time.  Exhausting the budget promotes the
    transient fault to :class:`DeviceError` (denial of use) after a
    ``fatal`` audit record.  A first failure opens a ``retry`` span on
    ``tracer`` (when given and enabled) covering the whole retry loop.
    """
    attempt = 0
    spent = 0
    sid = -1
    while True:
        try:
            result = thunk()
            if tracer is not None and sid >= 0:
                tracer.end(sid, attempts=attempt, spent=spent, outcome="ok")
            return result, spent
        except TransientFault as fault:
            attempt += 1
            if tracer is not None and sid < 0 and tracer.enabled:
                sid = tracer.begin("retry", site=site)
            if attempt > policy.max_retries:
                if injector is not None:
                    injector.note_fatal(site, str(fault))
                if tracer is not None and sid >= 0:
                    tracer.end(sid, attempts=attempt, spent=spent,
                               outcome="fatal")
                raise DeviceError(
                    f"{site}: failed after {policy.max_retries} retries: {fault}"
                ) from fault
            backoff = policy.backoff(attempt)
            spent += backoff
            if injector is not None:
                injector.note_recovered(
                    site, f"retry {attempt}", ticks=backoff, detail=str(fault)
                )
