"""Scenario-driven chaos: declarative storms over the fault plane.

A :class:`FaultPlan` answers *"does this operation fail?"* — it is
consulted per operation and cannot express "partition the east link at
t=2000, then take CPU 1 offline mid-burst".  A :class:`ChaosScenario`
expresses exactly that: a declarative description (dict or JSON — the
Faultynet pattern) of *controllers* that decide, on the simulated
clock, when and where to command faults:

* :class:`TimedController`    — a fixed schedule of events at offsets
  from the engine's start (the deterministic storyboard);
* :class:`RandomController`   — every ``every`` cycles, a seeded RNG
  picks one site and kind from configured pools;
* :class:`TargetedController` — every ``every`` cycles, hits the
  *busiest* link by live transit counts (the adversary that reads the
  dashboards).

All three are layered on the existing :class:`FaultInjector`: every
commanded fault goes through :meth:`FaultInjector.force`, so it lands
in the same audit trail and ``faults.*`` books as plan-driven
injections, and the whole storm is a pure function of (scenario, seed,
workload) — two same-seed runs inject identical faults at identical
simulated times, which the determinism suite asserts byte-for-byte.

Sites a scenario can command:

* ``link.<name>`` with kinds ``drop`` / ``latency_spike`` /
  ``partition`` / ``flap`` — applied to the named topology link;
* ``cpu.loss`` with kind ``offline`` — removes a CPU from the SMP
  complex mid-run; the interrupted job is requeued from its entry
  point (lost time, never lost or corrupted data) and the removal is
  booked as equipment degradation;
* ``cpu.restore`` with kind ``online`` — returns an offline CPU to
  service (cold AM), closing the degradation window a prior
  ``cpu.loss`` opened.  Restoring is recovery, not a fault: it is
  booked through :meth:`FaultInjector.note_recovered`, never
  :meth:`FaultInjector.force`, so injected-fault counts stay equal to
  commanded faults (the R2 audit-completeness invariant).

The engine is *polled*: call :meth:`ChaosEngine.step` between lockstep
rounds (``SmpComplex.run(on_round=...)`` does this) or workload
phases.  Controllers fire every event whose time has come, in
controller order — no background threads, no wall clock.
"""

from __future__ import annotations

import json
import random
from typing import TYPE_CHECKING

from repro.io.topology import LINK_FAULT_KINDS

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.hw.smp import SmpComplex
    from repro.io.topology import NetworkTopology

#: The site naming a CPU removal from the SMP complex.
CPU_LOSS_SITE = "cpu.loss"
#: The only kind ``cpu.loss`` understands.
CPU_LOSS_KIND = "offline"
#: The site returning an offline CPU to service.
CPU_RESTORE_SITE = "cpu.restore"
#: The only kind ``cpu.restore`` understands.
CPU_RESTORE_KIND = "online"

_CONTROLLER_TYPES = ("timed", "random", "targeted")


def _check_site_kind(site: object, kind: object, where: str) -> None:
    if not isinstance(site, str) or not site:
        raise ValueError(f"{where}: needs a site string")
    if not isinstance(kind, str) or not kind:
        raise ValueError(f"{where}: needs a kind string")
    if site.startswith("link."):
        if kind not in LINK_FAULT_KINDS:
            raise ValueError(
                f"{where}: link kind {kind!r} not in {LINK_FAULT_KINDS}"
            )
    elif site == CPU_LOSS_SITE:
        if kind != CPU_LOSS_KIND:
            raise ValueError(
                f"{where}: {CPU_LOSS_SITE} only understands "
                f"{CPU_LOSS_KIND!r}, got {kind!r}"
            )
    elif site == CPU_RESTORE_SITE:
        if kind != CPU_RESTORE_KIND:
            raise ValueError(
                f"{where}: {CPU_RESTORE_SITE} only understands "
                f"{CPU_RESTORE_KIND!r}, got {kind!r}"
            )
    else:
        raise ValueError(
            f"{where}: unknown chaos site {site!r} "
            "(want link.<name>, cpu.loss, or cpu.restore)"
        )


class ChaosScenario:
    """A validated, declarative chaos storm description."""

    def __init__(self, name: str, controllers: list[dict],
                 seed: int = 0) -> None:
        if not name:
            raise ValueError("a scenario needs a name")
        if not controllers:
            raise ValueError(f"scenario {name!r}: needs controllers")
        self.name = name
        self.seed = seed
        self.controllers = [dict(spec) for spec in controllers]
        for index, spec in enumerate(self.controllers):
            self._validate_controller(index, spec)

    def _validate_controller(self, index: int, spec: dict) -> None:
        where = f"scenario {self.name!r} controller #{index}"
        kind = spec.get("type")
        if kind not in _CONTROLLER_TYPES:
            raise ValueError(
                f"{where}: type must be one of {_CONTROLLER_TYPES}, "
                f"got {kind!r}"
            )
        if kind == "timed":
            events = spec.get("events")
            if not isinstance(events, list) or not events:
                raise ValueError(f"{where}: timed needs an events list")
            for event in events:
                if not isinstance(event, dict):
                    raise ValueError(f"{where}: each event must be a dict")
                at = event.get("at")
                if not isinstance(at, int) or at < 0:
                    raise ValueError(
                        f"{where}: event 'at' must be a non-negative "
                        "cycle offset"
                    )
                _check_site_kind(event.get("site"), event.get("kind"), where)
        else:
            every = spec.get("every")
            if not isinstance(every, int) or every <= 0:
                raise ValueError(f"{where}: needs a positive 'every'")
            if kind == "random":
                sites = spec.get("sites")
                kinds = spec.get("kinds")
                if not isinstance(sites, list) or not sites:
                    raise ValueError(f"{where}: random needs a sites list")
                if not isinstance(kinds, list) or not kinds:
                    raise ValueError(f"{where}: random needs a kinds list")
                for site in sites:
                    for k in kinds:
                        _check_site_kind(site, k, where)
            else:  # targeted
                k = spec.get("kind")
                if k not in LINK_FAULT_KINDS:
                    raise ValueError(
                        f"{where}: targeted kind {k!r} not in "
                        f"{LINK_FAULT_KINDS}"
                    )

    @classmethod
    def from_dict(cls, spec: dict) -> "ChaosScenario":
        if not isinstance(spec, dict):
            raise ValueError("scenario spec must be a dict")
        unknown = set(spec) - {"name", "seed", "controllers"}
        if unknown:
            raise ValueError(f"scenario spec: unknown keys {sorted(unknown)}")
        return cls(
            name=spec.get("name", ""),
            controllers=spec.get("controllers", []),
            seed=spec.get("seed", 0),
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosScenario":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# controllers
# ---------------------------------------------------------------------------

class TimedController:
    """Fires a fixed storyboard of events at offsets from t0."""

    def __init__(self, spec: dict) -> None:
        self._events = sorted(spec["events"], key=lambda e: e["at"])
        self._next = 0

    def due(self, offset: int, engine: "ChaosEngine"):
        while self._next < len(self._events):
            event = self._events[self._next]
            if event["at"] > offset:
                return
            self._next += 1
            yield event["site"], event["kind"], event.get("cpu")


class RandomController:
    """Every ``every`` cycles, a seeded pick from site and kind pools."""

    def __init__(self, spec: dict, seed: int, index: int) -> None:
        self.every = spec["every"]
        self.sites = list(spec["sites"])
        self.kinds = list(spec["kinds"])
        self.stop = spec.get("stop")
        self._rng = random.Random(f"chaos|{seed}|random|{index}")
        self._next_at = spec.get("start", self.every)

    def due(self, offset: int, engine: "ChaosEngine"):
        while self._next_at <= offset:
            if self.stop is not None and self._next_at > self.stop:
                return
            site = self._rng.choice(self.sites)
            kind = self._rng.choice(self.kinds)
            self._next_at += self.every
            yield site, kind, None


class TargetedController:
    """Every ``every`` cycles, hits the busiest link by live metrics."""

    def __init__(self, spec: dict) -> None:
        self.every = spec["every"]
        self.kind = spec["kind"]
        self.stop = spec.get("stop")
        self._next_at = spec.get("start", self.every)

    def due(self, offset: int, engine: "ChaosEngine"):
        while self._next_at <= offset:
            if self.stop is not None and self._next_at > self.stop:
                return
            self._next_at += self.every
            link = engine.topology.busiest_link()
            yield f"link.{link.name}", self.kind, None


def _build_controller(spec: dict, seed: int, index: int):
    kind = spec["type"]
    if kind == "timed":
        return TimedController(spec)
    if kind == "random":
        return RandomController(spec, seed, index)
    return TargetedController(spec)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

class ChaosEngine:
    """Executes a scenario against a live system, deterministically.

    Event times are *offsets from the engine's construction time*, so
    a scenario is portable across configurations whose boot sequences
    leave the clock at different values.
    """

    def __init__(
        self,
        scenario: ChaosScenario,
        topology: "NetworkTopology",
        injector: "FaultInjector",
        complex_: "SmpComplex | None" = None,
        metrics=None,
        tracer=None,
    ) -> None:
        self.scenario = scenario
        self.topology = topology
        self.injector = injector
        self.complex_ = complex_
        self.tracer = tracer
        self.t0 = topology.sim.clock.now
        self.controllers = [
            _build_controller(spec, scenario.seed, index)
            for index, spec in enumerate(scenario.controllers)
        ]
        #: (time, site, kind) of every commanded event, in order.
        self.applied: list[tuple[int, str, str]] = []
        self.steps = 0
        #: Events that could not be applied (e.g. cpu.loss with one CPU
        #: left) — skipped loudly, never silently.
        self.skipped: list[tuple[int, str, str, str]] = []
        if metrics is not None:
            metrics.counter("chaos.events", "chaos events commanded",
                            source=lambda: len(self.applied))
            metrics.counter("chaos.skipped",
                            "chaos events that could not be applied",
                            source=lambda: len(self.skipped))
            metrics.counter("chaos.steps", "engine polls executed",
                            source=lambda: self.steps)
            metrics.gauge("chaos.controllers", "controllers in the scenario",
                          source=lambda: len(self.controllers))

    # -- polling ---------------------------------------------------------

    def step(self, complex_=None) -> int:
        """Fire every event whose time has come; returns how many.

        ``complex_`` makes the engine usable as an ``on_round`` hook of
        :meth:`repro.hw.smp.SmpComplex.run` directly.
        """
        now = self.topology.sim.clock.now
        self.steps += 1
        fired = 0
        for controller in self.controllers:
            for site, kind, cpu in controller.due(now - self.t0, self):
                self._apply(now, site, kind, cpu)
                fired += 1
        return fired

    # -- application -----------------------------------------------------

    def _apply(self, now: int, site: str, kind: str,
               cpu: int | None) -> None:
        if site == CPU_LOSS_SITE:
            self._lose_cpu(now, cpu)
            return
        if site == CPU_RESTORE_SITE:
            self._restore_cpu(now, cpu)
            return
        link = self.topology.links.get(site[len("link."):])
        if link is None:
            raise ValueError(f"scenario names unknown link site {site!r}")
        self.injector.force(site, kind,
                            detail=f"scenario {self.scenario.name}")
        if kind == "partition":
            link.partition(now)
        elif kind == "flap":
            link.flap(now)
        elif kind == "latency_spike":
            link.spike(now)
        else:  # drop
            link.force_drop()
        self._book(now, site, kind)

    def _lose_cpu(self, now: int, cpu: int | None) -> None:
        cx = self.complex_
        if cx is None:
            raise ValueError(
                "scenario commands cpu.loss but no SMP complex is wired"
            )
        index = cpu if cpu is not None else cx.last_online()
        if cx.online_count() <= 1 or not cx.online(index):
            # Never take the last CPU (that is system loss, not
            # degradation) and never re-lose a lost one.
            self.skipped.append((now, CPU_LOSS_SITE, CPU_LOSS_KIND,
                                 f"cpu {index} not removable"))
            return
        self.injector.force(CPU_LOSS_SITE, CPU_LOSS_KIND,
                            detail=f"cpu {index}")
        requeued = cx.lose_cpu(index)
        # Equipment out of service: the complex runs on, degraded.
        self.injector.note_degraded(CPU_LOSS_SITE, detail=f"cpu {index}")
        if requeued is not None:
            self.injector.note_recovered(
                CPU_LOSS_SITE, "job_requeued",
                detail=f"cpu {index}: {requeued.label or requeued.segno}",
            )
        self._book(now, CPU_LOSS_SITE, CPU_LOSS_KIND)

    def _restore_cpu(self, now: int, cpu: int | None) -> None:
        cx = self.complex_
        if cx is None:
            raise ValueError(
                "scenario commands cpu.restore but no SMP complex is wired"
            )
        if cpu is not None:
            index = cpu
        else:
            index = next(
                (i for i in range(cx.n_cpus) if not cx.online(i)), -1
            )
        if index < 0 or cx.online(index):
            self.skipped.append((now, CPU_RESTORE_SITE, CPU_RESTORE_KIND,
                                 f"cpu {index} not restorable"))
            return
        cx.restore_cpu(index)
        # Recovery, not a fault: booked as such so injected == commanded
        # faults stays true for the audit-completeness invariant.
        self.injector.note_recovered(CPU_RESTORE_SITE, "cpu_online",
                                     detail=f"cpu {index}")
        self._book(now, CPU_RESTORE_SITE, CPU_RESTORE_KIND)

    def _book(self, now: int, site: str, kind: str) -> None:
        self.applied.append((now, site, kind))
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.point("chaos_event", origin="chaos",
                              site=site, kind=kind,
                              scenario=self.scenario.name)
