"""The crash-recovery and containment harness.

This module drives the fault plane end to end: run a deterministic
workload under a fault plan, kill the system mid-flight, vandalize the
hierarchy the way a crash-torn store would, reboot *the same kernel
services* (same backing storage, same audit log), let the salvager
repair the tree, and then check the paper's containment claim —
injected failures may change *performance* and may deny use, but no
ACL or MAC decision ever flips from denied to granted.

Everything here is deterministic given the fault-plan seed: the
workload issues gate calls synchronously, damage selection uses its own
seeded RNG, and injection decisions are pure functions of per-site
operation counts.  Two runs with the same seed produce identical audit
logs — which is itself one of the assertions the tests make.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.config import InitKind, InterruptKind, SystemConfig
from repro.errors import (
    AccessDenied,
    DeviceError,
    KernelDenial,
    ReproError,
)
from repro.faults.salvager import MAGIC_CLEAN, SalvageReport, read_marker
from repro.security.audit import AuditLog
from repro.system import MulticsSystem

#: Audit outcomes that are *security decisions* (the containment
#: comparison); fault-plane outcomes (injected/recovered/degraded/
#: fatal/salvaged) are deliberately excluded.
DECISION_OUTCOMES = ("granted", "denied")


def harness_config(**overrides) -> SystemConfig:
    """A small configuration suited to crash-recovery runs.

    Bootstrap initialization (the image builder would inject faults
    into its scratch system too) and in-process interrupts (dedicated
    handler processes would be duplicated by a reboot's re-register).
    """
    defaults = dict(
        page_size=16,
        core_frames=8,
        bulk_frames=32,
        disk_frames=256,
        n_processors=1,
        n_virtual_processors=4,
        quantum=500,
        init=InitKind.BOOTSTRAP,
        interrupts=InterruptKind.IN_PROCESS,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def security_decisions(audit: AuditLog) -> list[tuple[str, str, str, str]]:
    """The (subject, object, action, outcome) of every access decision.

    Times are excluded on purpose: recovery backoff legitimately shifts
    the clock, and the containment claim is about *decisions*, not
    timing.
    """
    return [
        (r.subject, r.object, r.action, r.outcome)
        for r in audit.records
        if r.outcome in DECISION_OUTCOMES
    ]


def hierarchy_violations(services) -> list[str]:
    """Consistency check over the naming hierarchy and kernel tables.

    Returns human-readable violations; the list must be empty after a
    salvage (that is the salvager's postcondition).
    """
    violations: list[str] = []
    seen: set[int] = {services.tree.root.uid}
    stack = [services.tree.root]
    while stack:
        directory = stack.pop()
        for branch in directory.list_branches():
            if not services.ufs.exists(branch.uid):
                violations.append(
                    f"branch {branch.name!r} in dir {directory.uid} "
                    f"dangles (uid {branch.uid})"
                )
                continue
            if not branch.label.dominates(directory.label):
                violations.append(
                    f"branch {branch.name!r} violates MAC non-decrease "
                    f"in dir {directory.uid}"
                )
            if branch.is_directory:
                if not services.tree.is_directory_uid(branch.uid):
                    violations.append(
                        f"directory branch {branch.name!r} has no "
                        f"directory object (uid {branch.uid})"
                    )
                    continue
                child = services.tree.directory(branch.uid)
                if child.label != branch.label:
                    violations.append(
                        f"directory {branch.uid} label {child.label} "
                        f"disagrees with branch {branch.name!r} label "
                        f"{branch.label}"
                    )
                if branch.uid not in seen:
                    seen.add(branch.uid)
                    stack.append(child)
    for aseg in services.ast.segments():
        if not services.ufs.exists(aseg.uid):
            violations.append(f"active segment {aseg.uid} has no layer-1 record")
    for pid, state in services._pstate.items():
        for entry in state.kst.entries():
            if not services.ufs.exists(entry.uid):
                violations.append(
                    f"kst of pid {pid} maps segno {entry.segno} to "
                    f"dead uid {entry.uid}"
                )
    return violations


# ---------------------------------------------------------------------------
# the deterministic workload
# ---------------------------------------------------------------------------

@dataclass
class WorkloadResult:
    """What one workload pass observed."""

    operations: int = 0
    #: Operations that ended in denial of use (retries exhausted etc.).
    denied_use: int = 0
    #: Security denials the probes *expect* (Eve poking Alice's data).
    expected_denials: int = 0
    notes: list[str] = field(default_factory=list)


def standard_workload(system: MulticsSystem, tag: str = "w") -> WorkloadResult:
    """A fixed sequence of gate calls with built-in denial probes.

    ``tag`` uniquifies entry names so the workload can run again after
    a reboot against the same surviving hierarchy.  Injected faults may
    turn any operation into denial of use (:class:`DeviceError`); the
    workload absorbs that and keeps going — the system must degrade,
    not die.
    """
    result = WorkloadResult()

    def op(thunk, note: str):
        result.operations += 1
        try:
            return thunk()
        except DeviceError as exc:
            result.denied_use += 1
            result.notes.append(f"{note}: denial of use ({exc})")
            return None

    alice = op(lambda: system.login("Alice", "Crypto", "alice-pw"), "login")
    if alice is None:
        return result
    op(lambda: alice.create_dir(f"proj_{tag}"), "mkdir")
    segno = op(
        lambda: alice.create_segment(f"proj_{tag}>data", n_pages=2), "create"
    )
    if segno is not None:
        op(lambda: alice.write_words(segno, [3, 1, 4, 1, 5, 9, 2, 6]), "write")
        op(lambda: alice.read_words(segno, 8), "read")
    op(lambda: alice.create_segment(f"private_{tag}"), "create-private")

    # Paging pressure: a segment bigger than core forces evictions, so
    # page transfers (and their injection sites) see real traffic.
    big = op(
        lambda: alice.create_segment(f"big_{tag}", n_pages=6), "create-big"
    )
    if big is not None:
        page = system.config.page_size
        for pageno in range(6):
            op(
                lambda p=pageno: alice.write_words(
                    big, [p * 11 + 1], offset=p * page
                ),
                f"write-big-p{pageno}",
            )
        for pageno in range(6):
            op(
                lambda p=pageno: alice.read_words(big, 1, offset=p * page),
                f"read-big-p{pageno}",
            )

    # Device traffic: the terminal's completion interrupts cross the
    # recovery machine (retries, watchdogs, degradation).
    tty = system.services.devices["tty1"]
    pid = alice.process.pid

    def tty_io():
        tty.attach(pid)
        for k in range(3):
            tty.write_line(pid, f"line {tag} {k}")
        tty.detach(pid)

    op(tty_io, "tty")

    # Network traffic: the single external-I/O path, with drop and
    # duplicate injection sites.
    net = system.services.network
    for k in range(3):
        op(lambda k=k: net.deliver("remote", f"msg {tag} {k}"), "net-deliver")
    system.run()  # quiesce: completions, watchdogs, retries all land
    while True:
        message = net.receive()
        if message is None:
            break
        result.notes.append(f"net:{message.body}")
        result.operations += 1

    # The probes: Eve holds no ACL entry on Alice's data.  Every one of
    # these must produce a *denied* decision, faults or no faults.
    eve = op(lambda: system.login("Eve", "Spies", "eve-pw"), "login-eve")
    if eve is not None:
        for path in (
            f">udd>Crypto>Alice>proj_{tag}>data",
            f">udd>Crypto>Alice>private_{tag}",
        ):
            result.operations += 1
            try:
                eve.initiate(path)
                result.notes.append(f"probe {path}: UNEXPECTEDLY GRANTED")
            except (AccessDenied, KernelDenial):
                result.expected_denials += 1
            except DeviceError as exc:
                result.denied_use += 1
                result.notes.append(f"probe {path}: denial of use ({exc})")
            except ReproError as exc:
                # e.g. the entry never got created because its create
                # was denied use; still not a leak.
                result.notes.append(f"probe {path}: {type(exc).__name__}")
        op(lambda: eve.logout(), "logout-eve")
    return result


# ---------------------------------------------------------------------------
# crash, vandalism, recovery
# ---------------------------------------------------------------------------

def crash(system: MulticsSystem) -> int:
    """Kill the system where it stands; returns dropped event count.

    In-flight device completions and scheduled wakeups vanish with the
    event queue; device attachments are lost; per-process kernel state
    evaporates (those processes are gone).  The memory hierarchy, file
    system, directory tree, and audit log — the backing store — remain,
    exactly as a real crash leaves them.
    """
    services = system.services
    dropped = services.sim.clear_pending()
    for device in services.devices.values():
        device.power_fail()
    services._pstate.clear()
    services.created_processes.clear()
    services.process_creators.clear()
    system._booted = False
    return dropped


#: Damage kinds ``vandalize`` understands; ``orphan`` goes last so the
#: other kinds still find candidates before a subtree is stranded.
DAMAGE_KINDS = ("dangling", "label", "orphan")


def vandalize(services, seed: int = 0, kinds=DAMAGE_KINDS) -> list[str]:
    """Inflict deterministic crash-style damage on the hierarchy.

    * ``dangling`` — a branch's layer-1 record disappears (torn create);
    * ``orphan``   — a directory's parent branch is lost, stranding the
      subtree (torn rename/delete);
    * ``label``    — a directory's label is raised above a child's,
      breaking MAC non-decrease (torn metadata write).

    Damage bypasses the gates on purpose: it models storage corruption,
    not API misuse.  Selection is driven by ``seed`` alone.
    """
    rng = random.Random(f"vandal|{seed}")
    done: list[str] = []
    root = services.tree.root

    def all_branches():
        out = []
        stack = [root]
        visited = {root.uid}
        while stack:
            directory = stack.pop()
            for branch in directory.list_branches():
                out.append((directory, branch))
                if (
                    branch.is_directory
                    and services.tree.is_directory_uid(branch.uid)
                    and branch.uid not in visited
                ):
                    visited.add(branch.uid)
                    stack.append(services.tree.directory(branch.uid))
        return sorted(out, key=lambda pair: (pair[0].uid, pair[1].name))

    for kind in kinds:
        pairs = all_branches()
        if kind == "dangling":
            candidates = [
                (d, b) for d, b in pairs
                if not b.is_directory and b.name != "salvager_data"
            ]
            if not candidates:
                continue
            directory, branch = rng.choice(candidates)
            services.ufs._records.pop(branch.uid, None)
            done.append(f"dangling:{branch.name}")
        elif kind == "orphan":
            candidates = [
                (d, b) for d, b in pairs
                if b.is_directory and services.tree.is_directory_uid(b.uid)
                and len(services.tree.directory(b.uid))
            ]
            if not candidates:
                continue
            directory, branch = rng.choice(candidates)
            directory.remove(branch.name)
            done.append(f"orphan:{branch.name}")
        elif kind == "label":
            candidates = [
                (d, b) for d, b in pairs
                if not b.is_directory and b.name != "salvager_data"
            ]
            if not candidates:
                continue
            directory, branch = rng.choice(candidates)
            from repro.security.mac import SecurityLabel

            directory.label = SecurityLabel(
                level=branch.label.level + 1,
                categories=branch.label.categories,
            )
            done.append(f"label:{branch.name}")
        else:
            raise ValueError(f"unknown damage kind {kind!r}")
    return done


@dataclass
class CrashRecoveryResult:
    """Everything a crash-recovery run observed."""

    damage: list[str]
    dropped_events: int
    salvage_report: SalvageReport
    violations_after: list[str]
    pre_crash: WorkloadResult
    post_boot: WorkloadResult
    decisions: list[tuple[str, str, str, str]]
    clean_marker: bool

    @property
    def unauthorized(self) -> list[str]:
        """Probe notes that indicate a containment breach (must be [])."""
        return [
            note
            for wl in (self.pre_crash, self.post_boot)
            for note in wl.notes
            if "UNEXPECTEDLY GRANTED" in note
        ]


def run_crash_recovery(
    config: SystemConfig | None = None,
    seed: int = 0,
    kinds=DAMAGE_KINDS,
) -> CrashRecoveryResult:
    """The whole story: workload, crash, vandalism, reboot, salvage,
    workload again, clean shutdown."""
    cfg = config or harness_config()
    system = MulticsSystem(cfg).boot()
    system.register_user("Alice", "Crypto", "alice-pw")
    system.register_user("Eve", "Spies", "eve-pw")
    pre = standard_workload(system, tag="pre")

    dropped = crash(system)
    damage = vandalize(system.services, seed=seed, kinds=kinds)

    rebooted = MulticsSystem(services=system.services).boot()
    report = rebooted.salvage_report
    assert report is not None, "unclean marker must trigger the salvager"
    violations = hierarchy_violations(rebooted.services)

    post = standard_workload(rebooted, tag="post")
    rebooted.shutdown()
    return CrashRecoveryResult(
        damage=damage,
        dropped_events=dropped,
        salvage_report=report,
        violations_after=violations,
        pre_crash=pre,
        post_boot=post,
        decisions=security_decisions(rebooted.services.audit),
        clean_marker=read_marker(rebooted.services) == MAGIC_CLEAN,
    )
