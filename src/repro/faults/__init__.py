"""The fault plane: deterministic injection plus kernel recovery.

The paper's central robustness claim is containment-by-construction: a
failing or malicious un-certified component "can cause only denial of
use, never unauthorized release or modification".  This package turns
hardware failure into a first-class *simulated event* so that claim can
be asserted under fire, not just on the happy path:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a seedable,
  probability- or schedule-driven description of which injection sites
  fail and how; deterministic given its seed.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: the runtime
  object the hardware models consult; every injected fault and every
  recovery action lands in the security audit log.
* :mod:`repro.faults.recovery` — :class:`RetryPolicy` and the bounded
  retry helper the kernel layers share (backoff in simulated cycles,
  never wall-clock sleeps).
* :mod:`repro.faults.salvager` — the hierarchy salvager: runs at boot
  when the ``salvager_data`` marker shows an unclean shutdown, walks
  the directory tree, reconciles the AST/KST, and quarantines damaged
  entries instead of crashing.
* :mod:`repro.faults.harness` — the crash-recovery harness: kills a
  system mid-workload, reboots from the same backing store, salvages,
  and checks that no ACL/MAC decision changed under any injected fault.
* :mod:`repro.faults.chaos` — the scenario engine: declarative
  :class:`ChaosScenario` storms (timed / random / targeted
  controllers) commanding link faults and mid-run CPU loss through the
  same injector, deterministically.
"""

from repro.faults.chaos import (
    CPU_LOSS_KIND,
    CPU_LOSS_SITE,
    CPU_RESTORE_KIND,
    CPU_RESTORE_SITE,
    ChaosEngine,
    ChaosScenario,
    RandomController,
    TargetedController,
    TimedController,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.recovery import RetryPolicy, retry_call
from repro.faults.salvager import (
    MAGIC_CLEAN,
    MAGIC_RUNNING,
    HierarchySalvager,
    SalvageReport,
    mark_clean,
    mark_running,
    read_marker,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "RetryPolicy",
    "retry_call",
    "HierarchySalvager",
    "SalvageReport",
    "MAGIC_CLEAN",
    "MAGIC_RUNNING",
    "mark_clean",
    "mark_running",
    "read_marker",
    "ChaosScenario",
    "ChaosEngine",
    "TimedController",
    "RandomController",
    "TargetedController",
    "CPU_LOSS_SITE",
    "CPU_LOSS_KIND",
    "CPU_RESTORE_SITE",
    "CPU_RESTORE_KIND",
]
