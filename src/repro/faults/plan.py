"""Deterministic, seedable fault plans.

A :class:`FaultPlan` describes *which* injection sites fail and *how*.
Sites are dotted strings named by the hardware models that consult the
plan:

===========================  ==================================================
site                         failure kinds understood there
===========================  ==================================================
``memory.<level>.read``      ``parity`` — a parity hit on a frame read
``memory.transfer``          ``transfer_error`` — a page move fails mid-flight
``device.<name>``            ``transfer_error``, ``hang``, ``lost_interrupt``
``net.deliver``              ``drop``, ``duplicate``
``link.<name>``              ``drop``, ``latency_spike``, ``partition``,
                             ``flap`` — per-transit faults on one routed
                             link of the network topology
``cpu.loss``                 ``offline`` — a CPU leaves the SMP complex
                             (scenario-driven only; see repro.faults.chaos)
===========================  ==================================================

Each :class:`FaultSpec` is either *schedule-driven* (``at_ops``: inject
on exactly those 1-based operation indices of the site — the tool for
deterministic unit tests) or *probability-driven* (``rate``: each
operation fails with that probability, drawn from a private RNG stream
seeded by ``(seed, spec, site)``) — never both, because a spec with
both would fire on the scheduled ops *and* randomly, which reads as
one rule but behaves as two.  Two runs of the same workload under
the same plan therefore inject identical faults at identical
operations: the containment experiments compare audit logs across runs
and demand equality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class FaultSpec:
    """One rule of a fault plan."""

    #: Site the rule applies to: exact (``device.tty1``) or a prefix
    #: wildcard (``memory.*``).
    site: str
    #: Failure kind to inject (see module table).
    kind: str
    #: Per-operation injection probability (probability-driven rule).
    rate: float = 0.0
    #: Explicit 1-based operation indices to fail (schedule-driven rule).
    at_ops: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.site or not self.kind:
            raise ValueError("a fault spec needs a site and a kind")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} is not a probability")
        if self.rate == 0.0 and not self.at_ops:
            raise ValueError("a fault spec needs a rate or a schedule")
        if self.rate > 0.0 and self.at_ops:
            raise ValueError(
                "a fault spec takes a rate or a schedule, not both "
                f"(site {self.site!r} sets rate={self.rate} and "
                f"at_ops={list(self.at_ops)})"
            )

    def matches(self, site: str) -> bool:
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site


class FaultPlan:
    """A deterministic schedule of hardware failures.

    The plan is consulted once per operation at each site; the decision
    sequence is a pure function of ``(seed, specs, per-site operation
    counts)``.  The same plan object must not be shared between two
    systems (it carries the operation counters); build one per system
    or call :meth:`fork` for a fresh copy.
    """

    def __init__(self, specs: list[FaultSpec] | None = None, seed: int = 0) -> None:
        self.specs = list(specs or [])
        self.seed = seed
        #: site -> operations seen (1-based after increment).
        self._ops: dict[str, int] = {}
        #: (spec identity, site) -> private RNG stream.
        self._streams: dict[tuple[int, str], random.Random] = {}

    def fork(self) -> "FaultPlan":
        """A fresh plan with the same rules and seed, zero history."""
        return FaultPlan(self.specs, self.seed)

    def decide(self, site: str) -> str | None:
        """One operation happened at ``site``; fail it?

        Returns the failure kind to inject, or None.  The first
        matching rule that fires wins.
        """
        op = self._ops.get(site, 0) + 1
        self._ops[site] = op
        for index, spec in enumerate(self.specs):
            if not spec.matches(site):
                continue
            if op in spec.at_ops:
                return spec.kind
            if spec.rate and self._stream(index, site).random() < spec.rate:
                return spec.kind
        return None

    def _stream(self, spec_index: int, site: str) -> random.Random:
        key = (spec_index, site)
        stream = self._streams.get(key)
        if stream is None:
            spec = self.specs[spec_index]
            stream = random.Random(
                f"{self.seed}|{spec.site}|{spec.kind}|{site}"
            )
            self._streams[key] = stream
        return stream

    def ops_seen(self, site: str) -> int:
        return self._ops.get(site, 0)

    def describe(self) -> str:
        rules = ", ".join(
            f"{s.site}:{s.kind}"
            + (f"@{s.rate}" if s.rate else f"@ops{list(s.at_ops)}")
            for s in self.specs
        )
        return f"FaultPlan(seed={self.seed}, {rules or 'empty'})"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.describe()
