"""The hierarchy salvager and the clean-shutdown marker.

Multics ran a *salvager* after any unclean shutdown: a privileged
sweep that walked the directory hierarchy, reconciled the in-core
tables against backing storage, and repaired or quarantined damaged
entries so the system could come up rather than crash on the first
dangling pointer.  The seed planted the hook — the ``salvager_data``
marker segment written at boot — with nothing behind it; this module
is the salvager.

**The marker protocol.**  Word 0 of the ``salvager_data`` segment (a
root entry created by initialization) holds one of:

* ``0`` — fresh storage, first boot, nothing to salvage;
* :data:`MAGIC_RUNNING` — written when boot completes; still being
  there at the *next* boot means the system died without a clean
  shutdown, so the salvager must run;
* :data:`MAGIC_CLEAN` — written by an orderly shutdown; salvage skipped.

**What salvage does** (each action is audited with outcome
``salvaged``):

1. reclaims core: pages resident at the crash are given disk homes and
   evicted (their frames were volatile; the copies here stand in for
   the crash image), so boot sees a sane memory hierarchy;
2. walks the directory tree from the root, quarantining branches whose
   UID no longer exists in the layer-1 store (dangling), directory
   branches whose directory object is gone, and branches whose label
   fails MAC non-decrease (crash-torn metadata) — damaged-but-present
   entries move to ``>salvager_quarantine`` instead of being lost;
3. re-attaches orphan directories (registered but unreachable from the
   root) under the quarantine directory — the classic lost+found;
4. reconciles the active segment table: active UIDs with no layer-1
   record are flushed and dropped;
5. purges per-process KST entries that map segment numbers to deleted
   UIDs (the crashed processes are gone; their tables must not leak
   stale mappings into reused PIDs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SalvageNeeded
from repro.fs.acl import Acl
from repro.fs.directory import Branch, Directory
from repro.security.mac import BOTTOM
from repro.security.principal import KERNEL_PRINCIPAL
from repro.vm.segment_control import PageHome

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.services import KernelServices

#: Marker value meaning "shut down cleanly; no salvage needed".
MAGIC_CLEAN = 0o52525
#: Marker value meaning "system in operation" (unclean if seen at boot).
MAGIC_RUNNING = 0o31313

#: Name of the marker segment in the root (created by initialization).
MARKER_NAME = "salvager_data"
#: Root directory collecting quarantined and lost entries.
QUARANTINE_NAME = "salvager_quarantine"


# ---------------------------------------------------------------------------
# the marker
# ---------------------------------------------------------------------------

def _marker_slot(services: "KernelServices"):
    """(memory level, frame) holding word 0 of the marker segment."""
    branch = services.tree.root.maybe(MARKER_NAME)
    if branch is None or branch.uid not in services.ast:
        return None
    aseg = services.ast.get(branch.uid)
    if not aseg.ptws:
        return None
    ptw = aseg.ptws[0]
    if ptw.in_core and ptw.frame is not None:
        return services.hierarchy.core, ptw.frame
    home = aseg.homes[0]
    if home is None:
        return None
    return services.hierarchy.level(home.level), home.frame


def read_marker(services: "KernelServices") -> int | None:
    """The marker word, or None when the segment does not exist yet."""
    slot = _marker_slot(services)
    if slot is None:
        return None
    level, frame = slot
    return level.frame(frame).data[0]


def _write_marker(services: "KernelServices", value: int) -> bool:
    slot = _marker_slot(services)
    if slot is None:
        return False
    level, frame = slot
    level.frame(frame).data[0] = value
    return True


def mark_running(services: "KernelServices") -> bool:
    """Boot completed; anything but a clean shutdown now needs salvage."""
    return _write_marker(services, MAGIC_RUNNING)


def mark_clean(services: "KernelServices") -> bool:
    """Orderly shutdown: the salvager may be skipped at the next boot."""
    return _write_marker(services, MAGIC_CLEAN)


# ---------------------------------------------------------------------------
# the salvager
# ---------------------------------------------------------------------------

@dataclass
class SalvageReport:
    """What one salvage pass found and did."""

    directories_checked: int = 0
    branches_checked: int = 0
    #: (entry name, reason) of every entry removed or moved.
    quarantined: list[tuple[str, str]] = field(default_factory=list)
    #: UIDs of orphan directories re-attached under quarantine.
    orphans_reattached: list[int] = field(default_factory=list)
    #: Active-segment UIDs dropped because layer 1 had no record.
    ast_dropped: list[int] = field(default_factory=list)
    core_pages_reclaimed: int = 0
    kst_entries_purged: int = 0
    #: Directory objects whose label was reset from the branch copy.
    labels_repaired: int = 0

    @property
    def damage_found(self) -> int:
        return (
            len(self.quarantined)
            + len(self.orphans_reattached)
            + len(self.ast_dropped)
            + self.kst_entries_purged
            + self.labels_repaired
        )


class HierarchySalvager:
    """Boot-time repair of the storage hierarchy after a crash."""

    def __init__(self, services: "KernelServices") -> None:
        self.services = services

    def needed(self) -> bool:
        """True when the marker shows the last session never shut down."""
        return read_marker(self.services) == MAGIC_RUNNING

    def require_clean(self) -> None:
        """Raise :class:`SalvageNeeded` instead of trusting a dirty tree."""
        if self.needed():
            raise SalvageNeeded(
                "unclean shutdown recorded in salvager_data; run salvage()"
            )

    # -- the pass -------------------------------------------------------

    def salvage(self) -> SalvageReport:
        report = SalvageReport()
        self._audit("hierarchy", "salvage_begin", "unclean shutdown marker")
        self._reclaim_core(report)
        # Quarantine and reattachment feed each other: removing a
        # dangling directory branch orphans its subtree, and a
        # reattached orphan subtree must itself be walked for damage.
        # Each round strictly reduces outstanding damage, so the
        # fixpoint is reached in a bounded number of rounds.
        while True:
            before = len(report.quarantined) + len(report.orphans_reattached)
            self._walk_and_quarantine(report)
            self._reattach_orphans(report)
            after = len(report.quarantined) + len(report.orphans_reattached)
            if after == before:
                break
        self._reconcile_ast(report)
        self._purge_kst(report)
        self._audit(
            "hierarchy",
            "salvage_end",
            f"{report.damage_found} damaged entries handled, "
            f"{report.directories_checked} directories checked",
        )
        return report

    # -- step 1: volatile memory ---------------------------------------

    def _reclaim_core(self, report: SalvageReport) -> None:
        """Give every crash-resident page a disk home and free its frame."""
        services = self.services
        for aseg in services.ast.segments():
            for pageno in aseg.resident_pages():
                ptw = aseg.ptws[pageno]
                disk_frame = services.hierarchy.disk.allocate()
                services.hierarchy.disk.write_page(
                    disk_frame, self._read_frame_insistently(ptw.frame)
                )
                services.hierarchy.core.free(ptw.frame)
                ptw.evict()
                aseg.homes[pageno] = PageHome("disk", disk_frame)
                report.core_pages_reclaimed += 1
        services.page_control.resident.clear()

    def _read_frame_insistently(self, frame: int) -> list[int]:
        """Read one core frame, riding out injected parity errors.

        The salvager cannot give up the way an I/O path can — the page
        must leave volatile core.  Bounded retries first; if they are
        exhausted, fall back to a raw copy of the frame contents (the
        classic salvager move: save what is there, flag it), audited so
        the possibly-damaged page is on the record.
        """
        from repro.errors import DeviceError
        from repro.faults.recovery import retry_call

        services = self.services
        try:
            data, _ = retry_call(
                lambda: services.hierarchy.core.read_page(frame),
                services.retry_policy,
                services.injector,
                "salvager.reclaim",
            )
            return data
        except DeviceError:
            self._audit(
                f"core frame {frame}", "raw_copy",
                "parity persisted through retries; page saved as-is",
            )
            return list(services.hierarchy.core.frame(frame).data)

    # -- step 2: the tree walk -----------------------------------------

    def _walk_and_quarantine(self, report: SalvageReport) -> None:
        services = self.services
        stack: list[Directory] = [services.tree.root]
        seen: set[int] = {services.tree.root.uid}
        while stack:
            directory = stack.pop()
            report.directories_checked += 1
            for branch in directory.list_branches():
                report.branches_checked += 1
                self._repair_torn_label(branch, report)
                reason = self._damage_reason(directory, branch)
                if reason is not None:
                    self._quarantine(directory, branch, reason, report)
                    continue
                if branch.is_directory and branch.uid not in seen:
                    seen.add(branch.uid)
                    stack.append(services.tree.directory(branch.uid))

    def _repair_torn_label(self, branch: Branch, report: SalvageReport) -> None:
        """Restore a directory object's label from its branch.

        Attributes live in the parent directory's branch (the Multics
        rule); a directory object whose label disagrees with its branch
        is crash-torn metadata, and the branch copy wins.  Without the
        repair every child of the torn directory would fail the MAC
        non-decrease check and be quarantined for someone else's damage.
        """
        services = self.services
        if not branch.is_directory or not services.tree.is_directory_uid(branch.uid):
            return
        directory = services.tree.directory(branch.uid)
        if directory.label == branch.label:
            return
        old = directory.label
        directory.label = branch.label
        report.labels_repaired += 1
        self._audit(
            branch.name, "repair_label",
            f"directory {branch.uid} label {old} reset to branch "
            f"label {branch.label}",
        )

    def _damage_reason(self, directory: Directory, branch: Branch) -> str | None:
        services = self.services
        if not services.ufs.exists(branch.uid):
            return f"dangling uid {branch.uid}"
        if branch.is_directory and not services.tree.is_directory_uid(branch.uid):
            return f"directory object {branch.uid} missing"
        if not branch.label.dominates(directory.label):
            return (
                f"label {branch.label} below directory label "
                f"{directory.label} (MAC non-decrease violated)"
            )
        return None

    def _quarantine(
        self,
        directory: Directory,
        branch: Branch,
        reason: str,
        report: SalvageReport,
    ) -> None:
        directory.remove(branch.name)
        report.quarantined.append((branch.name, reason))
        dangling = not self.services.ufs.exists(branch.uid)
        if not dangling:
            # The object itself survives; park the branch where only
            # the salvager's ACL reaches it, under a fresh name.
            quarantine = self._quarantine_dir()
            parked = Branch(
                name=f"{branch.name}.uid{branch.uid}",
                uid=branch.uid,
                is_directory=branch.is_directory
                and self.services.tree.is_directory_uid(branch.uid),
                acl=Acl.make(("*.SysDaemon.*", "rw")),
                label=branch.label,
                author=str(KERNEL_PRINCIPAL),
                bit_count=branch.bit_count,
            )
            quarantine.add(parked)
        self._audit(branch.name, "quarantine", reason)

    def _quarantine_dir(self) -> Directory:
        services = self.services
        root = services.tree.root
        existing = root.maybe(QUARANTINE_NAME)
        if existing is not None:
            return services.tree.directory(existing.uid)
        uid = services.ufs.create_segment(1, label=BOTTOM, is_directory=True)
        acl = Acl.make(("*.SysDaemon.*", "rw"))
        directory = services.tree.register_directory(
            uid, root, BOTTOM, acl=acl, name=QUARANTINE_NAME
        )
        root.add(
            Branch(
                name=QUARANTINE_NAME, uid=uid, is_directory=True,
                acl=acl, label=BOTTOM, author=str(KERNEL_PRINCIPAL),
            )
        )
        return directory

    # -- step 3: lost+found --------------------------------------------

    def _reattach_orphans(self, report: SalvageReport) -> None:
        """Park unreachable directories under quarantine (lost+found).

        Reachability is recomputed *after* the quarantine pass, so
        branches the walk parked already count as reachable.  Only the
        root of an orphan subtree needs a new branch; its descendants
        become reachable through it.
        """
        services = self.services
        reachable = self._reachable_uids()
        orphans = {
            d.uid for d in services.tree.directories() if d.uid not in reachable
        }
        for directory in services.tree.directories():
            if directory.uid not in orphans or directory.parent_uid in orphans:
                continue
            quarantine = self._quarantine_dir()
            name = f"lost.dir.uid{directory.uid}"
            if name not in quarantine:
                quarantine.add(
                    Branch(
                        name=name, uid=directory.uid, is_directory=True,
                        acl=Acl.make(("*.SysDaemon.*", "rw")),
                        label=directory.label, author=str(KERNEL_PRINCIPAL),
                    )
                )
            directory.parent_uid = quarantine.uid
            report.orphans_reattached.append(directory.uid)
            self._audit(name, "reattach_orphan", f"directory {directory.uid}")

    def _reachable_uids(self) -> set[int]:
        services = self.services
        reachable: set[int] = {services.tree.root.uid}
        stack: list[Directory] = [services.tree.root]
        while stack:
            for branch in stack.pop().list_branches():
                if (
                    branch.is_directory
                    and services.tree.is_directory_uid(branch.uid)
                    and branch.uid not in reachable
                ):
                    reachable.add(branch.uid)
                    stack.append(services.tree.directory(branch.uid))
        return reachable

    # -- step 4: active segment table ----------------------------------

    def _reconcile_ast(self, report: SalvageReport) -> None:
        services = self.services
        for aseg in services.ast.segments():
            if services.ufs.exists(aseg.uid):
                continue
            services.page_control.flush_segment(aseg)
            services.ast.drop(aseg.uid)
            report.ast_dropped.append(aseg.uid)
            self._audit(
                f"uid {aseg.uid}", "drop_active_segment", "no layer-1 record"
            )

    # -- step 5: known segment tables ----------------------------------

    def _purge_kst(self, report: SalvageReport) -> None:
        services = self.services
        for state in services._pstate.values():
            for entry in state.kst.entries():
                if not services.ufs.exists(entry.uid):
                    state.kst.terminate(entry.segno)
                    report.kst_entries_purged += 1
                    self._audit(
                        f"segno {entry.segno}", "purge_kst_entry",
                        f"uid {entry.uid} no longer exists",
                    )

    # -- audit ----------------------------------------------------------

    def _audit(self, obj: str, action: str, detail: str) -> None:
        self.services.audit.log(
            self.services.sim.clock.now,
            "kernel.salvager",
            obj,
            action,
            "salvaged",
            detail,
        )
