"""The runtime fault injector: plan consultation plus audit.

Hardware models hold an optional :class:`FaultInjector` and ask it one
question — :meth:`check` — at each injection point.  The injector is
also the recovery layer's notebook: every retry, degradation, and
fatality is recorded here *and* in the security audit log, so a single
log replays the whole failure story.  Audit outcomes used:

* ``injected`` — the plan made an operation fail;
* ``recovered`` — a retry or watchdog redelivery absorbed a fault;
* ``degraded`` — equipment was taken out of service, system running;
* ``fatal`` — bounded retries exhausted; the caller saw denial of use.

None of these outcomes overlaps ``granted``/``denied``, so security
queries over the audit log are unaffected by injection noise — which
is itself part of the containment argument.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan
    from repro.hw.clock import Clock
    from repro.security.audit import AuditLog

#: Audit subject for injections (the failing hardware itself).
HARDWARE_SUBJECT = "hardware.fault_plan"
#: Audit subject for recovery actions (the kernel's recovery layer).
RECOVERY_SUBJECT = "kernel.recovery"


class FaultInjector:
    """Consults a :class:`FaultPlan` and books every fault and fix."""

    def __init__(
        self,
        plan: "FaultPlan",
        audit: "AuditLog | None" = None,
        clock: "Clock | None" = None,
        metrics=None,
    ) -> None:
        self.plan = plan
        self.audit = audit
        self.clock = clock
        #: (time, site, kind) of every injected fault, in order.
        self.injected: list[tuple[int, str, str]] = []
        self.per_site: Counter[str] = Counter()
        self.recovered = 0
        self.degraded = 0
        self.fatal = 0
        #: Simulated ticks each recovery action took (bench material).
        self.recovery_ticks: list[int] = []
        self._h_recovery = None
        if metrics is not None:
            metrics.counter("faults.injected", "faults the plan injected",
                            source=lambda: self.injected_count)
            metrics.counter("faults.recovered", "faults absorbed by recovery",
                            source=lambda: self.recovered)
            metrics.counter("faults.degraded", "equipment taken out of service",
                            source=lambda: self.degraded)
            metrics.counter("faults.fatal", "retry budgets exhausted",
                            source=lambda: self.fatal)
            self._h_recovery = metrics.histogram(
                "faults.recovery_ticks",
                "simulated ticks per recovery action",
            )

    # -- the hardware-facing question ----------------------------------

    def check(self, site: str, detail: str = "") -> str | None:
        """Should the current operation at ``site`` fail, and how?"""
        kind = self.plan.decide(site)
        if kind is None:
            return None
        return self.force(site, kind, detail)

    def force(self, site: str, kind: str, detail: str = "") -> str:
        """Book a fault a scenario controller *commanded* (rather than
        one the plan decided) — the chaos engine's entry point.  Forced
        faults share the plan-driven books and audit trail, so one log
        still replays the whole failure story."""
        now = self._now()
        self.injected.append((now, site, kind))
        self.per_site[site] += 1
        self._log(HARDWARE_SUBJECT, site, f"inject:{kind}", "injected", detail)
        return kind

    # -- the recovery layer's notebook ---------------------------------

    def note_recovered(self, site: str, action: str, ticks: int = 0,
                       detail: str = "") -> None:
        self.recovered += 1
        self.recovery_ticks.append(ticks)
        if self._h_recovery is not None:
            self._h_recovery.observe(ticks)
        self._log(RECOVERY_SUBJECT, site, action, "recovered", detail)

    def note_degraded(self, site: str, detail: str = "") -> None:
        self.degraded += 1
        self._log(RECOVERY_SUBJECT, site, "out_of_service", "degraded", detail)

    def note_fatal(self, site: str, detail: str = "") -> None:
        self.fatal += 1
        self._log(RECOVERY_SUBJECT, site, "retries_exhausted", "fatal", detail)

    # -- queries --------------------------------------------------------

    @property
    def injected_count(self) -> int:
        return len(self.injected)

    def unresolved(self) -> int:
        """Injected faults not yet matched by a recovery-plane action.

        Zero after a quiesced run means every fault was retried,
        degraded, or went fatal — nothing vanished silently.
        """
        return self.injected_count - (self.recovered + self.degraded + self.fatal)

    # -- internals ------------------------------------------------------

    def _now(self) -> int:
        return self.clock.now if self.clock is not None else 0

    def _log(self, subject: str, site: str, action: str, outcome: str,
             detail: str) -> None:
        if self.audit is not None:
            self.audit.log(self._now(), subject, site, action, outcome, detail)
