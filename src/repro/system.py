"""The public API: a whole simulated Multics in one object.

:class:`MulticsSystem` assembles the hardware substrate, a supervisor
(legacy or security kernel, per configuration), an initialization
strategy (bootstrap or memory image), and an interrupt-handling design,
then boots.  :meth:`MulticsSystem.login` yields a :class:`Session`
whose methods mirror what a logged-in user could do: create and share
segments, walk the hierarchy, run programs on the simulated CPU with
dynamic linking.

The same ``Session`` API works against both supervisors — path
resolution goes through the in-kernel naming gates on the legacy
system and through the user-ring search machinery on the kernel — so
examples and benches exercise identical workloads on both.
"""

from __future__ import annotations

from repro.config import (
    InitKind,
    InterruptKind,
    SupervisorKind,
    SystemConfig,
    USER_RING,
)
from repro.errors import KernelDenial
from repro.faults.salvager import (
    HierarchySalvager,
    SalvageReport,
    mark_clean,
    mark_running,
)
from repro.fs.directory import SEP
from repro.hw.cpu import CPU
from repro.init.bootstrap import BootstrapInitializer
from repro.init.image import ImageBuilder, boot_from_image
from repro.kernel.kernel import SecurityKernel
from repro.kernel.legacy import LegacySupervisor
from repro.kernel.services import KernelServices
from repro.proc.interrupt_procs import (
    DedicatedProcessDispatch,
    InProcessDispatch,
)
from repro.proc.ipc import Charge, Wakeup
from repro.proc.process import Process
from repro.security.mac import BOTTOM, SecurityLabel
from repro.security.principal import KERNEL_PRINCIPAL
from repro.user.linker import UserRingLinker
from repro.user.login import LoginListener
from repro.user.refnames import ReferenceNameManager
from repro.user.search_rules import UserSearchRules


class MulticsSystem:
    """A complete system instance."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        services: KernelServices | None = None,
    ) -> None:
        """Build a system, optionally over *existing* kernel services.

        Passing ``services`` models rebooting a machine from the same
        backing store: the memory hierarchy, file system, and audit log
        survive; supervisor and dispatch structures are rebuilt.  The
        crash-recovery harness uses this to reboot after a simulated
        crash and let the salvager repair what it finds.
        """
        if services is not None:
            if config is not None and config is not services.config:
                raise ValueError(
                    "pass either a config or existing services, not both"
                )
            self.config = services.config
            self.services = services
        else:
            self.config = config or SystemConfig()
            self.config.validate()
            self.services = KernelServices(self.config)
        if self.config.supervisor is SupervisorKind.LEGACY:
            self.supervisor = LegacySupervisor(self.services)
        else:
            self.supervisor = SecurityKernel(self.services)
        self._install_interrupt_dispatch()
        # The initializer: the kernel's own agent for boot-time actions.
        self.initializer = Process(
            "initializer", ring=0, principal=KERNEL_PRINCIPAL
        )
        self.boot_privileged_steps = 0
        self.image = None
        self.listener: LoginListener | None = None
        self.salvage_report: SalvageReport | None = None
        self._booted = False

    # -- construction details --------------------------------------------------

    def _install_interrupt_dispatch(self) -> None:
        costs = self.config.costs
        if self.config.interrupts is InterruptKind.DEDICATED:
            self.interrupt_dispatch = DedicatedProcessDispatch(
                self.services.interrupts, self.services.scheduler, costs
            )
        else:
            self.interrupt_dispatch = InProcessDispatch(
                self.services.interrupts, self.services.scheduler, costs
            )
        # One handler per device line: acknowledge and wake anyone
        # waiting for that device.
        for line in range(1, 7):
            channel = self.services.scheduler.create_channel(f"dev.done.{line}")

            def handler(payload, _channel=channel):
                yield Charge(30)  # the device-specific acknowledgement work
                yield Wakeup(_channel, payload)

            self.interrupt_dispatch.register(line, handler)

    # -- boot ----------------------------------------------------------------------

    def boot(self) -> "MulticsSystem":
        """Initialize per the configured strategy; idempotent.

        When the ``salvager_data`` marker shows the previous session
        never shut down cleanly, the hierarchy salvager runs *before*
        initialization — a privileged boot step — so the strategy's
        manifest finds a consistent tree.
        """
        if self._booted:
            return self
        salvager = HierarchySalvager(self.services)
        salvage_steps = 0
        if salvager.needed():
            self.salvage_report = salvager.salvage()
            salvage_steps = 1
        if self.config.init is InitKind.BOOTSTRAP:
            initializer = BootstrapInitializer()
            initializer.boot(self.services)
            self.boot_privileged_steps = initializer.privileged_steps_run
        else:
            # The image is generated in a user environment "of a
            # previous system"; boot is verify + manifest.
            self.image = ImageBuilder().build(self.config)
            self.boot_privileged_steps = boot_from_image(
                self.services, self.image
            )
        self.boot_privileged_steps += salvage_steps
        if self.config.supervisor is SupervisorKind.SECURITY_KERNEL:
            # The user-ring login listener, running as a daemon.
            listener_proc = Process(
                "login_listener", ring=USER_RING, principal=KERNEL_PRINCIPAL
            )
            self.listener = LoginListener(self.supervisor, listener_proc)
        # From here on, anything but shutdown() is an unclean end.
        mark_running(self.services)
        self._booted = True
        return self

    def shutdown(self) -> None:
        """Orderly shutdown: write the clean marker so the next boot
        skips the salvager.  The system object can boot() again."""
        if not self._booted:
            return
        mark_clean(self.services)
        self.services.audit.log(
            self.services.sim.clock.now,
            str(KERNEL_PRINCIPAL),
            "system",
            "shutdown",
            "granted",
            "clean shutdown marker written",
        )
        self._booted = False

    # -- supervisor swap (specialized kernels) ---------------------------------

    def install_supervisor(self, supervisor) -> object:
        """Swap the active supervisor (e.g. a ``SpecializedKernel``)
        over the *same* kernel services; returns the previous one.

        The new supervisor's gate table claims the ``gate.*`` metric
        sources (latest owner wins), and on a booted kernel system the
        login listener is rebuilt so new logins mint processes through
        the installed perimeter.  Installing before :meth:`boot` means
        the system runs specialized from its first gate call.
        """
        if supervisor.services is not self.services:
            raise ValueError(
                "supervisor was built over different kernel services"
            )
        previous = self.supervisor
        self.supervisor = supervisor
        supervisor.gates.claim_metrics()
        if self._booted and self.config.supervisor is not SupervisorKind.LEGACY:
            listener_proc = Process(
                "login_listener", ring=USER_RING, principal=KERNEL_PRINCIPAL
            )
            self.listener = LoginListener(self.supervisor, listener_proc)
        return previous

    # -- user management -----------------------------------------------------------

    def register_user(
        self,
        person: str,
        project: str,
        password: str,
        clearance: SecurityLabel = BOTTOM,
    ) -> None:
        self.services.register_user(person, [project], password, clearance)

    def login(
        self, person: str, project: str, password: str, source: str = "network"
    ) -> "Session":
        """Log a user in; returns a live session."""
        if not self._booted:
            raise RuntimeError("boot() first")
        if self.config.supervisor is SupervisorKind.LEGACY:
            # The in-kernel answering service does everything.
            driver = Process("tty_driver", ring=USER_RING,
                             principal=KERNEL_PRINCIPAL)
            session_id = self.supervisor.call(
                driver, "as_$login", person, project, password, "tty1"
            )
            svc = self.services.answering_service
            pid = svc.sessions[session_id].pid
        else:
            user_session = self.listener.login(
                person, project, password, source=source
            )
            session_id = user_session.session_id
            pid = user_session.pid
        process = self.services.created_processes[pid]
        session = Session(self, process, session_id)
        session._ensure_home()
        return session

    # -- running the simulation -----------------------------------------------------

    def run(self, until: int | None = None, max_events: int = 10_000_000) -> None:
        self.services.sim.run(until=until, max_events=max_events)

    def add_process(self, process: Process) -> None:
        self.services.scheduler.add_process(process)

    def cpu_complex(self, n_cpus: int | None = None) -> "SmpComplex":
        """Build the SMP execution complex over this system's kernel.

        ``n_cpus`` defaults to ``config.cpu_count()``.  The complex's
        CPUs share core memory, page control (under the page-table
        lock), and the traffic-control lock with the rest of the
        system; each has its own associative memory.  Execution is
        deterministic lockstep — see :mod:`repro.hw.smp`.
        """
        from repro.hw.smp import SmpComplex

        services = self.services
        return SmpComplex(
            sim=services.sim,
            config=self.config,
            core=services.hierarchy.core,
            page_control=services.page_control,
            ast=services.ast,
            tc_lock=services.scheduler.tc_lock,
            metrics=services.metrics,
            tracer=services.tracer,
            meters=services.meters,
            n_cpus=n_cpus,
            timeline=services.timeline,
        )

    def chaos_engine(self, scenario, complex_=None) -> "ChaosEngine":
        """Wire a chaos scenario to this system's topology and injector.

        ``scenario`` is a :class:`repro.faults.ChaosScenario` or the
        dict form of one.  When the system booted without a fault plan
        there is no hardware injector; a bookkeeping-only injector over
        an empty plan is built so commanded faults still land in the
        audit trail and ``faults.*`` books.
        """
        from repro.faults.chaos import ChaosEngine, ChaosScenario
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan

        if isinstance(scenario, dict):
            scenario = ChaosScenario.from_dict(scenario)
        services = self.services
        injector = services.injector
        if injector is None:
            injector = FaultInjector(
                FaultPlan([], seed=scenario.seed),
                audit=services.audit,
                clock=services.sim.clock,
                metrics=services.metrics,
            )
        return ChaosEngine(
            scenario,
            services.topology,
            injector,
            complex_=complex_,
            metrics=services.metrics,
            tracer=services.tracer,
        )

    # -- convenience handles ------------------------------------------------------------

    @property
    def scheduler(self):
        return self.services.scheduler

    @property
    def topology(self):
        """The simulated network topology around the attachment."""
        return self.services.topology

    @property
    def clock(self):
        return self.services.sim.clock

    @property
    def audit(self):
        return self.services.audit

    @property
    def metrics(self):
        """The system-wide metrics registry (repro.obs)."""
        return self.services.metrics

    @property
    def tracer(self):
        """The system-wide event tracer (repro.obs)."""
        return self.services.tracer

    @property
    def meters(self):
        """The system-wide metering plane (repro.obs)."""
        return self.services.meters

    @property
    def audit_trail(self):
        """The bounded security audit trail (repro.obs)."""
        return self.services.audit_trail

    @property
    def timeline(self):
        """The interval timeline sampler, or None when off (repro.obs)."""
        return self.services.timeline

    @property
    def health(self):
        """The SLO health monitor, or None when off (repro.obs)."""
        return self.services.health

    def timeline_document(self) -> dict | None:
        """The run's ``repro.timeline/v1`` document (None when off)."""
        return self.services.timeline_document()


class Session:
    """A logged-in user's handle on the system.

    Paths are Multics tree names (``>udd>Proj>person>file``) or names
    relative to the session's working directory.
    """

    def __init__(self, system: MulticsSystem, process: Process,
                 session_id: int) -> None:
        self.system = system
        self.process = process
        self.session_id = session_id
        self._sup = system.supervisor
        self._legacy = system.config.supervisor is SupervisorKind.LEGACY
        if not self._legacy:
            # User-ring naming environment (the removal's destination).
            self.search = UserSearchRules(self._sup, process)
            self.refnames = ReferenceNameManager(self._sup, process)
            self.linker = UserRingLinker(
                self._sup, process, self.refnames, self.search
            )
        else:
            self.search = None
            self.refnames = None
            self.linker = None

    # -- raw gate access ------------------------------------------------------------

    def call(self, gate: str, *args):
        return self._sup.call(self.process, gate, *args)

    @property
    def principal(self):
        return self.process.principal

    # -- home directory -----------------------------------------------------------------

    def _ensure_home(self) -> None:
        p = self.process.principal
        self.home_path = f">udd>{p.project}>{p.person}"
        for path in (f">udd>{p.project}", self.home_path):
            try:
                self._mkdir_abs(path)
            except KernelDenial:
                continue  # already exists (or another session made it)
            # Multics convention: project members may read (traverse)
            # the project and home directories; only the owner writes.
            try:
                self.set_acl(path, f"*.{p.project}", "r")
            except KernelDenial:
                pass
        try:
            self.set_working_dir(self.home_path)
        except KernelDenial:
            # A highly cleared user may be unable to create a home under
            # the unclassified >udd (the *-property forbids the write);
            # such sessions start at the root and work in upgraded
            # directories they create explicitly.
            self.home_path = SEP
            self.set_working_dir(SEP)

    def _mkdir_abs(self, path: str) -> int:
        parts = [p for p in path.split(SEP) if p]
        if self._legacy:
            return self.call("hcs_$create_dir_path", path)
        dir_segno = self.search.resolve_dir(SEP + SEP.join(parts[:-1]))
        return self.call(
            "hcs_$create_directory", dir_segno, parts[-1],
            self.process.principal.clearance,
        )

    # -- naming operations (two implementations, one API) ----------------------------------

    def set_working_dir(self, path: str) -> None:
        if self._legacy:
            self.call("hcs_$set_wdir", path)
        else:
            self.search.set_working_dir(path)
            self._wdir_path = path

    def working_dir(self) -> str:
        if self._legacy:
            return self.call("hcs_$get_wdir")
        # User-ring: the session tracks it itself; reconstruct lazily.
        return self._wdir_path if hasattr(self, "_wdir_path") else SEP

    def resolve_parent(self, path: str) -> tuple[int, str]:
        """(directory segno, entry name) for a path."""
        if self._legacy:
            full = self.call("hcs_$expand_pathname", path)
            parts = [p for p in full.split(SEP) if p]
            parent = SEP + SEP.join(parts[:-1])
            dir_segno = self.call("hcs_$initiate_path", parent)
            return dir_segno, parts[-1]
        return self.search.resolve(path)

    def initiate(self, path: str) -> int:
        if self._legacy:
            return self.call("hcs_$initiate_path", path)
        return self.search.initiate_path(path)

    # -- segment lifecycle ------------------------------------------------------------------

    def create_segment(self, path: str, n_pages: int = 1,
                       label: SecurityLabel | None = None) -> int:
        """Create a segment; returns its segment number (initiated)."""
        label = label if label is not None else self.process.principal.clearance
        dir_segno, name = self.resolve_parent(path)
        self.call("hcs_$create_segment", dir_segno, name, n_pages, label)
        return self.call("hcs_$initiate", dir_segno, name)

    def create_dir(self, path: str,
                   label: SecurityLabel | None = None) -> int:
        label = label if label is not None else self.process.principal.clearance
        dir_segno, name = self.resolve_parent(path)
        return self.call("hcs_$create_directory", dir_segno, name, label)

    def delete(self, path: str) -> int:
        dir_segno, name = self.resolve_parent(path)
        return self.call("hcs_$delete_entry", dir_segno, name)

    def list_dir(self, path: str = "") -> list[dict]:
        if path:
            if self._legacy:
                return self.call("hcs_$list_path", path)
            return self.call(
                "hcs_$list_directory", self.search.resolve_dir(path)
            )
        if self._legacy:
            return self.call("hcs_$list_path", self.call("hcs_$get_wdir"))
        return self.call(
            "hcs_$list_directory", self.search.working_dir_segno
        )

    def set_acl(self, path: str, pattern: str, mode: str) -> int:
        dir_segno, name = self.resolve_parent(path)
        return self.call("hcs_$acl_add", dir_segno, name, pattern, mode)

    def status(self, path: str) -> dict:
        dir_segno, name = self.resolve_parent(path)
        return self.call("hcs_$status", dir_segno, name)

    # -- data access (hardware-checked loads/stores) --------------------------------------------

    def write_words(self, segno: int, words: list[int], offset: int = 0) -> None:
        self.system.services.write_segment_words(
            self.process, segno, words, offset
        )

    def read_words(self, segno: int, count: int, offset: int = 0) -> list[int]:
        return [
            self.system.services.read_word(self.process, segno, offset + i)
            for i in range(count)
        ]

    # -- program execution on the simulated CPU ---------------------------------------------------

    def make_cpu(self) -> CPU:
        """A CPU wired to this session's fault handlers.

        Missing pages are serviced by page control; linkage faults by
        the user-ring linker (kernel system) or the in-kernel linker
        gates (legacy system).
        """
        services = self.system.services

        def on_missing_page(ctx, segno, pageno):
            uid = ctx.dseg.get(segno).uid
            services.page_control.service_sync(services.ast.get(uid), pageno)

        if self._legacy:
            def on_linkage_fault(ctx, index):
                self.call("lk_$snap", index)
        else:
            on_linkage_fault = self.linker.fault_handler()

        return CPU(
            core=services.hierarchy.core,
            costs=self.system.config.costs,
            ring_mode=self.system.config.ring_mode,
            page_size=self.system.config.page_size,
            on_missing_page=on_missing_page,
            on_linkage_fault=on_linkage_fault,
            am_enabled=self.system.config.am_enabled,
            metrics=services.metrics,
            tracer=services.tracer,
            meters=services.meters,
            fast_path=self.system.config.fast_path,
        )

    def install_object(self, path: str, obj, n_pages: int | None = None) -> int:
        """Write an object segment into the file system and make it
        executable; returns its segment number."""
        from repro.user.object_format import encode_object

        words = encode_object(obj)
        page_size = self.system.config.page_size
        pages = n_pages or (len(words) + page_size - 1) // page_size + 1
        segno = self.create_segment(path, n_pages=pages)
        self.write_words(segno, words)
        dir_segno, name = self.resolve_parent(path)
        self.call("hcs_$set_bit_count", dir_segno, name, len(words) * 36)
        return segno

    def load_program(self, segno: int):
        """Parse + register the object segment for execution."""
        if self._legacy:
            return self.call("lk_$make_linkage", segno)
        return self.linker.load_object(segno)

    def program_job(self, segno: int, entry: str = "main",
                    args: list[int] | None = None,
                    max_instructions: int = 1_000_000,
                    label: str = ""):
        """A :class:`repro.hw.smp.CpuJob` running an installed program
        as this session's process (for ``MulticsSystem.cpu_complex``).

        The program is loaded (linked) first if needed, so the complex
        never takes a linkage fault mid-round.
        """
        from repro.hw.smp import CpuJob

        code = self.process.code_segments.get(segno)
        if code is None:
            self.load_program(segno)
            code = self.process.code_segments[segno]
        return CpuJob(
            ctx=self.process,
            segno=segno,
            entry=code.entry_points.get(entry, 0),
            args=list(args or []),
            max_instructions=max_instructions,
            label=label or f"{self.process.name}:{entry}",
        )

    def run_program(self, segno: int, entry: str = "main",
                    args: list[int] | None = None) -> int:
        """Execute an installed program on the simulated CPU."""
        code = self.process.code_segments.get(segno)
        if code is None:
            self.load_program(segno)
            code = self.process.code_segments[segno]
        offset = code.entry_points.get(entry, 0)
        cpu = self.make_cpu()
        return cpu.execute(self.process, segno, offset, args or [])

    def logout(self) -> None:
        # Process destruction deactivates the address space: resident
        # pages are written back to disk homes (their residue fate is
        # then the storage system's clearing policy — experiment E11).
        services = self.system.services
        for sdw in list(self.process.dseg):
            if sdw.uid is not None and sdw.uid in services.ast:
                aseg = services.ast.get(sdw.uid)
                services.page_control.deactivate_segment(aseg)
        if self._legacy:
            driver = Process("tty_driver", ring=USER_RING,
                             principal=KERNEL_PRINCIPAL)
            self._sup.call(driver, "as_$logout", self.session_id)
        else:
            self.system.listener.logout(self.session_id)
