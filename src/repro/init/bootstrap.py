"""Step-by-step in-kernel bootstrap (the old initialization).

Each :class:`InitStep` performs one real piece of system setup against
the kernel services — building the standard directory hierarchy,
registering system daemons and their identities, configuring devices,
seeding search infrastructure.  Under the bootstrap strategy, *every*
step executes inside the kernel at every boot; a certifier must audit
all of them (the privileged-step and statement counts that experiment
E10 reports come straight from this list).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.fs.acl import Acl
from repro.fs.directory import Branch
from repro.security.mac import BOTTOM, SecurityLabel
from repro.security.principal import KERNEL_PRINCIPAL


@dataclass
class InitStep:
    """One initialization action."""

    name: str
    privileged: bool
    action: Callable[["object"], None]  # receives KernelServices
    doc: str = ""


# ---------------------------------------------------------------------------
# the actual setup work (shared by both strategies)
# ---------------------------------------------------------------------------

def _step_probe_memory(services) -> None:
    """Verify the configured memory hierarchy is sane and empty enough."""
    h = services.hierarchy
    if h.core.free_count < services.config.free_core_target:
        raise RuntimeError("insufficient free core at boot")
    if h.disk.free_count == 0:
        raise RuntimeError("no disk storage at boot")


def _make_dir(services, parent, name, label=BOTTOM, acl_pairs=None) -> None:
    if name in parent:
        return
    uid = services.ufs.create_segment(1, label=label, is_directory=True)
    acl = Acl.make(*(acl_pairs or (("*.*.*", "rw"),)))
    services.tree.register_directory(uid, parent, label, acl=acl, name=name)
    # The Directory and its branch share one ACL object (one ACL per
    # entry, as in Multics).
    parent.add(
        Branch(
            name=name, uid=uid, is_directory=True, acl=acl,
            label=label, author=str(KERNEL_PRINCIPAL),
        )
    )


def _step_root_hierarchy(services) -> None:
    """Create the standard top-level directories."""
    root = services.tree.root
    _make_dir(services, root, "udd")       # user directory directory
    _make_dir(services, root, "sss")       # standard service system
    _make_dir(services, root, "daemons",
              acl_pairs=(("*.SysDaemon.*", "rw"), ("*.*.*", "r")))
    _make_dir(services, root, "system_library",
              acl_pairs=(("*.SysDaemon.*", "rw"), ("*.*.*", "r")))


def _step_register_daemons(services) -> None:
    services.register_user("Initializer", ["SysDaemon"], "init-password")
    services.register_user("Backup", ["SysDaemon"], "backup-password")
    services.register_user("IO", ["SysDaemon"], "io-password")


def _step_configure_devices(services) -> None:
    """Sanity-check the peripheral inventory against the config."""
    for device in services.devices.values():
        if device.attached_by is not None:
            raise RuntimeError(f"device {device.name} attached at boot")


def _step_configure_network(services) -> None:
    if services.network.backlog:
        raise RuntimeError("network buffer not empty at boot")


def _step_storage_accounting(services) -> None:
    """Initialize quota on the user hierarchy."""
    root = services.tree.root
    udd = services.tree.directory(root.get("udd").uid)
    udd.quota_pages = services.config.disk_frames // 2


def _step_clock_check(services) -> None:
    if services.sim.clock.now != 0 and services.sim.pending:
        raise RuntimeError("events pending before initialization finished")


def _step_salvager_marker(services) -> None:
    """Record a clean-shutdown marker segment (the salvager's input)."""
    root = services.tree.root
    if "salvager_data" in root:
        return
    uid = services.ufs.create_segment(1, label=BOTTOM)
    root.add(
        Branch(
            name="salvager_data", uid=uid, is_directory=False,
            acl=Acl.make(("*.SysDaemon.*", "rw")), label=BOTTOM,
            author=str(KERNEL_PRINCIPAL),
        )
    )


def standard_steps() -> list[InitStep]:
    """The canonical initialization sequence."""
    return [
        InitStep("probe_memory", True, _step_probe_memory,
                 "verify the memory configuration"),
        InitStep("root_hierarchy", True, _step_root_hierarchy,
                 "create >udd, >sss, >daemons, >system_library"),
        InitStep("register_daemons", True, _step_register_daemons,
                 "register system daemon identities"),
        InitStep("configure_devices", True, _step_configure_devices,
                 "check the peripheral inventory"),
        InitStep("configure_network", True, _step_configure_network,
                 "check the network attachment"),
        InitStep("storage_accounting", True, _step_storage_accounting,
                 "set initial quotas"),
        InitStep("clock_check", True, _step_clock_check,
                 "verify the clock and event queue"),
        InitStep("salvager_marker", True, _step_salvager_marker,
                 "write the clean-shutdown marker"),
    ]


class BootstrapInitializer:
    """Runs every step, privileged, at every boot (the old way)."""

    strategy = "bootstrap"

    def __init__(self, steps: list[InitStep] | None = None) -> None:
        self.steps = steps if steps is not None else standard_steps()
        self.privileged_steps_run = 0
        self.completed: list[str] = []

    def boot(self, services) -> None:
        for step in self.steps:
            step.action(services)
            if step.privileged:
                self.privileged_steps_run += 1
            self.completed.append(step.name)

    def privileged_step_count(self) -> int:
        return sum(1 for s in self.steps if s.privileged)
