"""Memory-image initialization (the paper's proposal, experiment E10).

"The idea is to produce on a system tape a bit pattern which, when
loaded into memory, manifests a fully initialized system, rather than
letting the system bootstrap itself in a complex way each time it is
loaded ...  One pattern of operation may be much simpler to certify
than the other."

:class:`ImageBuilder` runs the very same initialization steps as the
bootstrap — but in a *user environment of a previous system* (here: an
ordinary Python context against a scratch services instance), then
captures the result as a :class:`SystemImage`.  Booting the real system
is then two privileged steps: load the image, verify its seal.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.fs.acl import Acl
from repro.fs.directory import Branch, Directory
from repro.init.bootstrap import InitStep, standard_steps
from repro.security.mac import SecurityLabel
from repro.security.principal import KERNEL_PRINCIPAL


@dataclass
class ImageDirEntry:
    """One directory captured into the image."""

    path: list[str]          #: name components from the root
    label: str
    acl: list[tuple[str, str]]
    quota_pages: int
    segments: list[dict] = field(default_factory=list)


@dataclass
class SystemImage:
    """The distilled 'bit pattern' of an initialized system."""

    directories: list[ImageDirEntry]
    users: list[dict]
    seal: str = ""

    def compute_seal(self) -> str:
        """A content hash standing in for the image's checksum — the
        thing the loading kernel verifies instead of re-deriving the
        whole structure."""
        payload = json.dumps(
            {
                "dirs": [
                    {
                        "path": d.path,
                        "label": d.label,
                        "acl": d.acl,
                        "quota": d.quota_pages,
                        "segments": d.segments,
                    }
                    for d in self.directories
                ],
                "users": self.users,
            },
            sort_keys=True,
        )
        return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()

    def sealed(self) -> "SystemImage":
        self.seal = self.compute_seal()
        return self


class ImageBuilder:
    """Runs the initialization steps in an unprivileged scratch
    environment and captures the resulting state."""

    strategy = "image"

    def __init__(self, steps: list[InitStep] | None = None) -> None:
        self.steps = steps if steps is not None else standard_steps()

    def build(self, config: SystemConfig) -> SystemImage:
        """Generate the image (the once-per-release, user-ring work)."""
        from repro.kernel.services import KernelServices

        scratch = KernelServices(_clone_config(config))
        for step in self.steps:
            step.action(scratch)
        return _capture(scratch).sealed()


def _clone_config(config: SystemConfig) -> SystemConfig:
    import copy

    return copy.deepcopy(config)


def _capture(services) -> SystemImage:
    directories: list[ImageDirEntry] = []

    def walk(directory: Directory, path: list[str]) -> None:
        entry = ImageDirEntry(
            path=path,
            label=str(directory.label),
            acl=[(str(e.pattern), e.mode.to_string()) for e in directory.acl.entries()],
            quota_pages=directory.quota_pages,
        )
        for branch in directory.list_branches():
            if branch.is_directory:
                walk(services.tree.directory(branch.uid), path + [branch.name])
            else:
                entry.segments.append(
                    {
                        "name": branch.name,
                        "n_pages": services.ufs.record(branch.uid).n_pages,
                        "label": str(branch.label),
                        "acl": [
                            (str(e.pattern), e.mode.to_string())
                            for e in branch.acl.entries()
                        ],
                    }
                )
        directories.append(entry)

    walk(services.tree.root, [])
    users = [
        {
            "person": r.person,
            "projects": list(r.projects),
            "password_hash": r.password_hash,
            "clearance": str(r.clearance),
        }
        for r in services.users.values()
    ]
    return SystemImage(directories=directories, users=users)


def boot_from_image(services, image: SystemImage) -> int:
    """The whole privileged boot path: verify the seal, manifest the
    image.  Returns the number of privileged steps executed (2)."""
    # Privileged step 1: verify the seal.
    if image.seal != image.compute_seal():
        raise RuntimeError("system image seal mismatch; refusing to boot")
    # Privileged step 2: manifest the image (one mechanical load loop —
    # no decisions, no conditional setup logic).
    _manifest(services, image)
    return 2


def _manifest(services, image: SystemImage) -> None:
    from repro.kernel.services import UserRecord

    for record in image.users:
        services.users[record["person"]] = UserRecord(
            person=record["person"],
            projects=list(record["projects"]),
            password_hash=record["password_hash"],
            clearance=SecurityLabel.parse(record["clearance"]),
        )
    # Directories arrive leaf-first from the capture walk; sort by depth
    # so parents are created before children.
    for entry in sorted(image.directories, key=lambda d: len(d.path)):
        directory = _ensure_dir(services, entry)
        directory.quota_pages = entry.quota_pages
        for seg in entry.segments:
            if seg["name"] in directory:
                continue
            uid = services.ufs.create_segment(
                seg["n_pages"], label=SecurityLabel.parse(seg["label"])
            )
            directory.add(
                Branch(
                    name=seg["name"],
                    uid=uid,
                    is_directory=False,
                    acl=Acl.make(*seg["acl"]) if seg["acl"] else Acl(),
                    label=SecurityLabel.parse(seg["label"]),
                    author=str(KERNEL_PRINCIPAL),
                )
            )


def _ensure_dir(services, entry: ImageDirEntry) -> Directory:
    current = services.tree.root
    for i, name in enumerate(entry.path):
        if name in current:
            current = services.tree.directory(current.get(name).uid)
            continue
        is_leaf = i == len(entry.path) - 1
        label = SecurityLabel.parse(entry.label) if is_leaf else current.label
        acl = Acl.make(*entry.acl) if (is_leaf and entry.acl) else None
        uid = services.ufs.create_segment(1, label=label, is_directory=True)
        directory = services.tree.register_directory(
            uid, current, label, acl=acl, name=name
        )
        current.add(
            Branch(
                name=name, uid=uid, is_directory=True,
                acl=directory.acl,  # one shared ACL per entry
                label=label, author=str(KERNEL_PRINCIPAL),
            )
        )
        current = directory
    return current
