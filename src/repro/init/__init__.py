"""System initialization, both ways (experiment E10).

* :mod:`repro.init.bootstrap` — the old way: "the system bootstrap[s]
  itself in a complex way each time it is loaded", every step running
  with full privilege inside the kernel.
* :mod:`repro.init.image` — the paper's proposal: "produce on a system
  tape a bit pattern which, when loaded into memory, manifests a fully
  initialized system."  The steps run once, in a *user* environment of
  a previous system, and boot reduces to load-and-go.
"""

from repro.init.bootstrap import BootstrapInitializer, InitStep, standard_steps
from repro.init.image import ImageBuilder, SystemImage, boot_from_image

__all__ = [
    "BootstrapInitializer",
    "InitStep",
    "standard_steps",
    "ImageBuilder",
    "SystemImage",
    "boot_from_image",
]
