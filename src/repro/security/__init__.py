"""Security model: principals, the MAC lattice, the reference monitor,
auditing, and the penetration-test flaw catalog."""

from repro.security.mac import BOTTOM, SecurityLabel, dominates
from repro.security.principal import KERNEL_PRINCIPAL, Principal

# NOTE: ReferenceMonitor is imported from repro.security.reference_monitor
# directly; re-exporting it here would create an import cycle with
# repro.fs (the monitor checks fs branches, and fs ACLs name principals).

__all__ = [
    "BOTTOM",
    "SecurityLabel",
    "dominates",
    "KERNEL_PRINCIPAL",
    "Principal",
]
