"""The penetration suite: Linde-style attack programs (experiment E11).

The paper's review activity: "An effort is being made to identify and
correct existing security flaws.  A list of all known Multics security
flaws is maintained."  And its motivation: "in all general-purpose
systems confronted, a wily user can construct a program that can obtain
unauthorized access to information stored within the system."

Each :class:`Attack` is a runnable program exercising one flaw class
from Linde's catalog (AFIPS 1975) against a *live* system: malformed
supervisor arguments, storage residue, unvalidated search paths,
IPC forgery, MAC bypass through output channels, direct privileged-gate
calls.  The harness runs the whole suite against the legacy supervisor
and against the security kernel and tabulates who fell to what.

An attack "succeeds" when it demonstrably violates the security model
— discloses data it was denied, modifies what it could not write, or
damages the supervisor itself — not merely when a gate returns an
error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    AccessViolation,
    KernelDenial,
    ObjectFormatError,
    ReproError,
    SearchFailed,
    UserRingError,
)
from repro.kernel.gates import GateViolationError


@dataclass
class AttackResult:
    attack: str
    flaw_class: str
    succeeded: bool
    detail: str


class Attack:
    """One attack program."""

    name = "attack"
    flaw_class = "unspecified"
    description = ""

    def run(self, system) -> AttackResult:  # pragma: no cover - abstract
        raise NotImplementedError

    def _result(self, succeeded: bool, detail: str) -> AttackResult:
        return AttackResult(self.name, self.flaw_class, succeeded, detail)


class MalformedObjectAttack(Attack):
    """A1 — the paper's own example: feed the linker a maliciously
    malstructured object segment.  Success = the *supervisor*
    malfunctions (an incident in ring 0); a contained user-ring parse
    error is a defence, not a success."""

    name = "malformed_object_segment"
    flaw_class = "unvalidated_supervisor_argument"

    #: A header claiming far more code than the segment holds, driving
    #: a trusting parser off the end of its input.
    GARBAGE = [0o525252, 2, 9_999, 3, 3] + [7] * 20

    def run(self, system) -> AttackResult:
        session = system.login("Wily", "Pentest", "wily-pw")
        segno = session.create_segment("evil_object", n_pages=4)
        session.write_words(segno, self.GARBAGE)
        services = system.services
        incidents_before = services.supervisor_incidents
        try:
            session.load_program(segno)
        except ObjectFormatError:
            return self._result(
                False, "defensive user-ring parse rejected the segment"
            )
        except ReproError:
            pass
        except Exception:
            pass
        incidents = services.supervisor_incidents - incidents_before
        if incidents:
            return self._result(
                True,
                f"supervisor malfunctioned in ring 0 ({incidents} incident)",
            )
        return self._result(False, "no supervisor incident")


class ResidueAttack(Attack):
    """A2 — storage residue: grab freshly allocated pages and scan them
    for another user's deleted secrets."""

    name = "storage_residue"
    flaw_class = "incomplete_parameter_cleanup"
    SECRET = 0o707070707

    def run(self, system) -> AttackResult:
        page = system.config.page_size
        # The victim works with sensitive data, logs out (the address
        # space deactivates: pages written back to disk), returns, and
        # deletes the file — freeing the disk frames that now hold the
        # secrets.
        victim = system.login("Victim", "Payroll", "victim-pw")
        segno = victim.create_segment("salaries", n_pages=2)
        victim.write_words(segno, [self.SECRET] * page)
        victim.logout()
        victim = system.login("Victim", "Payroll", "victim-pw")
        victim.delete("salaries")

        attacker = system.login("Wily", "Pentest", "wily-pw")
        for attempt in range(8):
            probe = attacker.create_segment(f"probe_{attempt}", n_pages=2)
            words = attacker.read_words(probe, 2 * page)
            if self.SECRET in words:
                return self._result(
                    True,
                    f"read victim residue from fresh segment probe_{attempt}",
                )
            attacker.delete(f"probe_{attempt}")
        return self._result(False, "fresh pages arrived zeroed")


class SearchPathLeakAttack(Attack):
    """A3 — aim the in-kernel searcher at a directory the attacker may
    not read and learn whether entries exist there."""

    name = "search_path_leak"
    flaw_class = "information_disclosure_via_unchecked_path"

    def run(self, system) -> AttackResult:
        victim = system.login("Victim", "Payroll", "victim-pw")
        victim.create_dir("private")
        victim.set_acl("private", "Victim.Payroll", "rw")
        victim.set_acl("private", "*.*.*", "n")
        victim.create_segment("private>merger_plan", n_pages=1)

        attacker = system.login("Wily", "Pentest", "wily-pw")
        target = f"{victim.home_path}>private"
        # Direct listing is denied either way (control).
        try:
            attacker.list_dir(target)
            return self._result(True, "listed a directory with a 'n' ACL?!")
        except (KernelDenial, AccessViolation):
            pass
        # The legacy path: unchecked search rules + unchecked search.
        try:
            attacker.call("hcs_$set_search_rules", [target])
            attacker.call("hcs_$search", "merger_plan")
            return self._result(
                True, "kernel search disclosed an entry in a private directory"
            )
        except GateViolationError:
            # The kernel exports no search gates; the user-ring search
            # cannot leak because every step is access-checked.
            from repro.errors import SearchFailed as SF

            attacker.search.rules = []
            try:
                attacker.search.search("merger_plan")
                return self._result(True, "user-ring search leaked?!")
            except SF:
                return self._result(
                    False, "no search gate; user-ring search is access-checked"
                )
        except (KernelDenial, SearchFailed, UserRingError):
            return self._result(False, "search denied or found nothing")


class WakeupForgeryAttack(Attack):
    """A4 (control) — forge a wakeup on another process's channel.
    Both systems guard channels with segment write access."""

    name = "wakeup_forgery"
    flaw_class = "ipc_authorization_bypass"

    def run(self, system) -> AttackResult:
        victim = system.login("Victim", "Payroll", "victim-pw")
        seg = victim.create_segment("mailbox", n_pages=1)
        victim.set_acl("mailbox", "*.*.*", "n")
        victim.set_acl("mailbox", "Victim.Payroll", "rw")
        channel = victim.call("hcs_$ipc_create_channel", seg)

        attacker = system.login("Wily", "Pentest", "wily-pw")
        try:
            attacker.call("hcs_$ipc_wakeup", channel)
            return self._result(True, "sent a wakeup without write access")
        except (AccessViolation, KernelDenial):
            return self._result(False, "wakeup rejected by the segment guard")


class ClassifiedExfiltrationAttack(Attack):
    """A5 — a cleared subject pushes classified data out an external
    channel.  Legacy device gates never heard of the lattice; the
    kernel's single network path enforces the *-property."""

    name = "classified_exfiltration"
    flaw_class = "mac_bypass_via_output_channel"

    def run(self, system) -> AttackResult:
        from repro.security.mac import SecurityLabel

        system.register_user(
            "Cleared", "Intel", "cleared-pw", clearance=SecurityLabel.parse("secret")
        )
        spy = system.login("Cleared", "Intel", "cleared-pw")
        secret_line = "SECRET: troop movements at dawn"
        # Try every externally visible output channel.
        for gate, args in (
            ("ios_$print_line", ("prt1", secret_line)),
            ("ios_$card_punch", ("pun1", secret_line[:80])),
            ("net_$send", ("remote-host", secret_line)),
        ):
            try:
                spy.call(gate, *args)
                return self._result(
                    True, f"classified data left the system via {gate}"
                )
            except GateViolationError:
                continue  # channel does not exist on this supervisor
            except (KernelDenial, AccessViolation):
                continue  # channel checked the lattice
        return self._result(False, "every output channel enforced the lattice")


class PrivilegedGateAttack(Attack):
    """A6 (control) — call an administrative gate from the user ring.
    The hardware gate discipline protects both systems."""

    name = "privileged_gate_call"
    flaw_class = "ring_bracket_bypass"

    def run(self, system) -> AttackResult:
        attacker = system.login("Wily", "Pentest", "wily-pw")
        root = attacker.call("hcs_$get_root")
        try:
            attacker.call("hcs_$set_quota", root, 10**9)
            return self._result(True, "user ring reached a privileged gate")
        except (AccessViolation, KernelDenial):
            return self._result(False, "ring bracket check held")


STANDARD_ATTACKS: list[type[Attack]] = [
    MalformedObjectAttack,
    ResidueAttack,
    SearchPathLeakAttack,
    WakeupForgeryAttack,
    ClassifiedExfiltrationAttack,
    PrivilegedGateAttack,
]


@dataclass
class PenetrationReport:
    system_kind: str
    results: list[AttackResult]

    @property
    def successes(self) -> int:
        return sum(1 for r in self.results if r.succeeded)

    @property
    def attempted(self) -> int:
        return len(self.results)

    def successful_attacks(self) -> list[str]:
        return [r.attack for r in self.results if r.succeeded]


def run_penetration_suite(system, supervisor=None) -> PenetrationReport:
    """Run every standard attack against a booted system.

    ``supervisor`` injects an alternate kernel (e.g. a
    ``SpecializedKernel`` over the same services): it is installed for
    the duration of the suite and the original supervisor and listener
    are restored afterwards.

    An attack aborted by a :class:`ReproError` outside its own
    handling — a specialized kernel may deny the very gates the attack
    program needs to set itself up — is recorded as *not* succeeded:
    denial of use is a defence, never a penetration.
    """
    system.register_user("Wily", "Pentest", "wily-pw")
    system.register_user("Victim", "Payroll", "victim-pw")
    saved_supervisor = system.supervisor
    saved_listener = system.listener
    if supervisor is not None:
        system.install_supervisor(supervisor)
    try:
        results = []
        for attack_cls in STANDARD_ATTACKS:
            attack = attack_cls()
            try:
                results.append(attack.run(system))
            except ReproError as denial:
                results.append(attack._result(
                    False,
                    f"denied before the attack could run: "
                    f"{type(denial).__name__}: {denial}",
                ))
    finally:
        if supervisor is not None:
            system.supervisor = saved_supervisor
            system.listener = saved_listener
            saved_supervisor.gates.claim_metrics()
    kind = system.config.supervisor.value
    if supervisor is not None:
        kind = getattr(supervisor, "system_kind", kind)
    return PenetrationReport(system_kind=kind, results=results)
