"""The MITRE compartment model: a military-classification lattice.

The paper's footnote 2: "The formal model specifies a set of access
constraints that restrict information flow in a hierarchy of
compartments to patterns consistent with the national security
classification scheme."  This is the model that became Bell-LaPadula.

A :class:`SecurityLabel` is a sensitivity level plus a set of
categories (compartments).  ``a dominates b`` iff ``a.level >= b.level``
and ``a.categories ⊇ b.categories``; labels form a lattice under this
partial order.

The two mandatory rules the kernel enforces at its bottom layer
(experiment E12):

* **simple security** (no read up): a subject may read an object only
  if the subject's label dominates the object's;
* **\\*-property** (no write down): a subject may write an object only
  if the object's label dominates the subject's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Conventional level names, lowest to highest.
LEVEL_NAMES = ("unclassified", "confidential", "secret", "top_secret")


@dataclass(frozen=True)
class SecurityLabel:
    """Sensitivity level + category set."""

    level: int = 0
    categories: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not 0 <= self.level < len(LEVEL_NAMES):
            raise ValueError(
                f"level must be 0..{len(LEVEL_NAMES) - 1}, got {self.level}"
            )
        object.__setattr__(self, "categories", frozenset(self.categories))

    @classmethod
    def parse(cls, text: str) -> "SecurityLabel":
        """Parse ``"secret:crypto,nato"`` style labels."""
        level_part, _, cat_part = text.partition(":")
        try:
            level = LEVEL_NAMES.index(level_part.strip().lower())
        except ValueError:
            raise ValueError(f"unknown level {level_part!r}") from None
        cats = frozenset(
            c.strip() for c in cat_part.split(",") if c.strip()
        )
        return cls(level, cats)

    def dominates(self, other: "SecurityLabel") -> bool:
        return (
            self.level >= other.level
            and self.categories >= other.categories
        )

    def lub(self, other: "SecurityLabel") -> "SecurityLabel":
        """Least upper bound (join)."""
        return SecurityLabel(
            max(self.level, other.level),
            self.categories | other.categories,
        )

    def glb(self, other: "SecurityLabel") -> "SecurityLabel":
        """Greatest lower bound (meet)."""
        return SecurityLabel(
            min(self.level, other.level),
            self.categories & other.categories,
        )

    def __str__(self) -> str:
        name = LEVEL_NAMES[self.level]
        if self.categories:
            return f"{name}:{','.join(sorted(self.categories))}"
        return name


#: The lattice bottom: unclassified, no categories.
BOTTOM = SecurityLabel(0, frozenset())


def dominates(a: SecurityLabel, b: SecurityLabel) -> bool:
    """Module-level convenience for ``a.dominates(b)``."""
    return a.dominates(b)


def may_read(subject: SecurityLabel, obj: SecurityLabel) -> bool:
    """Simple security: no read up."""
    return subject.dominates(obj)


def may_write(subject: SecurityLabel, obj: SecurityLabel) -> bool:
    """*-property: no write down."""
    return obj.dominates(subject)


def flow_allowed(source: SecurityLabel, sink: SecurityLabel) -> bool:
    """Information may flow from ``source`` to ``sink`` iff the sink's
    label dominates the source's.  Reads and writes both reduce to this
    single relation, which is what makes the lattice model auditable."""
    return sink.dominates(source)
