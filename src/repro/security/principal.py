"""Access-control principals.

Multics identifies every process by a three-part principal
``Person.Project.tag``.  ACL entries match principals, possibly with
``*`` wildcards in any component.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.security.mac import BOTTOM, SecurityLabel


@dataclass(frozen=True)
class Principal:
    """``Person.Project.tag`` identity, plus a clearance for MAC."""

    person: str
    project: str
    tag: str = "a"
    clearance: SecurityLabel = field(default=BOTTOM, compare=False)

    def __post_init__(self) -> None:
        for part in (self.person, self.project, self.tag):
            if not part or "." in part or "*" in part:
                raise ValueError(
                    f"invalid principal component {part!r} "
                    "(no dots, stars, or empty parts)"
                )

    def __str__(self) -> str:
        return f"{self.person}.{self.project}.{self.tag}"

    @classmethod
    def parse(cls, text: str, clearance: SecurityLabel = BOTTOM) -> "Principal":
        parts = text.split(".")
        if len(parts) == 2:
            parts.append("a")
        if len(parts) != 3:
            raise ValueError(f"principal must be Person.Project[.tag]: {text!r}")
        return cls(parts[0], parts[1], parts[2], clearance=clearance)


#: The identity kernel daemons run under.
KERNEL_PRINCIPAL = Principal("Initializer", "SysDaemon", "z")


@dataclass(frozen=True)
class PrincipalPattern:
    """An ACL matcher: any component may be ``*``."""

    person: str = "*"
    project: str = "*"
    tag: str = "*"

    @classmethod
    def parse(cls, text: str) -> "PrincipalPattern":
        parts = text.split(".")
        if len(parts) == 1:
            parts += ["*", "*"]
        elif len(parts) == 2:
            parts.append("*")
        if len(parts) != 3:
            raise ValueError(f"bad ACL pattern {text!r}")
        return cls(*parts)

    def matches(self, principal: Principal) -> bool:
        return (
            self.person in ("*", principal.person)
            and self.project in ("*", principal.project)
            and self.tag in ("*", principal.tag)
        )

    @property
    def specificity(self) -> int:
        """Exact components beat wildcards; person outranks project
        outranks tag (Multics's most-specific-match rule)."""
        score = 0
        if self.person != "*":
            score += 4
        if self.project != "*":
            score += 2
        if self.tag != "*":
            score += 1
        return score

    def __str__(self) -> str:
        return f"{self.person}.{self.project}.{self.tag}"
