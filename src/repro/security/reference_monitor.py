"""The reference monitor: one checkpoint for every access decision.

Collecting all protection decisions in one auditable object is the
security-kernel idea in miniature: the match between the security model
(ACLs + the MITRE lattice) and the enforcement mechanism is established
*here*, and nowhere else, so a certifier audits this module instead of
the whole supervisor.

Decision rule for a subject (principal with clearance) requesting a
mode on a branch (ACL + label):

1. discretionary: the branch ACL's most-specific entry for the
   principal must include every requested mode bit;
2. mandatory, simple security: R or E requires
   ``subject.clearance dominates branch.label``;
3. mandatory, *-property: W requires
   ``branch.label dominates subject.clearance``.

:meth:`ReferenceMonitor.sdw_mode` computes the *largest safe* mode for
building an SDW, so the hardware continues to enforce the decision on
every subsequent reference without re-entering the kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import AccessDenied
from repro.hw.segmentation import AccessMode
from repro.security.audit import AuditLog
from repro.security.mac import may_read, may_write
from repro.security.principal import Principal

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle with repro.fs
    from repro.fs.directory import Branch


class ReferenceMonitor:
    """Combines ACL and MAC checks; logs every decision."""

    def __init__(self, audit: AuditLog | None = None) -> None:
        # Explicit None check: an *empty* AuditLog is falsy (it has
        # __len__), and ``audit or AuditLog()`` would silently replace
        # a caller's log — losing its attached trail.
        self.audit = audit if audit is not None else AuditLog()
        self.checks = 0
        self.denials = 0

    # -- core decision ------------------------------------------------------

    def permitted_modes(self, principal: Principal, branch: "Branch") -> AccessMode:
        """The largest mode ``principal`` may hold on ``branch``."""
        mode = branch.acl.effective_mode(principal)
        if not may_read(principal.clearance, branch.label):
            mode &= ~(AccessMode.R | AccessMode.E)
        if not may_write(principal.clearance, branch.label):
            mode &= ~AccessMode.W
        return mode

    def sdw_mode(self, principal: Principal, branch: "Branch") -> AccessMode:
        """Alias of :meth:`permitted_modes`, named for its use when the
        kernel constructs an SDW."""
        return self.permitted_modes(principal, branch)

    def check(
        self,
        principal: Principal,
        branch: "Branch",
        requested: AccessMode,
        time: int = 0,
        ring: int | None = None,
    ) -> None:
        """Raise :class:`AccessDenied` unless every requested bit is
        permitted; audit either way (with the deciding mechanism —
        ``acl`` or ``mac`` — as the record's category)."""
        self.checks += 1
        permitted = self.permitted_modes(principal, branch)
        missing = requested & ~permitted
        if missing:
            self.denials += 1
            reason, category = self._explain(principal, branch, requested)
            self.audit.log(
                time,
                str(principal),
                branch.name,
                requested.to_string(),
                "denied",
                reason,
                ring=ring,
                category=category,
            )
            raise AccessDenied(
                f"{principal} denied {requested.to_string()!r} on "
                f"{branch.name!r}: {reason}"
            )
        self.audit.log(
            time, str(principal), branch.name, requested.to_string(),
            "granted", ring=ring, category="acl",
        )

    def _explain(
        self, principal: Principal, branch: "Branch", requested: AccessMode
    ) -> tuple[str, str]:
        """(human reason, audit category) for a denial."""
        acl_mode = branch.acl.effective_mode(principal)
        if requested & ~acl_mode:
            return f"acl grants only {acl_mode.to_string()!r}", "acl"
        if requested & (AccessMode.R | AccessMode.E) and not may_read(
            principal.clearance, branch.label
        ):
            return (
                f"simple security: clearance {principal.clearance} does "
                f"not dominate label {branch.label}"
            ), "mac"
        if requested & AccessMode.W and not may_write(
            principal.clearance, branch.label
        ):
            return (
                f"*-property: label {branch.label} does not dominate "
                f"clearance {principal.clearance}"
            ), "mac"
        return "denied", ""  # pragma: no cover - all causes enumerated

    # -- convenience predicates ----------------------------------------------

    def may(self, principal: Principal, branch: "Branch", requested: AccessMode) -> bool:
        try:
            self.check(principal, branch, requested)
        except AccessDenied:
            return False
        return True
