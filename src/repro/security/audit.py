"""Audit trail of security-relevant kernel decisions.

Every reference-monitor decision and every gate invocation is recorded.
The penetration experiments use the log to demonstrate that no attack
produced an ``allowed`` record it should not have.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AuditRecord:
    time: int
    subject: str        #: principal string
    object: str         #: what was referenced (path, uid, gate name)
    action: str         #: requested access or gate name
    outcome: str        #: "granted" | "denied" | "error"
    detail: str = ""


@dataclass
class AuditLog:
    records: list[AuditRecord] = field(default_factory=list)

    def log(
        self,
        time: int,
        subject: str,
        obj: str,
        action: str,
        outcome: str,
        detail: str = "",
    ) -> None:
        self.records.append(
            AuditRecord(time, subject, obj, action, outcome, detail)
        )

    # -- queries -----------------------------------------------------------

    def granted(self) -> list[AuditRecord]:
        return [r for r in self.records if r.outcome == "granted"]

    def denied(self) -> list[AuditRecord]:
        return [r for r in self.records if r.outcome == "denied"]

    def by_subject(self, subject: str) -> list[AuditRecord]:
        return [r for r in self.records if r.subject == subject]

    def by_object(self, obj: str) -> list[AuditRecord]:
        return [r for r in self.records if r.object == obj]

    def __len__(self) -> int:
        return len(self.records)

    def tail(self, n: int = 10) -> list[AuditRecord]:
        return self.records[-n:]
