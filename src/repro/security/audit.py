"""Audit trail of security-relevant kernel decisions.

Every reference-monitor decision and every gate invocation is recorded.
The penetration experiments use the log to demonstrate that no attack
produced an ``allowed`` record it should not have.

The log itself is unbounded and in-memory (a test and debugging
surface).  When a :class:`repro.obs.audit.AuditTrail` is attached as
``trail``, every record taken here is also forwarded there — the
bounded, exportable operator surface — which is what gives the trail
its completeness guarantee: there is no way to log a denial without it
reaching the trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AuditRecord:
    time: int
    subject: str        #: principal string
    object: str         #: what was referenced (path, uid, gate name)
    action: str         #: requested access or gate name
    outcome: str        #: "granted" | "denied" | "error"
    detail: str = ""
    #: Ring the request was made from (None when not applicable).
    ring: int | None = None
    #: Deciding mechanism: "acl", "mac", "ring", "gate", "args", ...
    category: str = ""


@dataclass
class AuditLog:
    records: list[AuditRecord] = field(default_factory=list)
    #: Optional bounded trail (repro.obs.audit.AuditTrail) every record
    #: is forwarded to.
    trail: object | None = None

    def log(
        self,
        time: int,
        subject: str,
        obj: str,
        action: str,
        outcome: str,
        detail: str = "",
        ring: int | None = None,
        category: str = "",
    ) -> None:
        self.records.append(
            AuditRecord(time, subject, obj, action, outcome, detail,
                        ring, category)
        )
        if self.trail is not None:
            self.trail.record(
                time, subject, obj, action, outcome, detail,
                ring=ring, category=category,
            )

    # -- queries -----------------------------------------------------------

    def granted(self) -> list[AuditRecord]:
        return [r for r in self.records if r.outcome == "granted"]

    def denied(self) -> list[AuditRecord]:
        return [r for r in self.records if r.outcome == "denied"]

    def by_subject(self, subject: str) -> list[AuditRecord]:
        return [r for r in self.records if r.subject == subject]

    def by_object(self, obj: str) -> list[AuditRecord]:
        return [r for r in self.records if r.object == obj]

    def __len__(self) -> int:
        return len(self.records)

    def tail(self, n: int = 10) -> list[AuditRecord]:
        return self.records[-n:]
