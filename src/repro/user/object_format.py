"""The standard object segment format.

An object segment carries code, a *definitions* section (exported entry
points), and a *links* section (symbolic references to other segments,
``"refname$entry"``).  It has a word encoding so that an object segment
really is user-constructed *data*: the linker — wherever it runs —
must parse words a user wrote.

That is exactly the paper's point about the in-kernel linker: "the
linker having to accept user-constructed code segments as input data;
the chances of such a complex 'argument', if maliciously malstructured,
causing the linker to malfunction while executing in the supervisor
were demonstrated to be very high".  Two decoders are provided:

* :func:`decode_object` — defensive: every length and offset is
  validated; malformed input raises :class:`ObjectFormatError`.
* :func:`decode_object_trusting` — period-faithful: it trusts the
  header counts the way the historical supervisor code did.  On
  malicious input it malfunctions (Python exceptions standing in for
  the supervisor taking a fault in ring 0).  Only the *legacy*
  supervisor uses it (experiment E11).

Word layout::

    [MAGIC, VERSION, n_code, n_defs, n_links]
    n_code  x  [opcode, a, b, c]
    n_defs  x  [name_len, name chars ..., entry_offset]
    n_links x  [sym_len, sym chars ...]
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ObjectFormatError
from repro.hw.cpu import Instruction, Op

MAGIC = 0o525252
VERSION = 2

_OPCODES = list(Op)
_OP_INDEX = {op: i for i, op in enumerate(_OPCODES)}


@dataclass
class ObjectSegment:
    """Structured form of an object segment."""

    name: str
    code: list[Instruction] = field(default_factory=list)
    #: Exported entry points: name -> code offset.
    definitions: dict[str, int] = field(default_factory=dict)
    #: Symbolic outward references, each ``"refname$entry"``.
    links: list[str] = field(default_factory=list)

    def validate(self) -> None:
        """Internal consistency: definitions land inside the code,
        link symbols are well-formed."""
        for name, offset in self.definitions.items():
            if not 0 <= offset < max(len(self.code), 1):
                raise ObjectFormatError(
                    f"definition {name!r} points outside the code "
                    f"({offset} of {len(self.code)})"
                )
        for sym in self.links:
            parse_symbol(sym)


def parse_symbol(sym: str) -> tuple[str, str]:
    """Split ``"refname$entry"``; entry defaults to the refname."""
    if not sym or "$" not in sym:
        if not sym:
            raise ObjectFormatError("empty link symbol")
        return sym, sym
    ref, _, entry = sym.partition("$")
    if not ref or not entry:
        raise ObjectFormatError(f"malformed link symbol {sym!r}")
    return ref, entry


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------

def _encode_str(text: str) -> list[int]:
    return [len(text)] + [ord(c) for c in text]


def encode_object(obj: ObjectSegment) -> list[int]:
    """Serialize to words."""
    obj.validate()
    words = [MAGIC, VERSION, len(obj.code), len(obj.definitions), len(obj.links)]
    for inst in obj.code:
        words.extend([_OP_INDEX[inst.op], inst.a, inst.b, inst.c])
    for name, offset in obj.definitions.items():
        words.extend(_encode_str(name))
        words.append(offset)
    for sym in obj.links:
        words.extend(_encode_str(sym))
    return words


# ---------------------------------------------------------------------------
# defensive decoding (the user-ring linker's parser)
# ---------------------------------------------------------------------------

class _Reader:
    def __init__(self, words: list[int]) -> None:
        self.words = words
        self.pos = 0

    def take(self) -> int:
        if self.pos >= len(self.words):
            raise ObjectFormatError("object segment truncated")
        word = self.words[self.pos]
        self.pos += 1
        return word

    def take_str(self, max_len: int = 64) -> str:
        length = self.take()
        if not 0 < length <= max_len:
            raise ObjectFormatError(f"bad string length {length}")
        chars = []
        for _ in range(length):
            code = self.take()
            if not 32 <= code < 127:
                raise ObjectFormatError(f"bad character code {code}")
            chars.append(chr(code))
        return "".join(chars)


def decode_object(words: list[int], name: str = "object") -> ObjectSegment:
    """Parse with full validation; raises :class:`ObjectFormatError`."""
    reader = _Reader(list(words))
    if reader.take() != MAGIC:
        raise ObjectFormatError("bad magic number")
    if reader.take() != VERSION:
        raise ObjectFormatError("unsupported object version")
    n_code = reader.take()
    n_defs = reader.take()
    n_links = reader.take()
    for count, label in ((n_code, "code"), (n_defs, "defs"), (n_links, "links")):
        if count < 0 or count > 100_000:
            raise ObjectFormatError(f"implausible {label} count {count}")
    code = []
    for _ in range(n_code):
        opcode = reader.take()
        if not 0 <= opcode < len(_OPCODES):
            raise ObjectFormatError(f"unknown opcode {opcode}")
        a, b, c = reader.take(), reader.take(), reader.take()
        code.append(Instruction(_OPCODES[opcode], a, b, c))
    definitions: dict[str, int] = {}
    for _ in range(n_defs):
        defname = reader.take_str()
        offset = reader.take()
        if not 0 <= offset < max(n_code, 1):
            raise ObjectFormatError(
                f"definition {defname!r} offset {offset} outside code"
            )
        if defname in definitions:
            raise ObjectFormatError(f"duplicate definition {defname!r}")
        definitions[defname] = offset
    links = []
    for _ in range(n_links):
        sym = reader.take_str()
        parse_symbol(sym)
        links.append(sym)
    obj = ObjectSegment(name=name, code=code, definitions=definitions, links=links)
    obj.definitions = definitions
    return obj


# ---------------------------------------------------------------------------
# trusting decoding (the historical in-kernel parser; legacy only)
# ---------------------------------------------------------------------------

def decode_object_trusting(words: list[int], name: str = "object") -> ObjectSegment:
    """Parse the way the old supervisor did: trust the header.

    No bounds or sanity checks — a malstructured segment drives this
    code off the end of its input or into nonsense opcodes, i.e. the
    supervisor malfunctions while executing in ring 0.  Kept verbatim
    for the legacy supervisor so experiment E11 can demonstrate the
    vulnerability class the linker-removal project eliminated.
    """
    pos = 5
    n_code, n_defs, n_links = words[2], words[3], words[4]
    code = []
    for _ in range(n_code):
        opcode, a, b, c = words[pos], words[pos + 1], words[pos + 2], words[pos + 3]
        code.append(Instruction(_OPCODES[opcode], a, b, c))
        pos += 4
    definitions: dict[str, int] = {}
    for _ in range(n_defs):
        length = words[pos]
        pos += 1
        defname = "".join(chr(words[pos + i]) for i in range(length))
        pos += length
        definitions[defname] = words[pos]
        pos += 1
    links = []
    for _ in range(n_links):
        length = words[pos]
        pos += 1
        links.append("".join(chr(words[pos + i]) for i in range(length)))
        pos += length
    return ObjectSegment(name=name, code=code, definitions=definitions, links=links)
