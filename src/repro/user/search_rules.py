"""Tree-name following and search rules, in the user ring.

The "after" of the other half of the naming removal: "The algorithms
for following a tree name through the file system hierarchy to locate
the named element are thus removed from the supervisor to be
implemented by procedures executing in the user ring.  (The actual file
system hierarchy remains protected inside the supervisor.)"

Every *step* of a walk is a kernel call (``hcs_$initiate`` on one
directory, one name), so the kernel checks access at every level —
the user ring can express any naming policy it likes, but it cannot
see anything the reference monitor would deny.  Compare the legacy
``hcs_$search`` gate, which walks inside the kernel and leaks existence
information (the FLAW exploited by experiment E11).
"""

from __future__ import annotations

from repro.errors import KernelDenial, NoSuchEntry, SearchFailed
from repro.fs.directory import SEP, split_path


class UserSearchRules:
    """Per-process naming environment: working dir + search rules."""

    def __init__(self, supervisor, process) -> None:
        self._sup = supervisor
        self._process = process
        self.root_segno = supervisor.call(process, "hcs_$get_root")
        self.working_dir_segno = self.root_segno
        #: Directory handles searched, in order, for bare names.
        self.rules: list[int] = []

    # -- the tree walk (all in the user ring) -----------------------------------

    def resolve_dir(self, path: str) -> int:
        """Walk a tree name to a directory handle (segno)."""
        current = self.root_segno if path.startswith(SEP) else self.working_dir_segno
        parts = split_path(path) if path.startswith(SEP) else [
            p for p in path.split(SEP) if p
        ]
        for name in parts:
            current = self._sup.call(self._process, "hcs_$initiate", current, name)
        return current

    def resolve(self, path: str) -> tuple[int, str]:
        """Walk to the parent of ``path``; return (dir_segno, entry)."""
        if path.startswith(SEP):
            parts = split_path(path)
            base = self.root_segno
        else:
            parts = [p for p in path.split(SEP) if p]
            base = self.working_dir_segno
        if not parts:
            raise NoSuchEntry("the root has no entry name")
        current = base
        for name in parts[:-1]:
            current = self._sup.call(self._process, "hcs_$initiate", current, name)
        return current, parts[-1]

    def initiate_path(self, path: str) -> int:
        """Initiate the object a tree name denotes."""
        dir_segno, entry = self.resolve(path)
        return self._sup.call(self._process, "hcs_$initiate", dir_segno, entry)

    # -- the working directory ----------------------------------------------------

    def set_working_dir(self, path: str) -> int:
        self.working_dir_segno = self.resolve_dir(path)
        return self.working_dir_segno

    # -- search rules ---------------------------------------------------------------

    def set_rules(self, paths: list[str]) -> None:
        self.rules = [self.resolve_dir(p) for p in paths]

    def search(self, name: str) -> tuple[int, int]:
        """Find ``name`` along working dir + rules.

        Returns ``(dir_segno, segno)``.  Directories the caller may not
        read contribute nothing — the kernel denies the step and the
        search just moves on, so no existence information leaks that
        the ACLs do not already grant.
        """
        for dir_segno in [self.working_dir_segno] + self.rules:
            try:
                segno = self._sup.call(
                    self._process, "hcs_$initiate", dir_segno, name
                )
                return dir_segno, segno
            except KernelDenial:
                continue
        raise SearchFailed(f"{name!r} not found along search rules")
