"""The dynamic linker, in the user ring (the "after" of project E1).

Janson's removal: linking "could be done without resort to a mechanism
common to both protection regions."  This linker runs with only the
caller's own rights:

* it parses object segments with the *defensive* decoder — a malformed
  segment raises :class:`ObjectFormatError` in the user ring, damaging
  nobody ("the chances of such a complex argument ... causing the
  linker to malfunction while executing in the supervisor" become
  irrelevant: there is no supervisor execution);
* it resolves reference names through the user-ring
  :class:`~repro.user.refnames.ReferenceNameManager` and
  :class:`~repro.user.search_rules.UserSearchRules`, so every directory
  it touches is access-checked by the kernel's ``hcs_$initiate``;
* it snaps links in the process's own linkage section, which is
  private data.

The linkage-fault flow: the CPU's ``CALLL`` through an unsnapped link
invokes :meth:`UserRingLinker.snap`, then restarts the call — same
machinery, different ring.
"""

from __future__ import annotations

from repro.errors import LinkageError, ObjectFormatError
from repro.hw.cpu import CodeSegment, Link
from repro.user.object_format import decode_object, parse_symbol
from repro.user.refnames import ReferenceNameManager
from repro.user.search_rules import UserSearchRules


class UserRingLinker:
    """Per-process dynamic linker."""

    def __init__(
        self,
        supervisor,
        process,
        refnames: ReferenceNameManager | None = None,
        search: UserSearchRules | None = None,
    ) -> None:
        self._sup = supervisor
        self._process = process
        self.refnames = refnames or ReferenceNameManager(supervisor, process)
        self.search = search or UserSearchRules(supervisor, process)
        self.snaps = 0
        self.parse_failures = 0

    # -- loading -----------------------------------------------------------------

    def load_object(self, segno: int) -> CodeSegment:
        """Parse the object segment at ``segno`` (defensively) and
        install its code and links in the process."""
        words = self._read_words(segno)
        try:
            obj = decode_object(words, name=f"seg{segno}")
        except ObjectFormatError:
            self.parse_failures += 1
            raise
        code = CodeSegment(
            instructions=obj.code, entry_points=dict(obj.definitions)
        )
        self._process.code_segments[segno] = code
        for sym in obj.links:
            self._process.links.append(Link(symbol=sym))
        return code

    def load_by_name(self, refname: str) -> int:
        """Search for, initiate, and load an object segment."""
        existing = self.refnames.maybe(refname)
        if existing is not None:
            return existing
        _dir_segno, segno = self.search.search(refname)
        self.refnames.bind(refname, segno)
        if segno not in self._process.code_segments:
            self.load_object(segno)
        return segno

    def _read_words(self, segno: int) -> list[int]:
        """Ordinary loads through the process's own SDW."""
        return self._sup.services.read_segment_words(self._process, segno)

    # -- snapping ----------------------------------------------------------------

    def snap(self, index: int) -> tuple[int, int]:
        """Resolve link ``index``; the linkage-fault handler."""
        links = self._process.links
        if not 0 <= index < len(links):
            raise LinkageError(f"no link {index}")
        link = links[index]
        if link.snapped:
            return (link.segno, link.offset)
        ref, entry = parse_symbol(link.symbol)
        target_segno = self.refnames.maybe(ref)
        if target_segno is None:
            target_segno = self.load_by_name(ref)
        code = self._process.code_segments.get(target_segno)
        if code is None:
            code = self.load_object(target_segno)
        offset = code.entry_points.get(entry)
        if offset is None:
            raise LinkageError(
                f"no definition {entry!r} in segment {target_segno}"
            )
        link.snapped = True
        link.segno = target_segno
        link.offset = offset
        self.snaps += 1
        return (target_segno, offset)

    def fault_handler(self):
        """Adapter for :class:`repro.hw.cpu.CPU`'s linkage-fault hook."""

        def on_linkage_fault(ctx, index: int) -> None:
            self.snap(index)

        return on_linkage_fault

    def unsnap_all(self) -> int:
        count = 0
        for link in self._process.links:
            if link.snapped:
                link.snapped = False
                link.segno = -1
                link.offset = -1
                count += 1
        return count
