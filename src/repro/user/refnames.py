"""Reference-name management in the user ring — the private KST half.

The "after" of Bratt's removal project (experiment E3): the association
between reference names and segment numbers is purely private to a
process's own naming environment, so it needs no protection at all.
This manager lives in the user ring, keeps plain per-process
dictionaries, and calls the kernel only for the one thing that *is*
common mechanism: mapping branches into the address space
(``hcs_$initiate`` / ``hcs_$terminate``).

An error here damages only the process that contains it.
"""

from __future__ import annotations

from repro.errors import LinkageError, UserRingError


class ReferenceNameManager:
    """Per-process, user-ring reference names."""

    def __init__(self, supervisor, process) -> None:
        self._sup = supervisor
        self._process = process
        self._names: dict[str, int] = {}

    # -- binding ------------------------------------------------------------

    def bind(self, refname: str, segno: int) -> None:
        if refname in self._names:
            raise UserRingError(f"reference name {refname!r} already bound")
        self._names[refname] = segno

    def unbind(self, refname: str) -> int:
        try:
            return self._names.pop(refname)
        except KeyError:
            raise UserRingError(f"no reference name {refname!r}") from None

    def initiate_and_bind(self, dir_segno: int, entry: str,
                          refname: str | None = None) -> int:
        """One kernel call, then private bookkeeping."""
        segno = self._sup.call(self._process, "hcs_$initiate", dir_segno, entry)
        self.bind(refname or entry, segno)
        return segno

    def terminate(self, refname: str) -> None:
        """Unbind; terminate the segment when its last name drops."""
        segno = self.unbind(refname)
        if segno not in self._names.values():
            self._sup.call(self._process, "hcs_$terminate", segno)

    # -- queries -----------------------------------------------------------

    def segno_of(self, refname: str) -> int:
        try:
            return self._names[refname]
        except KeyError:
            raise LinkageError(f"no reference name {refname!r}") from None

    def maybe(self, refname: str) -> int | None:
        return self._names.get(refname)

    def names_of(self, segno: int) -> list[str]:
        return sorted(n for n, s in self._names.items() if s == segno)

    def all(self) -> list[tuple[str, int]]:
        return sorted(self._names.items())

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, refname: str) -> bool:
        return refname in self._names
