"""The backup daemon — hierarchy dump and reload.

Backup is one of the paper's "internal I/O functions" that remain with
the system, but the *daemon* itself needs no privilege: it runs under
the ``Backup.SysDaemon`` identity and sees exactly what the ACLs and
the lattice grant that identity.  A directory that denies the daemon
read access is simply (and correctly) absent from the dump — backup is
subject to the same reference monitor as everyone else.

The dump format is a list of flat records (a simulated tape).  On the
legacy system the volume can be spooled through the real tape-drive
gates; on the kernel system it is handed to the caller (external I/O
being the network's job there).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelDenial, ReproError


@dataclass
class BackupRecord:
    path: str
    kind: str                      # "directory" | "segment"
    n_pages: int = 0
    words: list[int] = field(default_factory=list)
    acl: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class BackupVolume:
    dumped_at: int
    records: list[BackupRecord] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)


class BackupDaemon:
    """Dumps and reloads subtrees through ordinary gates."""

    def __init__(self, session) -> None:
        self.session = session

    # -- dumping -----------------------------------------------------------

    def dump(self, root_path: str) -> BackupVolume:
        volume = BackupVolume(
            dumped_at=self.session.system.clock.now
        )
        self._dump_dir(root_path, volume)
        return volume

    def _dump_dir(self, path: str, volume: BackupVolume) -> None:
        try:
            entries = self.session.list_dir(path)
        except KernelDenial:
            volume.skipped.append(path)
            return
        volume.records.append(BackupRecord(path=path, kind="directory"))
        for entry in entries:
            child = f"{path}>{entry['name']}"
            if entry["type"] == "directory":
                self._dump_dir(child, volume)
            else:
                self._dump_segment(child, volume)

    def _dump_segment(self, path: str, volume: BackupVolume) -> None:
        session = self.session
        try:
            status = session.status(path)
            segno = session.initiate(path)
            n_pages = status.get("n_pages", 1)
            words = session.read_words(
                segno, n_pages * session.system.config.page_size
            )
            dir_segno, name = session.resolve_parent(path)
            acl = session.call("hcs_$acl_list", dir_segno, name)
        except (KernelDenial, ReproError):
            volume.skipped.append(path)
            return
        volume.records.append(
            BackupRecord(
                path=path, kind="segment", n_pages=n_pages,
                words=words, acl=list(acl),
            )
        )

    # -- reloading -----------------------------------------------------------

    def reload(self, volume: BackupVolume, under: str) -> int:
        """Recreate a dumped subtree below ``under``; returns how many
        records were restored."""
        if not volume.records:
            return 0
        base = volume.records[0].path
        restored = 0
        for record in volume.records:
            suffix = record.path[len(base):]
            target = under + suffix
            try:
                if record.kind == "directory":
                    if suffix:  # the root of the dump maps onto `under`
                        self.session.create_dir(target)
                else:
                    segno = self.session.create_segment(
                        target, n_pages=record.n_pages
                    )
                    self.session.write_words(segno, record.words)
                    for pattern, mode in record.acl:
                        self.session.set_acl(target, pattern, mode)
                restored += 1
            except KernelDenial:
                continue
        return restored

    # -- spooling to tape (legacy systems only) ---------------------------------

    def spool_to_tape(self, volume: BackupVolume, drive: str = "tape1") -> int:
        """Write the volume through the legacy tape gates; returns the
        number of tape records written."""
        session = self.session
        session.call("ios_$tape_attach", drive)
        try:
            written = 0
            for record in volume.records:
                header = [1 if record.kind == "directory" else 2,
                          record.n_pages, len(record.words)]
                session.call("ios_$tape_write", drive, header + record.words)
                written += 1
            return written
        finally:
            session.call("ios_$tape_detach", drive)
