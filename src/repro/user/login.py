"""Login as non-privileged user-ring code (experiment E14).

The paper: the "exploration of a recently-realized equivalence between
the mechanics of entering a protected subsystem and the mechanics of
creating a new process in response to a user's log in.  The goal is to
make a single mechanism do both tasks, with the result that the large
collection of privileged, protected code used to authenticate and log
in users would become non-privileged code."

This listener is that non-privileged code.  It runs as an ordinary
user-ring program under a daemon identity; the *only* privileged step
in the whole flow is the kernel's ``hcs_$proc_create`` gate, which
verifies the password and mints the process.  Everything the legacy
answering service did in ring 0 — the dialogue, the session table, the
greeting, failure accounting — happens out here where a bug cannot
violate anyone else's protection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import AuthenticationError, KernelDenial


@dataclass
class UserSession:
    """One logged-in user, tracked entirely in the user ring."""

    session_id: int
    person: str
    project: str
    pid: int
    source: str
    logged_in_at: int


class LoginListener:
    """The user-ring replacement for the answering service."""

    greeting = "Multics 25.0: security kernel development system"

    def __init__(self, supervisor, listener_process) -> None:
        self._sup = supervisor
        self._process = listener_process
        self._ids = itertools.count(1)
        self.sessions: dict[int, UserSession] = {}
        self.failed_attempts = 0
        self.transcript: list[str] = []

    # -- the dialogue --------------------------------------------------------

    def login(self, person: str, project: str, password: str,
              source: str = "network", quiet: bool = False) -> UserSession:
        """Run the login dialogue; one kernel call does the trust step.

        ``quiet`` suppresses the transcript lines (not the failure
        accounting): bulk drivers (:mod:`repro.workloads`) log in tens
        of thousands of sessions, and the dialogue text is per-terminal
        chatter, not security state.
        """
        if not quiet:
            self.transcript.append(f"login {person} {project} from {source}")
        try:
            pid = self._sup.call(
                self._process,
                "hcs_$proc_create",
                f"{person}.{project}",
                person,
                project,
                password,
            )
        except (AuthenticationError, KernelDenial):
            self.failed_attempts += 1
            if not quiet:
                self.transcript.append(f"login incorrect: {person}")
            raise
        session = UserSession(
            session_id=next(self._ids),
            person=person,
            project=project,
            pid=pid,
            source=source,
            logged_in_at=self._sup.services.sim.clock.now,
        )
        self.sessions[session.session_id] = session
        if not quiet:
            self.transcript.append(self.greeting)
        return session

    def logout(self, session_id: int) -> None:
        session = self.sessions.pop(session_id, None)
        if session is None:
            raise KeyError(f"no session {session_id}")
        self._sup.call(self._process, "hcs_$proc_destroy", session.pid)
        self.transcript.append(f"logout {session.person}.{session.project}")

    def whoami(self, session_id: int) -> str:
        session = self.sessions[session_id]
        return f"{session.person}.{session.project}"

    @property
    def active_count(self) -> int:
        return len(self.sessions)
