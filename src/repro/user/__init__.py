"""Non-kernel software that executes in the user rings.

These modules are the *destinations* of the paper's removal projects:

* :mod:`repro.user.linker` — dynamic linking (removed from the
  supervisor, E1);
* :mod:`repro.user.refnames` — reference-name management, the private
  half of the split KST (E3);
* :mod:`repro.user.search_rules` — tree-name following and search
  rules (E3);
* :mod:`repro.user.login` — user authentication via the unified
  process-creation / subsystem-entry mechanism (E14);
* :mod:`repro.user.shell` — a small command processor for the examples.

Nothing here is trusted: an error in these modules damages only the
computation that contains it.
"""

from repro.user.object_format import ObjectSegment, decode_object, encode_object

__all__ = ["ObjectSegment", "decode_object", "encode_object"]
