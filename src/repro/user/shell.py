"""A small command processor, entirely user-ring software.

The shell belongs to the paper's first non-kernel category: a
system-provided program executing as part of the user's computation.
It holds no special privilege — every effect it has goes through the
same gates any user program would call — and "a user unsatisfied with
[its] trustworthiness may choose not to use [it], substituting his own
programs."

Commands::

    cwd                      print the working directory
    cd PATH                  change the working directory
    ls [PATH]                list a directory
    mkdir PATH               create a directory
    create PATH [PAGES]      create a segment
    delete PATH              delete an entry
    setacl PATH PATTERN MODE change an ACL
    status PATH              show branch status
    echo TEXT...             print text
    run PATH [ENTRY [ARGS]]  execute an installed object segment
    who                      print the session principal
"""

from __future__ import annotations

from repro.errors import ReproError


class Shell:
    """Interprets command lines against a :class:`repro.system.Session`."""

    def __init__(self, session) -> None:
        self.session = session
        self.output: list[str] = []
        self.status_code = 0

    def emit(self, line: str) -> None:
        self.output.append(line)

    def execute(self, line: str) -> int:
        """Run one command; returns 0 on success."""
        self.status_code = 0
        words = line.split()
        if not words or words[0].startswith("#"):
            return 0
        command, args = words[0], words[1:]
        handler = getattr(self, f"cmd_{command}", None)
        if handler is None:
            self.emit(f"shell: unknown command {command!r}")
            self.status_code = 1
            return 1
        try:
            handler(args)
        except ReproError as error:
            self.emit(f"{command}: {error}")
            self.status_code = 1
        return self.status_code

    def run_script(self, text: str) -> int:
        """Run commands line by line; stops at the first failure."""
        for line in text.splitlines():
            if self.execute(line.strip()):
                return self.status_code
        return 0

    # -- commands -------------------------------------------------------------

    def cmd_cwd(self, args: list[str]) -> None:
        self.emit(self.session.working_dir())

    def cmd_cd(self, args: list[str]) -> None:
        self._need(args, 1, "cd PATH")
        self.session.set_working_dir(args[0])

    def cmd_ls(self, args: list[str]) -> None:
        path = args[0] if args else ""
        for entry in self.session.list_dir(path):
            self.emit(f"{entry['type'][0]} {entry['name']}")

    def cmd_mkdir(self, args: list[str]) -> None:
        self._need(args, 1, "mkdir PATH")
        self.session.create_dir(args[0])

    def cmd_create(self, args: list[str]) -> None:
        if not args:
            raise_usage("create PATH [PAGES]")
        pages = int(args[1]) if len(args) > 1 else 1
        self.session.create_segment(args[0], n_pages=pages)

    def cmd_delete(self, args: list[str]) -> None:
        self._need(args, 1, "delete PATH")
        self.session.delete(args[0])

    def cmd_setacl(self, args: list[str]) -> None:
        self._need(args, 3, "setacl PATH PATTERN MODE")
        self.session.set_acl(args[0], args[1], args[2])

    def cmd_status(self, args: list[str]) -> None:
        self._need(args, 1, "status PATH")
        for key, value in sorted(self.session.status(args[0]).items()):
            self.emit(f"{key}: {value}")

    def cmd_echo(self, args: list[str]) -> None:
        self.emit(" ".join(args))

    def cmd_who(self, args: list[str]) -> None:
        self.emit(str(self.session.principal))

    def cmd_run(self, args: list[str]) -> None:
        if not args:
            raise_usage("run PATH [ENTRY [ARGS...]]")
        segno = self.session.initiate(args[0])
        entry = args[1] if len(args) > 1 else "main"
        call_args = [int(a) for a in args[2:]]
        result = self.session.run_program(segno, entry, call_args)
        self.emit(str(result))

    @staticmethod
    def _need(args: list[str], count: int, usage: str) -> None:
        if len(args) != count:
            raise_usage(usage)


def raise_usage(usage: str) -> None:
    from repro.errors import UserRingError

    raise UserRingError(f"usage: {usage}")
