"""Legacy in-kernel naming: tree walking, reference names, search rules.

Everything in this module runs *inside the supervisor* in the legacy
system and is exactly what Bratt's removal project evicted: tree-name
resolution, per-process reference names, working directories, and
search rules all become user-ring code in the new system
(:mod:`repro.user.refnames`, :mod:`repro.user.search_rules`), leaving
only the minimal segno-based KST interface in the kernel.

The gate census here (23 entries) plus the linker's (10) is what makes
the legacy supervisor's user-available perimeter roughly one third
larger than the minimized kernel's (experiments E1-E3).

One period-authentic flaw is preserved for the penetration suite
(E11), marked ``FLAW``: the search gate reveals whether an entry
exists in directories the caller has no right to read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvalidArgument, NoSuchEntry, SearchFailed
from repro.fs.directory import SEP, split_path
from repro.hw.segmentation import AccessMode
from repro.kernel.fs_gates import _check_dir, _principal, initiate_branch
from repro.kernel.gates import Gate
from repro.security.mac import BOTTOM

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.services import KernelServices


# ---------------------------------------------------------------------------
# in-kernel tree walking
# ---------------------------------------------------------------------------

def _walk_to_dir(services, process, path, check=True):
    """Follow a tree name to a directory, checking read access on every
    directory traversed (as the legacy supervisor did)."""
    parts = split_path(path)
    current = services.tree.root
    if check:
        _check_dir(services, process, current, AccessMode.R)
    for name in parts:
        branch = current.get(name)
        if not branch.is_directory:
            raise NoSuchEntry(f"{name!r} in {path!r} is not a directory")
        current = services.tree.directory(branch.uid)
        if check:
            _check_dir(services, process, current, AccessMode.R)
    return current


def _walk_to_branch(services, process, path, check=True):
    parts = split_path(path)
    if not parts:
        raise InvalidArgument("the root has no branch")
    parent_path = SEP + SEP.join(parts[:-1])
    directory = _walk_to_dir(services, process, parent_path, check=check)
    return directory, directory.get(parts[-1])


def _expand(services, process, path):
    """Resolve a relative path against the in-kernel working directory."""
    if path.startswith(SEP):
        return path
    state = services.pstate(process)
    if state.working_dir_uid is None:
        raise InvalidArgument("no working directory set")
    wdir = services.tree.directory(state.working_dir_uid)
    base = services.tree.path_of(wdir)
    if base == SEP:
        return SEP + path
    return f"{base}{SEP}{path}"


# ---------------------------------------------------------------------------
# initiation by path / reference name management
# ---------------------------------------------------------------------------

def h_initiate_path(services, process, path):
    full = _expand(services, process, path)
    if not split_path(full):
        # The root itself: initiate as a directory handle.
        _check_dir(services, process, services.tree.root, AccessMode.R)
        segno, _ = services.pstate(process).kst.make_known(
            services.tree.root.uid, is_directory=True
        )
        return segno
    directory, branch = _walk_to_branch(services, process, full)
    segno = initiate_branch(services, process, branch)
    # Maintain the unsplit KST: pathname association + initiate count.
    services.pstate(process).legacy_kst.initiate(
        branch.uid, pathname=full, is_directory=branch.is_directory,
        segno=segno,
    )
    return segno


def h_initiate_refname(services, process, path, refname):
    full = _expand(services, process, path)
    directory, branch = _walk_to_branch(services, process, full)
    segno = initiate_branch(services, process, branch)
    services.pstate(process).legacy_kst.initiate(
        branch.uid, pathname=full, refname=refname,
        is_directory=branch.is_directory, segno=segno,
    )
    return segno


def h_add_refname(services, process, segno, refname):
    state = services.pstate(process)
    state.kst.uid_of(segno)  # must be known to the mapping half too
    if not state.legacy_kst.is_known(state.kst.uid_of(segno)):
        state.legacy_kst.initiate(state.kst.uid_of(segno), segno=segno)
    state.legacy_kst.bind_refname(segno, refname)
    return refname


def h_delete_refname(services, process, refname):
    return services.pstate(process).legacy_kst.unbind_refname(refname)


def h_terminate_refname(services, process, refname):
    """Drop a refname; terminate the segment when no names remain."""
    state = services.pstate(process)
    segno = state.legacy_kst.unbind_refname(refname)
    entry = state.legacy_kst.entry(segno)
    if not entry.refnames:
        uid = state.legacy_kst.terminate(segno, force=True)
        if uid is not None and state.kst.is_known(uid):
            state.kst.terminate(segno)
            if segno in process.dseg:
                process.dseg.remove(segno)
    return segno


def h_terminate_path(services, process, path):
    full = _expand(services, process, path)
    directory, branch = _walk_to_branch(services, process, full)
    state = services.pstate(process)
    if not state.kst.is_known(branch.uid):
        raise NoSuchEntry(f"{path!r} is not initiated")
    segno = state.kst.segno_of(branch.uid)
    if state.legacy_kst.is_known(branch.uid):
        removed = state.legacy_kst.terminate(segno)
        if removed is None:
            return segno  # initiate count still positive
    state.kst.terminate(segno)
    if segno in process.dseg:
        process.dseg.remove(segno)
    return segno


def h_refname_to_segno(services, process, refname):
    return services.pstate(process).legacy_kst.refname_entry(refname).segno


def h_segno_to_refnames(services, process, segno):
    return sorted(services.pstate(process).legacy_kst.refnames_of(segno))


def h_list_refnames(services, process):
    return services.pstate(process).legacy_kst.all_refnames()


def h_get_pathname(services, process, segno):
    """The tree name of a known segment: served from the unsplit KST's
    pathname association when present, else by walking the whole
    hierarchy — precisely the kind of work that does not need
    protection."""
    state = services.pstate(process)
    try:
        cached = state.legacy_kst.pathname_of(segno)
        if cached:
            return cached
    except NoSuchEntry:
        pass
    uid = state.kst.uid_of(segno)
    for directory in services.tree.directories():
        for branch in directory.list_branches():
            if branch.uid == uid:
                base = services.tree.path_of(directory)
                return (base if base != SEP else "") + SEP + branch.name
    raise NoSuchEntry(f"segment {segno} has no branch")


def h_expand_pathname(services, process, path):
    return _expand(services, process, path)


# ---------------------------------------------------------------------------
# working directory and search rules
# ---------------------------------------------------------------------------

def h_set_wdir(services, process, path):
    full = _expand(services, process, path)
    directory = _walk_to_dir(services, process, full)
    services.pstate(process).working_dir_uid = directory.uid
    return full


def h_get_wdir(services, process):
    state = services.pstate(process)
    if state.working_dir_uid is None:
        return SEP
    return services.tree.path_of(services.tree.directory(state.working_dir_uid))


def h_set_search_rules(services, process, paths):
    """Install search rules.

    FLAW (period-authentic, part of experiment E11's attack A3): the
    rules are resolved *without* access checks — they are "just paths"
    — so a caller can aim the searcher at directories it has no right
    to read.  Combined with the unchecked ``hcs_$search`` below, this
    leaks entry existence from private directories.
    """
    if not isinstance(paths, list) or not all(isinstance(p, str) for p in paths):
        raise InvalidArgument("search rules are a list of directory paths")
    uids = []
    for path in paths:
        uids.append(_walk_to_dir(services, process, path, check=False).uid)
    services.pstate(process).search_rules = uids
    return len(uids)


def h_get_search_rules(services, process):
    state = services.pstate(process)
    return [
        services.tree.path_of(services.tree.directory(uid))
        for uid in state.search_rules
        if services.tree.is_directory_uid(uid)
    ]


def h_reset_search_rules(services, process):
    services.pstate(process).search_rules = []
    return 0


def h_search(services, process, name):
    """Find ``name`` along the search rules; returns its full path.

    FLAW (period-authentic, exploited by experiment E11): the search
    does not check the caller's read access on the directories it
    searches, so it reveals the existence of entries in directories the
    caller cannot list.  The user-ring replacement cannot have this
    flaw: it must initiate each directory, which the kernel checks.
    """
    state = services.pstate(process)
    rules = list(state.search_rules)
    if state.working_dir_uid is not None:
        rules.insert(0, state.working_dir_uid)
    for uid in rules:
        if not services.tree.is_directory_uid(uid):
            continue
        directory = services.tree.directory(uid)
        branch = directory.maybe(name)   # FLAW: no _check_dir here
        if branch is not None:
            base = services.tree.path_of(directory)
            return (base if base != SEP else "") + SEP + branch.name
    raise SearchFailed(f"{name!r} not found along search rules")


# ---------------------------------------------------------------------------
# whole-path conveniences (each a full in-kernel walk)
# ---------------------------------------------------------------------------

def h_find_entry(services, process, path):
    directory, branch = _walk_to_branch(
        services, process, _expand(services, process, path)
    )
    return {
        "name": branch.name,
        "uid": branch.uid,
        "type": "directory" if branch.is_directory else "segment",
        "label": str(branch.label),
    }


def h_chname(services, process, path, old, new):
    directory = _walk_to_dir(services, process, _expand(services, process, path))
    _check_dir(services, process, directory, AccessMode.W)
    directory.rename(old, new)
    return new


def h_create_segment_path(services, process, path, n_pages):
    from repro.kernel.fs_gates import h_create_segment

    full = _expand(services, process, path)
    parts = split_path(full)
    parent = _walk_to_dir(services, process, SEP + SEP.join(parts[:-1]))
    state = services.pstate(process)
    dir_segno, _ = state.kst.make_known(parent.uid, is_directory=True)
    return h_create_segment(
        services, process, dir_segno, parts[-1], n_pages, BOTTOM
    )


def h_create_dir_path(services, process, path):
    from repro.kernel.fs_gates import h_create_directory

    full = _expand(services, process, path)
    parts = split_path(full)
    parent = _walk_to_dir(services, process, SEP + SEP.join(parts[:-1]))
    state = services.pstate(process)
    dir_segno, _ = state.kst.make_known(parent.uid, is_directory=True)
    return h_create_directory(services, process, dir_segno, parts[-1], BOTTOM)


def h_delete_path(services, process, path):
    from repro.kernel.fs_gates import h_delete_entry

    full = _expand(services, process, path)
    parts = split_path(full)
    parent = _walk_to_dir(services, process, SEP + SEP.join(parts[:-1]))
    state = services.pstate(process)
    dir_segno, _ = state.kst.make_known(parent.uid, is_directory=True)
    return h_delete_entry(services, process, dir_segno, parts[-1])


def h_list_path(services, process, path):
    from repro.kernel.fs_gates import h_list_directory

    directory = _walk_to_dir(services, process, _expand(services, process, path))
    state = services.pstate(process)
    dir_segno, _ = state.kst.make_known(directory.uid, is_directory=True)
    return h_list_directory(services, process, dir_segno)


def naming_gates() -> list[Gate]:
    """The 23 naming gates the legacy supervisor exports and the
    minimized kernel removes."""
    tag = "naming"
    return [
        Gate("hcs_$initiate_path", "naming", h_initiate_path, ("str",),
             removed_by=tag, doc="initiate by full tree name"),
        Gate("hcs_$initiate_refname", "naming", h_initiate_refname,
             ("str", "name"), removed_by=tag,
             doc="initiate and bind a reference name"),
        Gate("hcs_$add_refname", "naming", h_add_refname, ("segno", "name"),
             removed_by=tag, doc="bind another reference name"),
        Gate("hcs_$delete_refname", "naming", h_delete_refname, ("name",),
             removed_by=tag, doc="unbind a reference name"),
        Gate("hcs_$terminate_refname", "naming", h_terminate_refname,
             ("name",), removed_by=tag,
             doc="unbind; terminate when last name drops"),
        Gate("hcs_$terminate_path", "naming", h_terminate_path, ("str",),
             removed_by=tag, doc="terminate by tree name"),
        Gate("hcs_$refname_to_segno", "naming", h_refname_to_segno,
             ("name",), removed_by=tag, doc="reference name to segno"),
        Gate("hcs_$segno_to_refnames", "naming", h_segno_to_refnames,
             ("segno",), removed_by=tag, doc="segno to reference names"),
        Gate("hcs_$list_refnames", "naming", h_list_refnames, (),
             removed_by=tag, doc="enumerate reference names"),
        Gate("hcs_$get_pathname", "naming", h_get_pathname, ("segno",),
             removed_by=tag, doc="segment number to tree name"),
        Gate("hcs_$expand_pathname", "naming", h_expand_pathname, ("str",),
             removed_by=tag, doc="resolve against the working directory"),
        Gate("hcs_$set_wdir", "naming", h_set_wdir, ("str",),
             removed_by=tag, doc="set the working directory"),
        Gate("hcs_$get_wdir", "naming", h_get_wdir, (),
             removed_by=tag, doc="read the working directory"),
        Gate("hcs_$set_search_rules", "naming", h_set_search_rules,
             ("any",), removed_by=tag, doc="install search rules"),
        Gate("hcs_$get_search_rules", "naming", h_get_search_rules, (),
             removed_by=tag, doc="read search rules"),
        Gate("hcs_$reset_search_rules", "naming", h_reset_search_rules, (),
             removed_by=tag, doc="clear search rules"),
        Gate("hcs_$search", "naming", h_search, ("name",),
             removed_by=tag, doc="find a name along the search rules"),
        Gate("hcs_$find_entry", "naming", h_find_entry, ("str",),
             removed_by=tag, doc="status by tree name"),
        Gate("hcs_$chname", "naming", h_chname, ("str", "name", "name"),
             removed_by=tag, doc="rename by tree name"),
        Gate("hcs_$create_segment_path", "naming", h_create_segment_path,
             ("str", "uint"), removed_by=tag,
             doc="create a segment by tree name"),
        Gate("hcs_$create_dir_path", "naming", h_create_dir_path, ("str",),
             removed_by=tag, doc="create a directory by tree name"),
        Gate("hcs_$delete_path", "naming", h_delete_path, ("str",),
             removed_by=tag, doc="delete by tree name"),
        Gate("hcs_$list_path", "naming", h_list_path, ("str",),
             removed_by=tag, doc="list a directory by tree name"),
    ]
