"""Kernel lock discipline for the SMP simulation.

The Honeywell 6180 ran Multics symmetrically on several processors, and
the kernel serialized its shared tables with a handful of global locks:
the *traffic-control lock* around the ready queues and dispatch, the
*page-table lock* (``ptl``) around page control's resident census and
frame moves, and per-AST locks around segment activation.  This module
models those locks on the **simulated** timeline.

Two facts shape the model:

1. The simulation itself is single-threaded Python — a lock here never
   protects Python state from a data race.  What it models is the
   *simulated-time cost* of serialization: when two simulated CPUs'
   critical sections overlap on the simulated clock, the later arrival
   waits out the remainder of the earlier one's hold window.

2. On a uniprocessor (and on the discrete-event path, where the engine
   runs events serially), critical sections can never overlap, so an
   acquisition is free.  That matches the hardware: a lock only costs
   anything when another processor holds it.

Protocol: ``wait = lock.acquire(now, owner)`` obtains the lock at
simulated time ``now + wait``; the caller then charges ``wait`` to its
own timeline and, once it knows how long the critical section ran,
extends the hold window with ``lock.hold(cycles)``.  Re-acquisition by
the *same* owner never waits (one processor cannot race itself — its
operations are sequential by construction), and ``owner=None`` marks
the globally-serialized discrete-event context, which neither waits nor
blocks anyone.  Every acquisition is counted, so the lock-discipline
audit (which paths serialize where) is visible in the ``lock.*``
metrics even when contention is impossible.
"""

from __future__ import annotations


class KernelLock:
    """One global kernel lock on the simulated timeline."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: Simulated time until which the current hold window runs.
        self._held_until = 0
        self._owner: object | None = None
        # Accounting (registered under ``lock.<name>.*`` by LockTable).
        self.acquisitions = 0
        self.contentions = 0
        self.contention_cycles = 0

    def acquire(self, now: int = 0, owner: object | None = None) -> int:
        """Obtain the lock at simulated time ``now``.

        Returns the cycles the caller waits before holding it: zero
        unless a *different* owner's hold window covers ``now``.  The
        caller charges the wait to its own timeline (stall, Charge, or
        cost return — whatever its layer uses).
        """
        wait = 0
        if (
            owner is not None
            and self._owner is not None
            and owner is not self._owner
            and now < self._held_until
        ):
            wait = self._held_until - now
            self.contentions += 1
            self.contention_cycles += wait
        self.acquisitions += 1
        self._owner = owner
        self._held_until = max(self._held_until, now + wait)
        return wait

    def hold(self, cycles: int) -> None:
        """Extend the current critical section by ``cycles``.

        Called by the holder once it knows how long the serialized work
        took (e.g. page control after computing a fault's service cost).
        """
        if cycles < 0:
            raise ValueError("cannot hold a lock for negative cycles")
        self._held_until += cycles

    @property
    def held_until(self) -> int:
        """Simulated time the current hold window ends (for tests)."""
        return self._held_until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<KernelLock {self.name} until={self._held_until} "
            f"acq={self.acquisitions} cont={self.contentions}>"
        )


class LockTable:
    """The kernel's named locks, with ``lock.*`` metrics registration.

    The set of locks is fixed (it is part of the kernel's certifiable
    surface, like the gate table): ``tc`` — traffic control (ready
    queues, dispatch); ``ptl`` — the global page-table lock (resident
    census, frame moves, fault service); ``ast`` — segment control
    (activation / deactivation of page tables).
    """

    NAMES = ("tc", "ptl", "ast")

    def __init__(self, metrics=None) -> None:
        self._locks = {name: KernelLock(name) for name in self.NAMES}
        if metrics is not None:
            for name, lock in self._locks.items():
                metrics.counter(
                    f"lock.{name}.acquisitions",
                    f"{name} lock acquisitions",
                    source=lambda lk=lock: lk.acquisitions,
                )
                metrics.counter(
                    f"lock.{name}.contentions",
                    f"{name} lock acquisitions that waited",
                    source=lambda lk=lock: lk.contentions,
                )
                metrics.counter(
                    f"lock.{name}.contention_cycles",
                    f"simulated cycles spent waiting for the {name} lock",
                    source=lambda lk=lock: lk.contention_cycles,
                )

    def __getitem__(self, name: str) -> KernelLock:
        return self._locks[name]

    @property
    def tc(self) -> KernelLock:
        return self._locks["tc"]

    @property
    def ptl(self) -> KernelLock:
        return self._locks["ptl"]

    @property
    def ast(self) -> KernelLock:
        return self._locks["ast"]

    def total_contention_cycles(self) -> int:
        return sum(lk.contention_cycles for lk in self._locks.values())
