"""The legacy supervisor — the "before" system.

Everything the security kernel exports, *plus* the gate families the
removal projects later evicted: the dynamic linker (10 gates), naming /
reference names / search rules (23 gates), the per-device I/O
mechanisms (11 gates), and the in-kernel answering service (6 gates).

It is a complete, working supervisor: the before/after benches run the
same workloads against both systems, so every census difference is a
difference between two running programs.
"""

from __future__ import annotations

from repro.config import SupervisorKind, SystemConfig
from repro.kernel.fs_gates import fs_gates
from repro.kernel.io_gates import legacy_device_gates, network_gates
from repro.kernel.kernel import Supervisor
from repro.kernel.linker_kernel import linker_gates
from repro.kernel.login_kernel import login_gates
from repro.kernel.naming_kernel import naming_gates
from repro.kernel.proc_gates import proc_gates
from repro.kernel.services import KernelServices


class LegacySupervisor(Supervisor):
    """The full-perimeter supervisor the paper starts from."""

    kind = SupervisorKind.LEGACY

    def _register_gates(self) -> None:
        self.gates.register_all(fs_gates())
        self.gates.register_all(proc_gates())
        self.gates.register_all(network_gates())
        self.gates.register_all(legacy_device_gates())
        self.gates.register_all(linker_gates())
        self.gates.register_all(naming_gates())
        self.gates.register_all(login_gates())

    def protected_modules(self) -> list:
        import repro.io.buffers
        import repro.io.devices
        import repro.kernel.kst_legacy
        import repro.kernel.linker_kernel
        import repro.kernel.login_kernel
        import repro.kernel.naming_kernel
        import repro.user.object_format

        return super().protected_modules() + [
            repro.kernel.kst_legacy,
            repro.kernel.linker_kernel,
            repro.kernel.naming_kernel,
            repro.kernel.login_kernel,
            repro.io.devices,
            repro.io.buffers,
            # The object-format parser executes in ring 0 here (the
            # linker's input); in the new system it is user-ring code.
            repro.user.object_format,
        ]

    def address_space_components(self) -> list:
        """Legacy address-space management: the minimal KST machinery
        *plus* the unsplit KST and the whole in-kernel naming apparatus
        (E3's 'before')."""
        import repro.kernel.kst_legacy
        import repro.kernel.naming_kernel

        return super().address_space_components() + [
            repro.kernel.kst_legacy,
            repro.kernel.naming_kernel,
        ]


def build_legacy(config: SystemConfig | None = None) -> LegacySupervisor:
    config = config or SystemConfig()
    config.supervisor = SupervisorKind.LEGACY
    return LegacySupervisor(KernelServices(config))
