"""File-system and address-space gates (kept by both supervisors).

These are the gates the minimized kernel retains: per-directory
operations addressed by *segment number* plus the minimal address-space
management.  Note what is **not** here: no tree-name walking, no
reference names, no search rules — those are the naming gates the
legacy supervisor adds (:mod:`repro.kernel.naming_kernel`) and the
kernel deliberately lacks (experiments E2/E3).

Every handler takes ``(services, process, *args)`` — arguments already
type-validated by the gate table — performs its own reference-monitor
checks, and acts through the shared services.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import NUM_RINGS
from repro.errors import AccessDenied, InvalidArgument, NoSuchEntry, QuotaExceeded
from repro.fs.acl import Acl
from repro.fs.directory import Branch, Directory
from repro.hw.rings import RingBrackets
from repro.hw.segmentation import SDW, AccessMode
from repro.kernel.gates import Gate, PRIVILEGED_GATE
from repro.security.mac import BOTTOM, SecurityLabel

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.services import KernelServices
    from repro.proc.process import Process


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _principal(process: "Process"):
    if process.principal is None:
        raise AccessDenied(f"process {process.name} has no principal")
    return process.principal


def _check_dir(services: "KernelServices", process: "Process",
               directory: Directory, mode: AccessMode) -> None:
    """Directory operations go through the same reference monitor."""
    services.monitor.check(
        _principal(process), directory, mode, time=services.sim.clock.now,
        ring=process.ring,
    )


def _owner_acl(process: "Process") -> Acl:
    p = _principal(process)
    return Acl.make((f"{p.person}.{p.project}.*", "rew"))


def _used_pages(services: "KernelServices", directory: Directory) -> int:
    """Segment pages charged against ``directory``'s quota.

    Memoized on the directory (a segment's page count never changes
    after creation): the full branch scan runs only after a structural
    mutation invalidated the memo, so bulk creation is O(1) per segment
    instead of O(entries)."""
    cached = directory.used_pages_cache
    if cached is not None:
        return cached
    total = 0
    for branch in directory.list_branches():
        if not branch.is_directory and services.ufs.exists(branch.uid):
            total += services.ufs.record(branch.uid).n_pages
    directory.used_pages_cache = total
    return total


# ---------------------------------------------------------------------------
# file-system handlers
# ---------------------------------------------------------------------------

def h_create_segment(services, process, dir_segno, name, n_pages, label):
    """Create a segment branch in the directory held as ``dir_segno``."""
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.W)
    if not label.dominates(directory.label):
        raise AccessDenied(
            f"segment label {label} must dominate directory label "
            f"{directory.label}"
        )
    used = _used_pages(services, directory)
    if used + n_pages > directory.quota_pages:
        raise QuotaExceeded(
            f"directory {directory.name} quota of "
            f"{directory.quota_pages} pages exceeded"
        )
    uid = services.ufs.create_segment(
        n_pages, label=label, created_at=services.sim.clock.now
    )
    branch = Branch(
        name=name,
        uid=uid,
        is_directory=False,
        acl=_owner_acl(process),
        label=label,
        author=str(_principal(process)),
    )
    try:
        directory.add(branch)
    except Exception:
        services.ufs.delete_segment(uid)
        raise
    # add() invalidated the memo; re-seed it with what we just charged.
    directory.used_pages_cache = used + n_pages
    return uid


def h_create_directory(services, process, dir_segno, name, label):
    parent = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, parent, AccessMode.W)
    uid = services.ufs.create_segment(
        1, label=label, is_directory=True, created_at=services.sim.clock.now
    )
    # One ACL per entry: the Directory object and its branch share it,
    # so hcs_$acl_add on the branch governs traversal too.
    acl = _owner_acl(process)
    try:
        services.tree.register_directory(
            uid, parent, label, acl=acl, name=name
        )
        parent.add(
            Branch(
                name=name,
                uid=uid,
                is_directory=True,
                acl=acl,
                label=label,
                author=str(_principal(process)),
            )
        )
    except Exception:
        if services.tree.is_directory_uid(uid):
            services.tree.drop_directory(uid)
        services.ufs.delete_segment(uid)
        raise
    return uid


def h_delete_entry(services, process, dir_segno, name):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.W)
    branch = directory.get(name)
    if branch.safety_switch:
        raise InvalidArgument(f"{name!r}: safety switch is on")
    if branch.is_directory:
        child = services.tree.directory(branch.uid)
        if len(child):
            raise InvalidArgument(f"directory {name!r} is not empty")
        services.tree.drop_directory(branch.uid)
    directory.remove(name)
    if services.ufs.exists(branch.uid):
        services.ufs.delete_segment(branch.uid)
    return branch.uid


def h_list_directory(services, process, dir_segno):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.R)
    return [
        {
            "name": b.name,
            "names": sorted(b.all_names()),
            "type": "directory" if b.is_directory else "segment",
            "uid": b.uid,
        }
        for b in directory.list_branches()
    ]


def h_status(services, process, dir_segno, name):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.R)
    branch = directory.get(name)
    status = {
        "name": branch.name,
        "uid": branch.uid,
        "type": "directory" if branch.is_directory else "segment",
        "label": str(branch.label),
        "author": branch.author,
        "brackets": (branch.brackets.r1, branch.brackets.r2, branch.brackets.r3),
        "safety_switch": branch.safety_switch,
        "bit_count": branch.bit_count,
    }
    if not branch.is_directory and services.ufs.exists(branch.uid):
        status["n_pages"] = services.ufs.record(branch.uid).n_pages
    return status


def _modify_branch_acl_check(services, process, directory, branch):
    """Changing a branch's ACL requires write on the containing
    directory (Multics: 'm' on the directory; we fold m into w)."""
    _check_dir(services, process, directory, AccessMode.W)


def h_acl_add(services, process, dir_segno, name, pattern, mode):
    directory = services.directory_by_segno(process, dir_segno)
    branch = directory.get(name)
    _modify_branch_acl_check(services, process, directory, branch)
    branch.acl.add(pattern, mode)
    # An ACL change (including a downgrade) must reach every live SDW
    # for the segment, or processes that initiated it earlier keep the
    # old hardware rights.
    services.revoke_branch_access(branch)
    return len(branch.acl)


def h_acl_delete(services, process, dir_segno, name, pattern):
    directory = services.directory_by_segno(process, dir_segno)
    branch = directory.get(name)
    _modify_branch_acl_check(services, process, directory, branch)
    if not branch.acl.remove(pattern):
        raise NoSuchEntry(f"no acl entry {pattern!r} on {name!r}")
    services.revoke_branch_access(branch)
    return len(branch.acl)


def h_acl_list(services, process, dir_segno, name):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.R)
    branch = directory.get(name)
    return [(str(e.pattern), e.mode.to_string()) for e in branch.acl.entries()]


def h_rename(services, process, dir_segno, old, new):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.W)
    directory.rename(old, new)
    return new


def h_add_name(services, process, dir_segno, name, new_name):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.W)
    directory.add_name(name, new_name)
    return new_name


def h_delete_name(services, process, dir_segno, name):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.W)
    directory.remove_name(name)
    return name


def h_get_label(services, process, dir_segno, name):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.R)
    return str(directory.get(name).label)


def h_set_ring_brackets(services, process, dir_segno, name, r1, r2, r3):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.W)
    branch = directory.get(name)
    try:
        brackets = RingBrackets(r1, r2, r3)
    except ValueError as exc:
        raise InvalidArgument(str(exc)) from None
    if brackets.r1 < process.ring:
        raise AccessDenied(
            "cannot grant a write bracket more privileged than the caller"
        )
    branch.brackets = brackets
    services.revoke_branch_access(branch)
    return (r1, r2, r3)


def h_get_ring_brackets(services, process, dir_segno, name):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.R)
    b = directory.get(name).brackets
    return (b.r1, b.r2, b.r3)


def h_get_author(services, process, dir_segno, name):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.R)
    return directory.get(name).author


def h_set_safety_switch(services, process, dir_segno, name, on):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.W)
    directory.get(name).safety_switch = bool(on)
    return bool(on)


def h_set_bit_count(services, process, dir_segno, name, bits):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.W)
    directory.get(name).bit_count = bits
    return bits


def h_get_bit_count(services, process, dir_segno, name):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.R)
    return directory.get(name).bit_count


def h_get_quota(services, process, dir_segno):
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.R)
    return {
        "quota_pages": directory.quota_pages,
        "used_pages": _used_pages(services, directory),
    }


def h_set_quota(services, process, dir_segno, pages):
    # Privileged: only trusted rings reach this gate (brackets below).
    directory = services.directory_by_segno(process, dir_segno)
    directory.quota_pages = pages
    return pages


def h_truncate(services, process, segno, from_page):
    """Zero a known segment's pages from ``from_page`` on."""
    state = services.pstate(process)
    uid = state.kst.uid_of(segno)
    branch = services.branch_by_segno(process, segno)
    services.monitor.check(
        _principal(process), branch, AccessMode.W,
        time=services.sim.clock.now, ring=process.ring,
    )
    aseg = services.ast.get(uid)
    if from_page < 0 or from_page > aseg.n_pages:
        raise InvalidArgument(f"page {from_page} outside segment")
    core = services.hierarchy.core
    page_size = services.config.page_size
    for pageno in range(from_page, aseg.n_pages):
        ptw = aseg.ptws[pageno]
        if ptw.in_core and ptw.frame is not None:
            core.write_page(ptw.frame, [0] * page_size)
        else:
            home = aseg.homes[pageno]
            if home is not None:
                services.hierarchy.level(home.level).write_page(
                    home.frame, [0] * page_size
                )
    return aseg.n_pages - from_page


def h_get_root(services, process):
    """Initiate the root directory; the bootstrap handle for the new
    segno-based interface."""
    state = services.pstate(process)
    segno, _ = state.kst.make_known(services.tree.root.uid, is_directory=True)
    return segno


# ---------------------------------------------------------------------------
# address-space handlers (the minimal KST interface, E3's "after")
# ---------------------------------------------------------------------------

def initiate_branch(services, process, branch) -> int:
    """Shared initiation logic: KST entry + SDW construction.

    The SDW's access is the reference monitor's largest safe mode, so
    all later references are checked by hardware alone.  Used by the
    minimal ``hcs_$initiate`` and by the legacy naming gates.
    """
    state = services.pstate(process)
    if branch.is_directory:
        # Directories may be initiated (to use as handles) but carry no
        # data access: their contents are kernel structures.
        segno, _ = state.kst.make_known(branch.uid, is_directory=True)
        return segno
    mode = services.monitor.sdw_mode(_principal(process), branch)
    if mode == AccessMode.NONE:
        services.monitor.check(  # produce the audited denial
            _principal(process), branch, AccessMode.R,
            time=services.sim.clock.now, ring=process.ring,
        )
    segno, already = state.kst.make_known(branch.uid)
    if not already:
        aseg = services.ast.get(branch.uid)
        process.dseg.add(
            SDW(
                segno=segno,
                access=mode,
                brackets=branch.brackets,
                page_table=aseg.ptws,
                bound=aseg.n_pages * services.config.page_size,
                uid=branch.uid,
            )
        )
    return segno


def h_initiate(services, process, dir_segno, name):
    """Map a branch into the address space; returns the segment number.

    This is the whole of the new address-space interface: one
    directory handle, one entry name.
    """
    directory = services.directory_by_segno(process, dir_segno)
    _check_dir(services, process, directory, AccessMode.R)
    branch = directory.get(name)
    return initiate_branch(services, process, branch)


def h_terminate(services, process, segno):
    state = services.pstate(process)
    uid = state.kst.terminate(segno)
    if segno in process.dseg:
        process.dseg.remove(segno)
    return uid


def h_terminate_all(services, process):
    state = services.pstate(process)
    count = 0
    for entry in list(state.kst.entries()):
        state.kst.terminate(entry.segno)
        if entry.segno in process.dseg:
            process.dseg.remove(entry.segno)
        count += 1
    return count


def h_get_uid(services, process, segno):
    return services.pstate(process).kst.uid_of(segno)


def h_list_kst(services, process):
    return [
        (e.segno, e.uid, e.is_directory)
        for e in services.pstate(process).kst.entries()
    ]


# ---------------------------------------------------------------------------
# the gate list
# ---------------------------------------------------------------------------

def fs_gates() -> list[Gate]:
    """The file-system + address-space gates both supervisors export."""
    return [
        Gate("hcs_$create_segment", "fs", h_create_segment,
             ("segno", "name", "uint", "label"),
             doc="create a segment branch in a directory"),
        Gate("hcs_$create_directory", "fs", h_create_directory,
             ("segno", "name", "label"),
             doc="create a subdirectory"),
        Gate("hcs_$delete_entry", "fs", h_delete_entry, ("segno", "name"),
             doc="delete a branch (and its storage)"),
        Gate("hcs_$list_directory", "fs", h_list_directory, ("segno",),
             doc="enumerate a directory's branches"),
        Gate("hcs_$status", "fs", h_status, ("segno", "name"),
             doc="branch status"),
        Gate("hcs_$acl_add", "fs", h_acl_add,
             ("segno", "name", "pattern", "mode"),
             doc="add or replace an ACL entry"),
        Gate("hcs_$acl_delete", "fs", h_acl_delete,
             ("segno", "name", "pattern"),
             doc="remove an ACL entry"),
        Gate("hcs_$acl_list", "fs", h_acl_list, ("segno", "name"),
             doc="read a branch ACL"),
        Gate("hcs_$rename", "fs", h_rename, ("segno", "name", "name"),
             doc="rename a branch"),
        Gate("hcs_$add_name", "fs", h_add_name, ("segno", "name", "name"),
             doc="add an alternate name"),
        Gate("hcs_$delete_name", "fs", h_delete_name, ("segno", "name"),
             doc="remove an alternate name"),
        Gate("hcs_$get_label", "fs", h_get_label, ("segno", "name"),
             doc="read a branch's security label"),
        Gate("hcs_$set_ring_brackets", "fs", h_set_ring_brackets,
             ("segno", "name", "uint", "uint", "uint"),
             doc="set a branch's ring brackets"),
        Gate("hcs_$get_ring_brackets", "fs", h_get_ring_brackets,
             ("segno", "name"), doc="read ring brackets"),
        Gate("hcs_$get_author", "fs", h_get_author, ("segno", "name"),
             doc="read the branch author"),
        Gate("hcs_$set_safety_switch", "fs", h_set_safety_switch,
             ("segno", "name", "int"), doc="guard a branch from deletion"),
        Gate("hcs_$set_bit_count", "fs", h_set_bit_count,
             ("segno", "name", "uint"), doc="record meaningful length"),
        Gate("hcs_$get_bit_count", "fs", h_get_bit_count, ("segno", "name"),
             doc="read meaningful length"),
        Gate("hcs_$get_quota", "fs", h_get_quota, ("segno",),
             doc="read directory quota"),
        Gate("hcs_$set_quota", "fs", h_set_quota, ("segno", "uint"),
             brackets=PRIVILEGED_GATE,
             doc="set directory quota (administrative)"),
        Gate("hcs_$truncate_segment", "fs", h_truncate, ("segno", "uint"),
             doc="zero a segment's pages from a page onward"),
        Gate("hcs_$get_root", "fs", h_get_root, (),
             doc="initiate the root directory"),
        Gate("hcs_$initiate", "address_space", h_initiate, ("segno", "name"),
             doc="map a branch into the address space"),
        Gate("hcs_$terminate", "address_space", h_terminate, ("segno",),
             doc="unmap a segment number"),
        Gate("hcs_$terminate_all", "address_space", h_terminate_all, (),
             doc="unmap everything"),
        Gate("hcs_$get_uid", "address_space", h_get_uid, ("segno",),
             doc="segment number to UID"),
        Gate("hcs_$list_kst", "address_space", h_list_kst, (),
             doc="enumerate the known segment table"),
    ]
