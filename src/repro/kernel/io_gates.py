"""I/O gates: the legacy per-device families and the new network path.

Legacy: one kernel mechanism — a gate family with handler state — per
device class (terminal, tape, card reader, card punch, printer).  All
tagged ``removed_by="device_io"``.

New: the single ARPA network attachment ("Using network technology to
provide the only path for external I/O to Multics appears feasible").
Five gates replace eleven, and four device driver mechanisms leave the
kernel entirely.  Internal I/O (paging) never had gates; it is kernel
machinery either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvalidArgument, NoSuchEntry
from repro.kernel.gates import Gate

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.services import KernelServices


def _device(services, name, expected_class):
    device = services.devices.get(name)
    if device is None:
        raise NoSuchEntry(f"no device {name!r}")
    if device.device_class != expected_class:
        raise InvalidArgument(
            f"{name!r} is a {device.device_class}, not a {expected_class}"
        )
    return device


# -- terminals ---------------------------------------------------------------

def h_tty_attach(services, process, name):
    _device(services, name, "terminal").attach(process.pid)
    return name


def h_tty_detach(services, process, name):
    _device(services, name, "terminal").detach(process.pid)
    return name


def h_tty_read(services, process, name):
    return _device(services, name, "terminal").read_line(process.pid)


def h_tty_write(services, process, name, line):
    _device(services, name, "terminal").write_line(process.pid, line)
    return len(line)


# -- tapes ---------------------------------------------------------------------

def h_tape_attach(services, process, name):
    _device(services, name, "tape").attach(process.pid)
    return name


def h_tape_detach(services, process, name):
    _device(services, name, "tape").detach(process.pid)
    return name


def h_tape_read(services, process, name):
    return _device(services, name, "tape").read_record(process.pid)


def h_tape_write(services, process, name, record):
    _device(services, name, "tape").write_record(process.pid, record)
    return len(record)


# -- unit record -----------------------------------------------------------------

def h_card_read(services, process, name):
    device = _device(services, name, "card_reader")
    device.attach(process.pid)
    try:
        return device.read_card(process.pid)
    finally:
        device.detach(process.pid)


def h_card_punch(services, process, name, card):
    device = _device(services, name, "card_punch")
    device.attach(process.pid)
    try:
        device.punch_card(process.pid, card)
    finally:
        device.detach(process.pid)
    return len(card)


def h_print_line(services, process, name, line):
    device = _device(services, name, "printer")
    device.attach(process.pid)
    try:
        device.print_line(process.pid, line)
    finally:
        device.detach(process.pid)
    return len(line)


# -- the network attachment (new path) ----------------------------------------------

def h_net_send(services, process, host, body):
    """Send a message to the network.

    The attachment is an *unclassified* sink: the *-property forbids a
    cleared subject writing to it, which is what closes the overt
    exfiltration channel the legacy per-device gates leave open
    (experiment E11, attack A5).
    """
    from repro.security.mac import BOTTOM, may_write

    if process.principal is not None and not may_write(
        process.principal.clearance, BOTTOM
    ):
        from repro.errors import AccessDenied

        # Audit as a MAC decision in its own right (the gate layer
        # will also record the denial of the call itself).
        services.audit.log(
            services.sim.clock.now,
            str(process.principal),
            f"net:{host}",
            "w",
            "denied",
            "*-property: may not write the unclassified network channel",
            ring=process.ring,
            category="mac",
        )
        raise AccessDenied(
            f"*-property: clearance {process.principal.clearance} may not "
            "write the unclassified network channel"
        )
    message = services.network.send(host, body)
    return message.seq


def h_net_receive(services, process):
    message = services.network.receive()
    if message is None:
        return None
    return {"seq": message.seq, "host": message.host, "body": message.body}


def h_net_status(services, process):
    return {
        "backlog": services.network.backlog,
        "lost": services.network.messages_lost,
        "received": services.network.received_count,
        "buffer": services.network.buffer.kind,
    }


def h_net_attach(services, process):
    # The attachment is shared; attach is a no-op handle grant kept for
    # interface symmetry with the devices it replaces.
    return "net"


def h_net_detach(services, process):
    return "net"


def legacy_device_gates() -> list[Gate]:
    """The per-device gate families the kernel removes."""
    tag = "device_io"
    return [
        Gate("ios_$tty_attach", "io_device", h_tty_attach, ("str",),
             removed_by=tag, doc="attach a terminal"),
        Gate("ios_$tty_detach", "io_device", h_tty_detach, ("str",),
             removed_by=tag, doc="detach a terminal"),
        Gate("ios_$tty_read", "io_device", h_tty_read, ("str",),
             removed_by=tag, doc="read a typed line"),
        Gate("ios_$tty_write", "io_device", h_tty_write, ("str", "str"),
             removed_by=tag, doc="print a line on a terminal"),
        Gate("ios_$tape_attach", "io_device", h_tape_attach, ("str",),
             removed_by=tag, doc="attach a tape drive"),
        Gate("ios_$tape_detach", "io_device", h_tape_detach, ("str",),
             removed_by=tag, doc="detach a tape drive"),
        Gate("ios_$tape_read", "io_device", h_tape_read, ("str",),
             removed_by=tag, doc="read the next tape record"),
        Gate("ios_$tape_write", "io_device", h_tape_write, ("str", "words"),
             removed_by=tag, doc="write a tape record"),
        Gate("ios_$card_read", "io_device", h_card_read, ("str",),
             removed_by=tag, doc="read a card"),
        Gate("ios_$card_punch", "io_device", h_card_punch, ("str", "str"),
             removed_by=tag, doc="punch a card"),
        Gate("ios_$print_line", "io_device", h_print_line, ("str", "str"),
             removed_by=tag, doc="print a line"),
    ]


def network_gates() -> list[Gate]:
    """The single I/O mechanism the kernel keeps."""
    return [
        Gate("net_$attach", "io_network", h_net_attach, (),
             doc="acquire the network attachment"),
        Gate("net_$detach", "io_network", h_net_detach, (),
             doc="release the network attachment"),
        Gate("net_$send", "io_network", h_net_send, ("str", "str"),
             doc="send a message"),
        Gate("net_$receive", "io_network", h_net_receive, (),
             doc="receive the next buffered message"),
        Gate("net_$status", "io_network", h_net_status, (),
             doc="attachment health"),
    ]
