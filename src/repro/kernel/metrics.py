"""Kernel size and perimeter measurement (experiments E1-E3, E10, E14).

Two measures, both taken from the running implementation:

* **gate census** — how many entry points a supervisor exports, total
  and user-available, grouped by category and by removal project; and
* **statement counts** — how much code a certifier must audit, counted
  as AST statement nodes of the modules (or individual functions) that
  execute with supervisor privilege.  Statement counts are the honest
  Python analogue of the paper's "size of the protected code": they
  ignore comments, docstrings, and blank lines.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from types import FunctionType, ModuleType


def count_statements(obj: ModuleType | FunctionType | type | str) -> int:
    """Count executable statement nodes in a module, class, function,
    or source string.  Docstring expressions are excluded."""
    if isinstance(obj, str):
        source = obj
    else:
        source = inspect.getsource(obj)
    tree = ast.parse(textwrap.dedent(source))
    count = 0
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if _is_docstring_stmt(node):
            continue
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        count += 1
    return count


def _is_docstring_stmt(node: ast.stmt) -> bool:
    return (
        isinstance(node, ast.Expr)
        and isinstance(node.value, ast.Constant)
        and isinstance(node.value.value, str)
    )


def count_statements_all(objs: list) -> int:
    return sum(count_statements(obj) for obj in objs)


@dataclass
class GateCensus:
    """The perimeter of one supervisor."""

    total: int
    user_available: int
    by_category: dict[str, int]
    by_removal: dict[str, int]

    @property
    def removable(self) -> int:
        return sum(v for k, v in self.by_removal.items() if k != "kept")


def gate_census(supervisor) -> GateCensus:
    table = supervisor.gates
    user_by_removal: dict[str, int] = {}
    for gate in table.user_available_gates():
        tag = gate.removed_by or "kept"
        user_by_removal[tag] = user_by_removal.get(tag, 0) + 1
    return GateCensus(
        total=len(table),
        user_available=len(table.user_available_gates()),
        by_category=table.by_category(),
        by_removal=user_by_removal,
    )


@dataclass
class SizeReport:
    """Protected-code size of one supervisor."""

    per_module: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.per_module.values())


def protected_code_report(supervisor) -> SizeReport:
    return SizeReport(
        per_module={
            m.__name__: count_statements(m)
            for m in supervisor.protected_modules()
        }
    )


def address_space_code_size(supervisor) -> int:
    """Statements of protected address-space-management code (E3)."""
    return count_statements_all(supervisor.address_space_components())


# ---------------------------------------------------------------------------
# the before/after comparisons the benches print
# ---------------------------------------------------------------------------

@dataclass
class RemovalComparison:
    """One removal project's effect on the user-available perimeter."""

    project: str
    before: int
    removed: int

    @property
    def after(self) -> int:
        return self.before - self.removed

    @property
    def fraction_removed(self) -> float:
        return self.removed / self.before if self.before else 0.0


def linker_removal(legacy_supervisor) -> RemovalComparison:
    """E1: the linker's share of the legacy perimeter (paper: 10% of
    the gate entry points)."""
    census = gate_census(legacy_supervisor)
    return RemovalComparison(
        project="linker",
        before=census.user_available,
        removed=census.by_removal.get("linker", 0),
    )


def linker_and_naming_removal(legacy_supervisor) -> RemovalComparison:
    """E2: linker + reference-name removal (paper: reduces
    user-available supervisor entries by approximately one third)."""
    census = gate_census(legacy_supervisor)
    removed = census.by_removal.get("linker", 0) + census.by_removal.get(
        "naming", 0
    )
    return RemovalComparison(
        project="linker+naming", before=census.user_available, removed=removed
    )


def address_space_reduction(legacy_supervisor, kernel) -> float:
    """E3: factor by which protected address-space code shrank
    (paper: a factor of ten)."""
    before = address_space_code_size(legacy_supervisor)
    after = address_space_code_size(kernel)
    return before / after if after else float("inf")
