"""Run N specialized kernels side-by-side over one substrate.

The MultiK half of ROADMAP item 2: one shared SMP/VM substrate (the
:class:`~repro.kernel.services.KernelServices` — memory hierarchy,
file system, scheduler, audit funnel), many perimeters.  Each tenant
class (a workload profile) gets its own :class:`SpecializedKernel` and
its own user-ring login listener; the orchestrator routes every call
to the kernel of the process's tenant, falling back to the system's
full kernel for processes no tenant owns (the initializer, daemons).

Isolation story: the kernels share *state* but not *perimeter* — a
tenant reaching for a gate outside its class's profile hits a deny
stub in its own kernel, is refused, and is audited, even though the
full kernel on the same substrate would have granted the call.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING

from repro.config import USER_RING, SupervisorKind
from repro.kernel.specialize import GateProfile, SpecializedKernel
from repro.proc.process import Process
from repro.security.principal import KERNEL_PRINCIPAL
from repro.user.login import LoginListener

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import MulticsSystem, Session


class KernelOrchestrator:
    """Tenant-class routing over a shared substrate."""

    def __init__(self, system: "MulticsSystem") -> None:
        if system.config.supervisor is SupervisorKind.LEGACY:
            raise ValueError(
                "the orchestrator runs specialized kernels over the "
                "security-kernel substrate, not the legacy supervisor"
            )
        self.system = system
        self.services = system.services
        self.kernels: dict[str, SpecializedKernel] = {}
        self.listeners: dict[str, LoginListener] = {}
        #: pid -> tenant name (the routing table).
        self._tenant_of: dict[int, str] = {}
        self.routed_calls = 0
        self.unrouted_calls = 0
        self._register_metrics()

    def _register_metrics(self) -> None:
        metrics = getattr(self.services, "metrics", None)
        if metrics is None:  # pragma: no cover - services always have one
            return
        metrics.gauge(
            "specialize.tenants",
            "tenant classes with a routed specialized kernel",
            source=lambda: len(self.kernels),
        )
        metrics.counter(
            "specialize.routed_calls",
            "orchestrated calls dispatched to a tenant kernel",
            source=lambda: self.routed_calls,
        )
        metrics.counter(
            "specialize.unrouted_calls",
            "orchestrated calls that fell back to the full kernel",
            source=lambda: self.unrouted_calls,
        )

    # -- tenants ----------------------------------------------------------

    def add_tenant(self, tenant: str, profile: GateProfile) -> SpecializedKernel:
        """Generate and route a specialized kernel for ``tenant``."""
        if tenant in self.kernels:
            raise ValueError(f"tenant {tenant!r} already has a kernel")
        kernel = SpecializedKernel(self.services, profile)
        listener_proc = Process(
            f"listener_{tenant}", ring=USER_RING, principal=KERNEL_PRINCIPAL
        )
        self.kernels[tenant] = kernel
        self.listeners[tenant] = LoginListener(kernel, listener_proc)
        return kernel

    def kernel_for(self, tenant: str) -> SpecializedKernel:
        try:
            return self.kernels[tenant]
        except KeyError:
            raise ValueError(f"no tenant {tenant!r}") from None

    def route_process(self, process, tenant: str) -> None:
        """Bind an existing process to a tenant's kernel."""
        self.kernel_for(tenant)
        self._tenant_of[process.pid] = tenant

    def tenant_of(self, process) -> str | None:
        return self._tenant_of.get(process.pid)

    # -- the routed call path ---------------------------------------------

    def call(self, process, gate_name: str, *args: object) -> object:
        """Invoke a gate through the caller's tenant kernel (the full
        kernel for unrouted processes)."""
        tenant = self._tenant_of.get(process.pid)
        if tenant is None:
            self.unrouted_calls += 1
            return self.system.supervisor.call(process, gate_name, *args)
        self.routed_calls += 1
        return self.kernels[tenant].call(process, gate_name, *args)

    # -- sessions ---------------------------------------------------------

    @contextmanager
    def installed(self, tenant: str):
        """Temporarily make ``tenant``'s kernel the system's active
        supervisor (Session objects bind their supervisor at
        construction, so building one inside this context pins it to
        the tenant kernel permanently)."""
        kernel = self.kernel_for(tenant)
        saved_sup = self.system.supervisor
        saved_listener = self.system.listener
        self.system.supervisor = kernel
        self.system.listener = self.listeners[tenant]
        try:
            yield kernel
        finally:
            self.system.supervisor = saved_sup
            self.system.listener = saved_listener

    def login(self, tenant: str, person: str, project: str, password: str,
              register: bool = True, home: bool = True) -> "Session":
        """Admit a user through the tenant's own listener; the returned
        session calls gates through the tenant kernel for its lifetime.

        ``home=False`` skips the home-directory ceremony (for profiles
        whose training workload never created directories).
        """
        from repro.system import Session

        listener = self.listeners.get(tenant)
        if listener is None:
            raise ValueError(f"no tenant {tenant!r}")
        if register and person not in self.services.users:
            self.services.register_user(person, [project], password)
        user = listener.login(
            person, project, password, source=f"tenant:{tenant}", quiet=True
        )
        process = self.services.created_processes[user.pid]
        self._tenant_of[process.pid] = tenant
        with self.installed(tenant):
            session = Session(self.system, process, user.session_id)
            if home:
                session._ensure_home()
        return session

    def logout(self, session: "Session") -> None:
        """End a tenant session through the listener that admitted it."""
        tenant = self._tenant_of.get(session.process.pid)
        if tenant is None:
            raise ValueError(f"process {session.process.pid} is unrouted")
        with self.installed(tenant):
            session.logout()
        self._tenant_of.pop(session.process.pid, None)
