"""The bundle of kernel-resident services shared by both supervisors.

Everything a gate handler may touch hangs off :class:`KernelServices`:
the simulator, memory hierarchy, active segment table, the UID file
system (layer 1), the directory tree (layer 2), page control, the
reference monitor, and per-process kernel state (KSTs, descriptor
segments).  The *difference* between the legacy supervisor and the
security kernel is which gate tables and which in-kernel modules sit on
top of these services — the services themselves are common substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.config import SupervisorKind, SystemConfig
from repro.errors import MissingPageFault, NoSuchEntry
from repro.faults.injector import FaultInjector
from repro.faults.recovery import RetryPolicy, retry_call
from repro.fs.acl import Acl
from repro.fs.directory import Branch, DirectoryTree
from repro.fs.kst import KnownSegmentTable
from repro.fs.uid_layer import UidFileSystem
from repro.hw.clock import Simulator
from repro.hw.interrupts import InterruptController
from repro.hw.memory import MemoryHierarchy
from repro.hw.segmentation import Intent, translate
from repro.kernel.locks import LockTable
from repro.obs import AuditTrail, Meters, MetricsRegistry, Tracer
from repro.proc.scheduler import TrafficController
from repro.security.audit import AuditLog
from repro.security.mac import BOTTOM
from repro.security.principal import KERNEL_PRINCIPAL
from repro.security.reference_monitor import ReferenceMonitor
from repro.vm.page_control import PageControl, make_page_control
from repro.vm.segment_control import ActiveSegmentTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.proc.process import Process


@dataclass
class UserRecord:
    """One registered user, as the kernel knows them."""

    person: str
    projects: list[str]
    password_hash: str
    clearance: object = BOTTOM


@dataclass
class ProcessKernelState:
    """Kernel-side state for one process (never user-writable)."""

    kst: KnownSegmentTable = field(default_factory=KnownSegmentTable)
    #: Legacy only: the unsplit KST holding in-kernel reference names,
    #: pathnames, and initiate counts (see repro.kernel.kst_legacy).
    legacy_kst: "LegacyKnownSegmentTable" = field(
        default_factory=lambda: _make_legacy_kst()
    )
    #: Legacy only: in-kernel working directory (a directory UID).
    working_dir_uid: int | None = None
    #: Legacy only: in-kernel search rules (directory UIDs, in order).
    search_rules: list[int] = field(default_factory=list)


def _make_legacy_kst():
    from repro.kernel.kst_legacy import LegacyKnownSegmentTable

    return LegacyKnownSegmentTable()


class KernelServices:
    """Shared kernel substrate (see module docstring)."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        self.sim = Simulator(fast_path=config.fast_path)
        # The observability plane: one registry and one tracer shared by
        # every model built below.  The tracer is off unless the config
        # asks for it; instruments cost nothing until snapshot time.
        self.metrics = MetricsRegistry(clock=self.sim.clock)
        self.tracer = Tracer(self.sim.clock, enabled=config.tracing)
        #: Per-process/per-gate cycle attribution (repro.obs.meters);
        #: accumulation is plain integers, never simulated cycles.
        self.meters = Meters(enabled=config.metering)
        #: The kernel's global locks (traffic control, page table, AST):
        #: the serialization points the paper's SMP kernel pins down.
        self.locks = LockTable(metrics=self.metrics)
        self.scheduler = TrafficController(self.sim, config,
                                           metrics=self.metrics,
                                           meters=self.meters,
                                           locks=self.locks)
        #: The bounded, exportable security-audit trail; every record
        #: the kernel AuditLog takes is forwarded here.
        self.audit_trail = AuditTrail(capacity=config.audit_capacity,
                                      level=config.audit_level)
        self.audit = AuditLog(trail=self.audit_trail)
        # The fault plane: built before the hardware so every model can
        # consult one injector.  A fresh fork keeps this system's
        # injection history independent of any other system built from
        # the same config.
        self.injector = (
            FaultInjector(
                config.fault_plan.fork(),
                audit=self.audit,
                clock=self.sim.clock,
                metrics=self.metrics,
            )
            if config.fault_plan is not None
            else None
        )
        self.retry_policy = RetryPolicy.from_config(config)
        self.hierarchy = MemoryHierarchy(config, injector=self.injector,
                                         metrics=self.metrics)
        self.ast = ActiveSegmentTable(self.hierarchy, lock=self.locks.ast)
        self.interrupts = InterruptController(self.sim.clock,
                                              metrics=self.metrics,
                                              tracer=self.tracer)
        self.monitor = ReferenceMonitor(self.audit)
        self.page_control: PageControl = make_page_control(
            config.page_control,
            self.sim,
            self.scheduler,
            self.hierarchy,
            self.ast,
            config,
            metrics=self.metrics,
            tracer=self.tracer,
            locks=self.locks,
        )
        self.ufs = UidFileSystem(self.ast, page_control=self.page_control)
        root_uid = self.ufs.create_segment(
            1, label=BOTTOM, is_directory=True
        )
        self.tree = DirectoryTree(root_uid, BOTTOM)
        self._build_io()
        #: Kernel-side per-process state, keyed by pid.
        self._pstate: dict[int, ProcessKernelState] = {}
        #: Every process the kernel has seen (pid -> Process): the scope
        #: of SDW revocation and of the aggregated am.* metrics.
        self._procs: dict[int, "Process"] = {}
        #: Associative-memory counters of already-destroyed processes,
        #: folded in so the aggregate counters stay monotonic.
        self._am_retired = {"hits": 0, "misses": 0, "invalidations": 0,
                            "cams": 0}
        #: The kernel's user registry (person -> record).
        self.users: dict[str, UserRecord] = {}
        #: Processes created through hcs_$proc_create, keyed by pid.
        self.created_processes: dict[int, "Process"] = {}
        #: pid -> pid of the process that created it (destroy rights).
        self.process_creators: dict[int, int] = {}
        #: Counters the benches read.
        self.gate_cycles = 0
        self.supervisor_incidents = 0
        self.metrics.counter(
            "gate.cycles", "simulated cycles charged to gate calls",
            source=lambda: self.gate_cycles,
        )
        self.metrics.counter(
            "kernel.supervisor_incidents",
            "exceptions absorbed at the gate boundary",
            source=lambda: self.supervisor_incidents,
        )
        self.metrics.counter(
            "am.hits", "translations resolved by the associative memory",
            source=self._am_sum("hits"),
        )
        self.metrics.counter(
            "am.misses", "references that walked the full check chain",
            source=self._am_sum("misses"),
        )
        self.metrics.counter(
            "am.invalidations", "AM entries cleared by cam events",
            source=self._am_sum("invalidations"),
        )
        self.metrics.counter(
            "am.cams", "full clear-associative-memory operations",
            source=self._am_sum("cams"),
        )
        self.metrics.gauge(
            "am.entries", "cached translations across live processes",
            source=lambda: sum(
                len(p.dseg.am) for p in self._procs.values()
            ),
        )
        # The metering plane's coverage denominator: every charging
        # site's own total, read from the side opposite the buckets.
        self.meters.bind_system(
            busy_cycles=lambda: sum(
                p.busy_cycles for p in self.scheduler.processors
            ),
            gate_cycles=lambda: self.gate_cycles,
            fault_wait=lambda: self.page_control.fault_wait_total,
        )
        self.meters.register_metrics(self.metrics)
        self.audit_trail.register_metrics(self.metrics)
        # The time-series plane (repro.obs.timeline): off unless the
        # config carries a timeline spec.  Like the tracer, sampling
        # reads instruments only — zero simulated cycles either way.
        self.timeline = None
        self.health = None
        if config.timeline is not None:
            from repro.obs.health import HealthMonitor
            from repro.obs.timeline import TimelineSampler

            spec = config.timeline
            knobs = {k: spec[k] for k in ("interval", "capacity")
                     if k in spec}
            self.timeline = TimelineSampler(
                self.metrics, self.sim.clock, metrics=self.metrics, **knobs
            )
            self.health = HealthMonitor(spec.get("rules", []),
                                        metrics=self.metrics)
            self.timeline.listeners.append(self.health.observe)

    def timeline_document(self) -> dict | None:
        """The run's ``repro.timeline/v1`` document, with the health
        monitor's breach log folded in; None when the timeline is off."""
        if self.timeline is None:
            return None
        breaches = self.health.to_rows() if self.health is not None else None
        return self.timeline.to_doc(breaches=breaches)

    def _am_sum(self, attr: str):
        """Aggregate one AM counter over live and retired processes."""
        return lambda: self._am_retired[attr] + sum(
            getattr(p.dseg.am, attr) for p in self._procs.values()
        )

    def _build_io(self) -> None:
        """Create the peripheral inventory and the network attachment."""
        from repro.config import BufferKind
        from repro.io.buffers import CircularBuffer, InfiniteVMBuffer
        from repro.io.devices import (
            CardPunch,
            CardReader,
            LinePrinter,
            TapeDrive,
            Terminal,
        )
        from repro.io.network import NetworkAttachment

        sim, ic = self.sim, self.interrupts
        recovery = dict(
            injector=self.injector,
            max_retries=self.config.max_io_retries,
            backoff_base=self.config.retry_backoff_base,
            timeout_factor=self.config.device_timeout_factor,
        )
        self.devices = {
            "tty1": Terminal("tty1", sim, ic, line=1, **recovery),
            "tape1": TapeDrive("tape1", sim, ic, line=2, **recovery),
            "rdr1": CardReader("rdr1", sim, ic, line=3, **recovery),
            "pun1": CardPunch("pun1", sim, ic, line=4, **recovery),
            "prt1": LinePrinter("prt1", sim, ic, line=5, **recovery),
        }
        if self.config.buffers is BufferKind.CIRCULAR:
            buffer = CircularBuffer(self.config.net_buffer_capacity)
        else:
            buffer = InfiniteVMBuffer(
                messages_per_page=max(self.config.page_size // 4, 1)
            )
        self.network = NetworkAttachment(
            sim, ic, line=6, buffer=buffer, injector=self.injector,
            metrics=self.metrics,
        )
        from repro.io.topology import NetworkTopology

        self.topology = NetworkTopology.build(
            self.config.topology, sim, self.network,
            injector=self.injector, metrics=self.metrics,
        )

    # -- users ---------------------------------------------------------------

    def register_user(
        self,
        person: str,
        projects: list[str],
        password: str,
        clearance=BOTTOM,
    ) -> "UserRecord":
        from repro.kernel.proc_gates import hash_password

        record = UserRecord(
            person=person,
            projects=list(projects),
            password_hash=hash_password(password, person),
            clearance=clearance,
        )
        self.users[person] = record
        return record

    def config_user_ring(self) -> int:
        from repro.config import USER_RING

        return USER_RING

    # -- per-process kernel state ------------------------------------------

    def pstate(self, process: "Process") -> ProcessKernelState:
        state = self._pstate.get(process.pid)
        if state is None:
            state = ProcessKernelState()
            self._pstate[process.pid] = state
            self._track(process)
        return state

    def _track(self, process: "Process") -> None:
        """Register a process for SDW revocation and am.* aggregation."""
        if process.pid not in self._procs:
            self._procs[process.pid] = process
            process.dseg.am.capacity = self.config.am_entries
            self.meters.track(process)

    def drop_pstate(self, process: "Process") -> None:
        self._pstate.pop(process.pid, None)
        # Freeze the process's cycle accounting into its metering
        # bucket before the object goes away.
        self.meters.fold(process)
        tracked = self._procs.pop(process.pid, None)
        if tracked is not None:
            # Address-space teardown: fire cam so nothing cached for
            # this descriptor segment can ever be honoured again, then
            # fold the counters so the aggregates stay monotonic.
            am = tracked.dseg.am
            am.cam()
            for attr in self._am_retired:
                self._am_retired[attr] += getattr(am, attr)

    def revoke_branch_access(self, branch) -> int:
        """Propagate an ACL or brackets change to every live SDW of the
        branch's segment (the Multics ``setfaults`` sweep over the AST
        trailer).

        Hardware enforces whatever the SDW says, so a revocation that
        stopped at the ACL would leave processes that initiated the
        segment earlier running on the old rights.  Each affected SDW
        is rewritten to the monitor's current verdict and its cached
        translations are cammed; returns the number of SDWs updated.
        """
        touched = 0
        for process in self._procs.values():
            for sdw in process.dseg:
                if sdw.uid != branch.uid:
                    continue
                if process.principal is not None:
                    sdw.access = self.monitor.sdw_mode(
                        process.principal, branch
                    )
                sdw.brackets = branch.brackets
                process.dseg.am.invalidate_segno(sdw.segno)
                touched += 1
                break
        # The setfaults sweep is itself a security event: record what
        # was revoked and how far it reached.
        self.audit.log(
            self.sim.clock.now,
            str(KERNEL_PRINCIPAL),
            branch.name,
            "revoke",
            "granted",
            f"access recomputed on {touched} live SDWs (uid {branch.uid})",
            category="revocation",
        )
        return touched

    # -- hardware-mediated data access ---------------------------------------
    #
    # These helpers model ordinary loads/stores by the process: every
    # word goes through the hardware translation (ring + mode + bounds
    # checks against the process's own SDW), with missing pages serviced
    # synchronously.  Kernel code uses them to read user-supplied
    # buffers *with the caller's access rights*, never its own.

    def read_word(self, process: "Process", segno: int, offset: int) -> int:
        self._track(process)
        am = process.dseg.am if self.config.am_enabled else None
        while True:
            try:
                frame, woff = translate(
                    process.dseg, segno, offset, process.ring,
                    Intent.READ, self.config.page_size, am=am,
                )
                break
            except MissingPageFault as fault:
                uid = process.dseg.get(segno).uid
                self.page_control.service_sync(self.ast.get(uid), fault.pageno)
        return self._read_core_retrying(frame, woff)

    def _read_core_retrying(self, frame: int, woff: int) -> int:
        """One core read with bounded retry on injected parity errors.

        Exhausting the retry budget surfaces :class:`DeviceError` —
        denial of use for the caller, never silent wrong data.
        """
        value, _ = retry_call(
            lambda: self.hierarchy.core.read(frame, woff),
            self.retry_policy,
            self.injector,
            "kernel.read_word",
            tracer=self.tracer,
        )
        return value

    def write_word(
        self, process: "Process", segno: int, offset: int, value: int
    ) -> None:
        self._track(process)
        am = process.dseg.am if self.config.am_enabled else None
        while True:
            try:
                frame, woff = translate(
                    process.dseg, segno, offset, process.ring,
                    Intent.WRITE, self.config.page_size, am=am,
                )
                break
            except MissingPageFault as fault:
                uid = process.dseg.get(segno).uid
                self.page_control.service_sync(self.ast.get(uid), fault.pageno)
        self.hierarchy.core.write(frame, woff, value)

    def read_segment_words(
        self, process: "Process", segno: int, count: int | None = None
    ) -> list[int]:
        sdw = process.dseg.get(segno)
        n = sdw.bound if count is None else min(count, sdw.bound)
        return [self.read_word(process, segno, off) for off in range(n)]

    def write_segment_words(
        self, process: "Process", segno: int, words: list[int], offset: int = 0
    ) -> None:
        for i, word in enumerate(words):
            self.write_word(process, segno, offset + i, word)

    # -- shared lookup helpers (used by many gate handlers) -------------------

    def directory_by_segno(self, process: "Process", dir_segno: int):
        """Map a caller-supplied segment number to a directory object.

        The caller must already have the directory initiated; the kernel
        trusts only its own KST, never a user-supplied UID.
        """
        state = self.pstate(process)
        uid = state.kst.uid_of(dir_segno)
        return self.tree.directory(uid)

    def branch_by_segno(self, process: "Process", segno: int) -> Branch:
        """Find the branch a known segment number was initiated from."""
        state = self.pstate(process)
        uid = state.kst.uid_of(segno)
        for directory in self.tree.directories():
            for branch in directory.list_branches():
                if branch.uid == uid:
                    return branch
        raise NoSuchEntry(f"no branch for segment number {segno}")


def build_services(config: SystemConfig | None = None) -> KernelServices:
    """Construct the substrate for a fresh system."""
    return KernelServices(config or SystemConfig())


def default_acl(author: str = "*") -> Acl:
    """The conventional initial ACL on a new branch."""
    return Acl.make((f"{author}.*.*", "rew") if author != "*" else ("*.*.*", "rew"))
