"""Specialized per-workload kernels (ROADMAP item 2, the MultiK/KASR
direction).

The paper's core move is shrinking the protected mechanism.  This
module pushes it one step further with automation: instead of a human
certifier deciding which gates a supervisor needs, a
:class:`KernelProfiler` folds the meter/audit traces of a *training
run* of a seeded workload into a :class:`GateProfile` — which gates
the workload entered, which fault paths it took, which kernel services
it reached — and :func:`specialize` generates a
:class:`SpecializedKernel` whose gate table populates only the
profiled gates.

Every unprofiled gate still *exists* (same name, same ring brackets,
same argument validation — the perimeter census is unchanged), but its
handler is a deny-and-audit stub: denial of use, never wrong data, and
every refusal flows through the same audit funnel as any other kernel
denial.  The security argument a certifier must check therefore
shrinks from the full gate inventory to the profiled subset plus one
stub, and E21 measures the reduction instead of asserting it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable

from repro.errors import SpecializationDenial
from repro.kernel.fs_gates import fs_gates
from repro.kernel.gates import Gate, GateTable
from repro.kernel.io_gates import network_gates
from repro.kernel.kernel import Supervisor
from repro.kernel.metrics import count_statements
from repro.kernel.proc_gates import proc_gates

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.services import KernelServices


def full_kernel_gates() -> list[Gate]:
    """The security kernel's complete gate inventory (the specialization
    baseline: what a tenant would get without a profile)."""
    return fs_gates() + proc_gates() + network_gates()


# ---------------------------------------------------------------------------
# profiles
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GateProfile:
    """What one workload class was observed to need from the kernel."""

    name: str
    #: Gate names the workload *entered* (past the ring check).
    gates: frozenset[str] = frozenset()
    #: Fault paths taken (page_fault, interrupt, fault_recovery).
    fault_paths: frozenset[str] = frozenset()
    #: Kernel service categories reached (gate categories).
    services: frozenset[str] = frozenset()
    #: Gate entries observed during training (profile weight).
    trained_calls: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "gates", frozenset(self.gates))
        object.__setattr__(self, "fault_paths", frozenset(self.fault_paths))
        object.__setattr__(self, "services", frozenset(self.services))

    def __contains__(self, gate_name: str) -> bool:
        return gate_name in self.gates

    def merge(self, other: "GateProfile", name: str | None = None) -> "GateProfile":
        """Union of two profiles (a tenant class serving both workloads)."""
        return GateProfile(
            name=name or f"{self.name}+{other.name}",
            gates=self.gates | other.gates,
            fault_paths=self.fault_paths | other.fault_paths,
            services=self.services | other.services,
            trained_calls=self.trained_calls + other.trained_calls,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "gates": sorted(self.gates),
            "fault_paths": sorted(self.fault_paths),
            "services": sorted(self.services),
            "trained_calls": self.trained_calls,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "GateProfile":
        return cls(
            name=doc["name"],
            gates=frozenset(doc.get("gates", ())),
            fault_paths=frozenset(doc.get("fault_paths", ())),
            services=frozenset(doc.get("services", ())),
            trained_calls=doc.get("trained_calls", 0),
        )


#: The profile of a workload that was never observed doing anything.
EMPTY_PROFILE = GateProfile(name="empty")


class KernelProfiler:
    """Folds a training run's meter/audit traces into a GateProfile.

    Construct it over a booted system (or raw services) *before* the
    training workload runs — construction marks the baseline — then
    call :meth:`profile` after the run to fold everything observed
    since the mark.
    """

    #: Fault paths, each recognized by a metrics counter advancing.
    FAULT_PATH_COUNTERS = {
        "page_fault": "pc.faults_serviced",
        "interrupt": "intr.delivered",
        "fault_recovery": "faults.recovered",
    }

    def __init__(self, system) -> None:
        self.services: "KernelServices" = getattr(system, "services", system)
        self._categories = {g.name: g.category for g in full_kernel_gates()}
        self.mark()

    def mark(self) -> None:
        """Set the observation baseline to now."""
        self._audit_mark = len(self.services.audit.records)
        self._counter_mark = dict(
            self.services.metrics.snapshot()["counters"]
        )
        meters = getattr(self.services, "meters", None)
        usage = meters.gate_usage() if meters is not None else {}
        self._gate_call_mark = {name: m.calls for name, m in usage.items()}

    def profile(self, name: str, remark: bool = False) -> GateProfile:
        """Fold everything observed since the last mark into a profile.

        The audit log is the primary source — it is unbounded and
        always on, and records every gate invocation with its outcome.
        A gate counts as *entered* unless the ring check turned the
        call away (those never reached kernel software).  The per-gate
        meters corroborate: any gate the metering plane saw advance is
        folded in too.
        """
        gates: set[str] = set()
        entered = 0
        for record in self.services.audit.records[self._audit_mark:]:
            if record.action != "call":
                continue
            if record.outcome == "denied" and record.category == "ring":
                continue  # the hardware turned it away at the perimeter
            gates.add(record.object)
            entered += 1
        meters = getattr(self.services, "meters", None)
        if meters is not None:
            for gate, meter in meters.gate_usage().items():
                if meter.calls > self._gate_call_mark.get(gate, 0):
                    gates.add(gate)
        counters = self.services.metrics.snapshot()["counters"]
        fault_paths = {
            path
            for path, counter in self.FAULT_PATH_COUNTERS.items()
            if counters.get(counter, 0) > self._counter_mark.get(counter, 0)
        }
        reached = {
            self._categories[g] for g in gates if g in self._categories
        }
        profile = GateProfile(
            name=name,
            gates=frozenset(gates),
            fault_paths=frozenset(fault_paths),
            services=frozenset(reached),
            trained_calls=entered,
        )
        if remark:
            self.mark()
        return profile


# ---------------------------------------------------------------------------
# the specialized gate table
# ---------------------------------------------------------------------------

def _handler_statements(handlers: Iterable) -> int:
    """Statement count over distinct handler bodies (shared handlers —
    and the one deny-stub body every stub closure compiles to — count
    once)."""
    seen: set = set()
    total = 0
    for handler in handlers:
        key = getattr(handler, "__code__", handler)
        if key in seen:
            continue
        seen.add(key)
        total += count_statements(handler)
    return total


class SpecializedGateTable(GateTable):
    """A gate table whose unprofiled entries are deny-and-audit stubs.

    The stub keeps the original gate's brackets and signature, so the
    ring check and argument validation behave exactly as on the full
    kernel; only the handler differs — it refuses with
    :class:`SpecializationDenial`, which the choke point audits through
    the same funnel as every other kernel denial.
    """

    def __init__(self, services: "KernelServices", audit,
                 profile: GateProfile) -> None:
        self.profile = profile
        self.deny_stub_hits = 0
        self.stub_names: set[str] = set()
        self._reachable_cache: tuple[int, int] | None = None
        super().__init__(services, audit)
        self._register_specialize_metrics(services)

    # -- registration ---------------------------------------------------------

    def register(self, gate: Gate) -> None:
        super().register(gate)
        self._reachable_cache = None

    def register_stub(self, gate: Gate) -> None:
        """Register ``gate`` with its handler replaced by a deny stub
        (brackets and signature unchanged)."""
        stub = replace(
            gate,
            handler=self._make_stub(gate.name),
            doc=f"deny stub ({self.profile.name}): {gate.doc}",
        )
        self.register(stub)
        self.stub_names.add(gate.name)

    def _make_stub(self, name: str):
        def specialize_deny_stub(services, process, *args):
            self.deny_stub_hits += 1
            raise SpecializationDenial(
                f"{name} is outside workload profile {self.profile.name!r}"
            )

        return specialize_deny_stub

    # -- surface census -------------------------------------------------------

    def live_gates(self) -> list[Gate]:
        return [g for g in self._gates.values()
                if g.name not in self.stub_names]

    def live_gate_count(self) -> int:
        return len(self._gates) - len(self.stub_names)

    def stub_count(self) -> int:
        return len(self.stub_names)

    def reachable_statements(self) -> int:
        """Statements reachable through this table's handlers (live
        handler bodies plus the single shared stub body)."""
        if (self._reachable_cache is not None
                and self._reachable_cache[0] == len(self._gates)):
            return self._reachable_cache[1]
        total = _handler_statements(
            gate.handler for gate in self._gates.values()
        )
        self._reachable_cache = (len(self._gates), total)
        return total

    # -- metrics --------------------------------------------------------------

    def _register_specialize_metrics(self, services) -> None:
        """Aggregate ``specialize.*`` sources, registered once per
        substrate and fed by every specialized table built over it."""
        metrics = getattr(services, "metrics", None)
        if metrics is None:
            return
        tables = getattr(services, "specialized_tables", None)
        if tables is None:
            tables = []
            services.specialized_tables = tables
            metrics.gauge(
                "specialize.kernels",
                "specialized kernels built over this substrate",
                source=lambda: len(services.specialized_tables),
            )
            metrics.gauge(
                "specialize.gates",
                "live (profiled) gates across specialized kernels",
                source=lambda: sum(
                    t.live_gate_count() for t in services.specialized_tables
                ),
            )
            metrics.gauge(
                "specialize.deny_stubs",
                "deny-and-audit stubs across specialized kernels",
                source=lambda: sum(
                    t.stub_count() for t in services.specialized_tables
                ),
            )
            metrics.counter(
                "specialize.deny_stub_hits",
                "calls refused by deny stubs (unprofiled gates reached)",
                source=lambda: sum(
                    t.deny_stub_hits for t in services.specialized_tables
                ),
            )
            metrics.gauge(
                "specialize.reachable_statements",
                "protected statements reachable through specialized tables",
                source=lambda: sum(
                    t.reachable_statements()
                    for t in services.specialized_tables
                ),
            )
        tables.append(self)


# ---------------------------------------------------------------------------
# the specialized kernel
# ---------------------------------------------------------------------------

class SpecializedKernel(Supervisor):
    """A security kernel reduced to one workload profile's gate set."""

    def __init__(self, services: "KernelServices",
                 profile: GateProfile) -> None:
        self.profile = profile
        self.system_kind = f"specialized:{profile.name}"
        super().__init__(services)

    def _make_table(self) -> SpecializedGateTable:
        return SpecializedGateTable(
            self.services, self.services.audit, self.profile
        )

    def _register_gates(self) -> None:
        for gate in full_kernel_gates():
            if gate.name in self.profile.gates:
                self.gates.register(gate)
            else:
                self.gates.register_stub(gate)

    # -- surface report (what E21 sweeps) -------------------------------------

    def surface_report(self) -> dict:
        """Attack-surface numbers vs. the full kernel, measured from
        the live table (not asserted)."""
        full = full_kernel_gates()
        full_statements = _handler_statements(g.handler for g in full)
        live = self.gates.live_gate_count()
        reachable = self.gates.reachable_statements()
        return {
            "profile": self.profile.name,
            "gates_total": len(full),
            "gates_live": live,
            "deny_stubs": self.gates.stub_count(),
            "gate_reduction": round(1 - live / len(full), 4),
            "reachable_statements": reachable,
            "full_statements": full_statements,
            "statement_reduction": round(
                1 - reachable / full_statements, 4
            ),
            "trained_calls": self.profile.trained_calls,
            "fault_paths": sorted(self.profile.fault_paths),
            "services": sorted(self.profile.services),
        }


def specialize(system_or_services, profile: GateProfile) -> SpecializedKernel:
    """Generate the specialized kernel for ``profile`` over a system's
    (or raw) kernel services."""
    services = getattr(system_or_services, "services", system_or_services)
    return SpecializedKernel(services, profile)
