"""The gate registry: the supervisor's entire perimeter, declared.

A :class:`Gate` is one protected entry point: a name (Multics style,
``hcs_$initiate``), the ring brackets governing who may call it, a
category and removal tag for the censuses of experiments E1/E2, an
argument-validation signature, and the handler.

:class:`GateTable.call` is the single choke point through which every
supervisor invocation passes.  It performs, in order:

1. the hardware ring check (caller's ring inside the gate's call or
   execute bracket) and the cross-ring cost charge (645 vs 6180, E4);
2. argument validation — *before* the handler runs, because
   user-constructed arguments are the classic way to make supervisor
   code malfunction (the paper's linker story);
3. auditing of the invocation and its outcome.

The censuses (how many gates a supervisor exposes, by category) are
computed from this table, so the numbers experiments E1 and E2 report
are properties of the running system, not constants in a bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.config import NUM_RINGS, SystemConfig
from repro.errors import AccessViolation, InvalidArgument, KernelDenial
from repro.hw.rings import RingBrackets, call_cost
from repro.obs import NULL_METERS, NULL_TRACER
from repro.security.audit import AuditLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.services import KernelServices
    from repro.proc.process import Process


# ---------------------------------------------------------------------------
# argument validation
# ---------------------------------------------------------------------------

def _v_int(value: object) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise InvalidArgument(f"expected an integer, got {value!r}")


def _v_uint(value: object) -> None:
    _v_int(value)
    if value < 0:  # type: ignore[operator]
        raise InvalidArgument(f"expected a non-negative integer, got {value!r}")


def _v_str(value: object) -> None:
    if not isinstance(value, str):
        raise InvalidArgument(f"expected a string, got {value!r}")


def _v_name(value: object) -> None:
    _v_str(value)
    from repro.fs.directory import validate_name

    validate_name(value)  # type: ignore[arg-type]


def _v_path(value: object) -> None:
    _v_str(value)
    from repro.fs.directory import split_path

    split_path(value)  # type: ignore[arg-type]


def _v_mode(value: object) -> None:
    _v_str(value)
    from repro.hw.segmentation import AccessMode

    try:
        AccessMode.from_string(value)  # type: ignore[arg-type]
    except ValueError as exc:
        raise InvalidArgument(str(exc)) from None


def _v_pattern(value: object) -> None:
    _v_str(value)
    from repro.security.principal import PrincipalPattern

    try:
        PrincipalPattern.parse(value)  # type: ignore[arg-type]
    except ValueError as exc:
        raise InvalidArgument(str(exc)) from None


def _v_label(value: object) -> None:
    from repro.security.mac import SecurityLabel

    if not isinstance(value, SecurityLabel):
        raise InvalidArgument(f"expected a SecurityLabel, got {value!r}")


def _v_words(value: object) -> None:
    if not isinstance(value, list) or not all(
        isinstance(w, int) and not isinstance(w, bool) for w in value
    ):
        raise InvalidArgument("expected a list of integer words")


def _v_any(value: object) -> None:
    return None


VALIDATORS: dict[str, Callable[[object], None]] = {
    "int": _v_int,
    "uint": _v_uint,
    "segno": _v_uint,
    "str": _v_str,
    "name": _v_name,
    "path": _v_path,
    "mode": _v_mode,
    "pattern": _v_pattern,
    "label": _v_label,
    "words": _v_words,
    "any": _v_any,
}


# ---------------------------------------------------------------------------
# gates
# ---------------------------------------------------------------------------

#: Default brackets for a user-callable kernel gate.
USER_GATE = RingBrackets(0, 0, NUM_RINGS - 1)
#: Brackets for gates callable only by trusted rings (<= 1).
PRIVILEGED_GATE = RingBrackets(0, 0, 1)


@dataclass(frozen=True)
class Gate:
    """One protected entry point."""

    name: str
    category: str
    handler: Callable[..., object]
    signature: tuple[str, ...] = ()
    brackets: RingBrackets = USER_GATE
    #: Which removal project eliminates this gate (None = kept by the
    #: minimized kernel): "linker", "naming", "device_io", "login".
    removed_by: str | None = None
    doc: str = ""

    def user_available(self) -> bool:
        """Callable from an ordinary user ring?"""
        from repro.config import USER_RING

        return self.brackets.r3 >= USER_RING


class GateViolationError(AccessViolation):
    """Raised when a call names a gate the supervisor does not export."""


class GateTable:
    """All gates of one supervisor, plus the call choke point."""

    def __init__(self, services: "KernelServices", audit: AuditLog) -> None:
        self.services = services
        self.audit = audit
        self._gates: dict[str, Gate] = {}
        self.calls = 0
        self.rejections = 0
        self.tracer = getattr(services, "tracer", None) or NULL_TRACER
        self.meters = getattr(services, "meters", None) or NULL_METERS
        self.claim_metrics()

    def claim_metrics(self) -> None:
        """Bind the ``gate.*`` metric sources to this table.

        The registry's latest-owner-wins rebinding makes this the
        install step when a system swaps supervisors: the active table
        is the one the counters read.
        """
        metrics = getattr(self.services, "metrics", None)
        if metrics is not None:
            metrics.counter("gate.calls", "gate invocations",
                            source=lambda: self.calls)
            metrics.counter("gate.rejections",
                            "gate calls refused before dispatch",
                            source=lambda: self.rejections)

    # -- registration ---------------------------------------------------------

    def register(self, gate: Gate) -> None:
        if gate.name in self._gates:
            raise ValueError(f"gate {gate.name} already registered")
        for spec in gate.signature:
            if spec not in VALIDATORS:
                raise ValueError(f"unknown validator spec {spec!r}")
        self._gates[gate.name] = gate

    def register_all(self, gates: list[Gate]) -> None:
        for gate in gates:
            self.register(gate)

    # -- census (experiments E1, E2) -------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._gates)

    def __contains__(self, name: str) -> bool:
        return name in self._gates

    def __len__(self) -> int:
        return len(self._gates)

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise GateViolationError(f"no gate named {name!r}") from None

    def user_available_gates(self) -> list[Gate]:
        return [g for g in self._gates.values() if g.user_available()]

    def by_category(self) -> dict[str, int]:
        census: dict[str, int] = {}
        for gate in self._gates.values():
            census[gate.category] = census.get(gate.category, 0) + 1
        return census

    def by_removal_tag(self) -> dict[str, int]:
        census: dict[str, int] = {}
        for gate in self._gates.values():
            tag = gate.removed_by or "kept"
            census[tag] = census.get(tag, 0) + 1
        return census

    # -- the choke point ----------------------------------------------------------

    def call(self, process: "Process", name: str, *args: object) -> object:
        """Invoke a gate on behalf of ``process``.

        Raises the gate's own :class:`KernelDenial` subclasses on
        refusal, :class:`AccessViolation` on ring/gate violations, and
        :class:`InvalidArgument` on malformed arguments.
        """
        if not self.tracer.enabled:
            return self._call(process, name, *args)
        sid = self.tracer.begin("gate", gate=name, caller_ring=process.ring,
                                process=process.name)
        try:
            result = self._call(process, name, *args)
        except BaseException as exc:
            self.tracer.end(sid, outcome=type(exc).__name__)
            raise
        self.tracer.end(sid, outcome="granted")
        return result

    def _call(self, process: "Process", name: str, *args: object) -> object:
        self.calls += 1
        clock = self.services.sim.clock
        meters = self.meters
        gate = self.gate(name)

        # 1. Ring check + cross-ring cost.
        caller_ring = process.ring
        try:
            new_ring = gate.brackets.target_ring(caller_ring)
        except AccessViolation:
            self.rejections += 1
            meters.note_gate_denied(process, name)
            self.audit.log(
                clock.now, self._subject(process), name, "call",
                "denied", f"ring {caller_ring} outside bracket",
                ring=caller_ring, category="ring",
            )
            raise
        cost = call_cost(
            self.services.config.costs,
            self.services.config.ring_mode,
            caller_ring,
            new_ring,
        )
        process.cpu_cycles += cost
        self.services.gate_cycles += cost
        meters.note_gate(process, name, cost,
                         crossed=new_ring != caller_ring)
        if self.tracer.enabled and new_ring != caller_ring:
            self.tracer.point(
                "ring_crossing", origin="gate", gate=name,
                from_ring=caller_ring, to_ring=new_ring,
            )

        # 2. Argument validation before anything else runs.
        if len(args) != len(gate.signature):
            self.rejections += 1
            meters.note_gate_denied(process, name)
            self.audit.log(
                clock.now, self._subject(process), name, "call",
                "denied", f"expected {len(gate.signature)} args, got {len(args)}",
                ring=caller_ring, category="args",
            )
            raise InvalidArgument(
                f"{name}: expected {len(gate.signature)} arguments, "
                f"got {len(args)}"
            )
        for spec, value in zip(gate.signature, args):
            try:
                VALIDATORS[spec](value)
            except InvalidArgument as exc:
                self.rejections += 1
                meters.note_gate_denied(process, name)
                self.audit.log(
                    clock.now, self._subject(process), name, "call",
                    "denied", str(exc),
                    ring=caller_ring, category="args",
                )
                raise

        # 3. Dispatch, in the gate's target ring.
        old_ring = process.ring
        process.ring = new_ring
        try:
            result = gate.handler(self.services, process, *args)
        except KernelDenial as denial:
            meters.note_gate_denied(process, name)
            self.audit.log(
                clock.now, self._subject(process), name, "call",
                "denied", str(denial),
                ring=caller_ring, category="gate",
            )
            raise
        except AccessViolation as violation:
            meters.note_gate_denied(process, name)
            self.audit.log(
                clock.now, self._subject(process), name, "call",
                "denied", str(violation),
                ring=caller_ring, category="gate",
            )
            raise
        except Exception as crash:
            # A handler malfunction in ring 0: a supervisor incident
            # (the legacy linker's disease — see experiment E11).
            self.services.supervisor_incidents += 1
            self.audit.log(
                clock.now, self._subject(process), name, "call",
                "error", f"{type(crash).__name__}: {crash}",
                ring=caller_ring, category="gate",
            )
            raise
        finally:
            process.ring = old_ring
        self.audit.log(
            clock.now, self._subject(process), name, "call", "granted",
            ring=caller_ring, category="gate",
        )
        return result

    @staticmethod
    def _subject(process: "Process") -> str:
        return str(process.principal) if process.principal else process.name
