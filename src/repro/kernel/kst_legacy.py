"""The *unsplit* known segment table — legacy address-space management.

Before Bratt's removal project, the KST was "a data base central to the
management of the address space" that mixed the kernel-necessary
mapping (segment number ↔ file-system object) with purely private
naming state: the tree name each segment was initiated by, the chain of
reference names bound to it, initiate counts, per-entry switches.  All
of it lived in ring 0 and all of its management code was protected.

This module reproduces that structure and its management operations for
the legacy supervisor.  The contrast with the split design —
:mod:`repro.fs.kst` (the surviving common half) plus
:mod:`repro.user.refnames` (the evicted private half) — is what
experiment E3 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidArgument, NoSuchEntry

FIRST_USER_SEGNO = 8


@dataclass
class LegacyKstEntry:
    """One unsplit KST entry: mapping *and* naming state together."""

    segno: int
    uid: int
    is_directory: bool = False
    #: The tree name the segment was first initiated by.
    pathname: str = ""
    #: Reference names bound to this entry (ordered chain).
    refnames: list[str] = field(default_factory=list)
    #: How many initiations are outstanding (terminate decrements).
    initiate_count: int = 0
    #: Multics per-entry switches.
    copy_switch: bool = False
    transparent_usage: bool = False


class LegacyKnownSegmentTable:
    """The unsplit table plus every management operation it needs."""

    def __init__(self, first_segno: int = FIRST_USER_SEGNO, capacity: int = 4096):
        self.first_segno = first_segno
        self.capacity = capacity
        self._by_segno: dict[int, LegacyKstEntry] = {}
        self._by_uid: dict[int, LegacyKstEntry] = {}
        self._by_refname: dict[str, LegacyKstEntry] = {}
        self._by_pathname: dict[str, LegacyKstEntry] = {}
        self._next = first_segno

    # -- initiation ------------------------------------------------------------

    def initiate(
        self,
        uid: int,
        pathname: str = "",
        refname: str | None = None,
        is_directory: bool = False,
        segno: int | None = None,
    ) -> tuple[int, bool]:
        """Map (or re-map) a UID; binds the refname; bumps the count.

        ``segno`` may be supplied when the segment-number choice is made
        elsewhere (the shared descriptor-segment machinery); otherwise
        the table allocates one.
        """
        entry = self._by_uid.get(uid)
        fresh = entry is None
        if entry is None:
            if len(self._by_segno) >= self.capacity:
                raise InvalidArgument("known segment table is full")
            if segno is None:
                segno = self._allocate_segno()
            elif segno in self._by_segno:
                raise InvalidArgument(f"segment number {segno} already known")
            entry = LegacyKstEntry(
                segno=segno,
                uid=uid,
                is_directory=is_directory,
                pathname=pathname,
            )
            self._by_segno[segno] = entry
            self._by_uid[uid] = entry
            if pathname:
                self._by_pathname[pathname] = entry
        entry.initiate_count += 1
        if refname is not None:
            self.bind_refname(entry.segno, refname)
        return entry.segno, not fresh

    def _allocate_segno(self) -> int:
        while self._next in self._by_segno:
            self._next += 1
        segno = self._next
        self._next += 1
        return segno

    # -- reference-name chain management ---------------------------------------

    def bind_refname(self, segno: int, refname: str) -> None:
        entry = self.entry(segno)
        if refname in self._by_refname:
            raise InvalidArgument(f"reference name {refname!r} already bound")
        entry.refnames.append(refname)
        self._by_refname[refname] = entry

    def unbind_refname(self, refname: str) -> int:
        entry = self._by_refname.pop(refname, None)
        if entry is None:
            raise NoSuchEntry(f"no reference name {refname!r}")
        entry.refnames.remove(refname)
        return entry.segno

    def refname_entry(self, refname: str) -> LegacyKstEntry:
        entry = self._by_refname.get(refname)
        if entry is None:
            raise NoSuchEntry(f"no reference name {refname!r}")
        return entry

    def refnames_of(self, segno: int) -> list[str]:
        return list(self.entry(segno).refnames)

    def all_refnames(self) -> list[tuple[str, int]]:
        return sorted(
            (name, entry.segno) for name, entry in self._by_refname.items()
        )

    # -- termination ----------------------------------------------------------

    def terminate(self, segno: int, force: bool = False) -> int | None:
        """Decrement the initiate count; unmap when it reaches zero.

        Returns the UID when the entry is actually removed, else None.
        """
        entry = self.entry(segno)
        entry.initiate_count -= 1
        if entry.initiate_count > 0 and not force:
            return None
        for refname in list(entry.refnames):
            self._by_refname.pop(refname, None)
        if entry.pathname:
            self._by_pathname.pop(entry.pathname, None)
        del self._by_segno[segno]
        del self._by_uid[entry.uid]
        return entry.uid

    def terminate_all(self) -> int:
        count = len(self._by_segno)
        self._by_segno.clear()
        self._by_uid.clear()
        self._by_refname.clear()
        self._by_pathname.clear()
        return count

    # -- queries --------------------------------------------------------------

    def entry(self, segno: int) -> LegacyKstEntry:
        entry = self._by_segno.get(segno)
        if entry is None:
            raise NoSuchEntry(f"segment number {segno} is not known")
        return entry

    def uid_of(self, segno: int) -> int:
        return self.entry(segno).uid

    def segno_of(self, uid: int) -> int:
        entry = self._by_uid.get(uid)
        if entry is None:
            raise NoSuchEntry(f"uid {uid} is not known")
        return entry.segno

    def is_known(self, uid: int) -> bool:
        return uid in self._by_uid

    def pathname_of(self, segno: int) -> str:
        return self.entry(segno).pathname

    def by_pathname(self, pathname: str) -> LegacyKstEntry | None:
        return self._by_pathname.get(pathname)

    def set_copy_switch(self, segno: int, on: bool) -> None:
        self.entry(segno).copy_switch = on

    def entries(self) -> list[LegacyKstEntry]:
        return sorted(self._by_segno.values(), key=lambda e: e.segno)

    def __len__(self) -> int:
        return len(self._by_segno)
