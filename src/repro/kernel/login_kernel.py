"""The legacy in-kernel answering service (removed by project E14).

In the legacy system the whole login apparatus — terminal dialogue,
password collection, session table, greeting, accounting — is
privileged supervisor code behind its own gate family.  The paper's
removal project observes that entering a protected subsystem and
creating a process on login are the same mechanism, so "the large
collection of privileged, protected code used to authenticate and log
in users would become non-privileged code."

The new system keeps exactly one privileged step (``hcs_$proc_create``,
in :mod:`repro.kernel.proc_gates`, which verifies the password) and
moves the rest to :mod:`repro.user.login`.  One period-authentic flaw
is preserved here for experiment E11, marked ``FLAW``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import AuthenticationError, InvalidArgument, NoSuchEntry
from repro.kernel.gates import Gate, PRIVILEGED_GATE
from repro.kernel.proc_gates import hash_password
from repro.proc.process import Process
from repro.security.principal import Principal

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.services import KernelServices


@dataclass
class Session:
    session_id: int
    person: str
    project: str
    tty: str
    pid: int
    logged_in_at: int


class AnsweringService:
    """Kernel-resident session machinery (legacy only)."""

    def __init__(self) -> None:
        self.sessions: dict[int, Session] = {}
        self._ids = itertools.count(1)
        self.motd = "Multics 24.0: load 32.0/100.0"
        self.failed_logins = 0


def _answering(services) -> AnsweringService:
    if not hasattr(services, "answering_service"):
        services.answering_service = AnsweringService()
    return services.answering_service


def h_as_login(services, process, person, project, password, tty):
    """Authenticate and create the user's process, all in ring 0."""
    svc = _answering(services)
    record = services.users.get(person)
    if record is None or record.password_hash != hash_password(password, person):
        svc.failed_logins += 1
        services.audit.log(
            services.sim.clock.now, person, tty, "login", "denied",
            "bad credentials",
        )
        raise AuthenticationError(f"login incorrect for {person}")
    if project not in record.projects:
        svc.failed_logins += 1
        raise AuthenticationError(f"{person} not on project {project}")
    principal = Principal(person, project, clearance=record.clearance)
    user_process = Process(
        f"{person}.{project}", ring=services.config_user_ring(),
        principal=principal,
    )
    services.created_processes[user_process.pid] = user_process
    services.process_creators[user_process.pid] = process.pid
    services.pstate(user_process)
    session = Session(
        next(svc._ids), person, project, tty, user_process.pid,
        services.sim.clock.now,
    )
    svc.sessions[session.session_id] = session
    terminal = services.devices.get(tty)
    if terminal is not None and terminal.device_class == "terminal":
        if terminal.attached_by is None:
            terminal.attach(user_process.pid)
            terminal.write_line(user_process.pid, svc.motd)
    return session.session_id


def h_as_logout(services, process, session_id):
    svc = _answering(services)
    session = svc.sessions.pop(session_id, None)
    if session is None:
        raise NoSuchEntry(f"no session {session_id}")
    target = services.created_processes.pop(session.pid, None)
    if target is not None:
        services.drop_pstate(target)
        terminal = services.devices.get(session.tty)
        if terminal is not None and terminal.attached_by == session.pid:
            terminal.detach(session.pid)
    return session_id


def h_as_whoami(services, process, session_id):
    svc = _answering(services)
    session = svc.sessions.get(session_id)
    if session is None:
        raise NoSuchEntry(f"no session {session_id}")
    return f"{session.person}.{session.project}"


def h_as_change_password(services, process, person, old, new):
    record = services.users.get(person)
    if record is None or record.password_hash != hash_password(old, person):
        raise AuthenticationError("password change refused")
    record.password_hash = hash_password(new, person)
    return True


def h_as_list_sessions(services, process):
    """FLAW (E11): listing sessions is *user-available* in the legacy
    supervisor, disclosing who is logged in from where — an information
    leak the minimized system simply does not offer a gate for."""
    svc = _answering(services)
    return [
        (s.session_id, s.person, s.project, s.tty)
        for s in svc.sessions.values()
    ]


def h_as_set_motd(services, process, text):
    _answering(services).motd = text
    return text


def login_gates() -> list[Gate]:
    tag = "login"
    return [
        Gate("as_$login", "login", h_as_login,
             ("str", "str", "str", "str"), removed_by=tag,
             doc="in-kernel login (authenticate + create process)"),
        Gate("as_$logout", "login", h_as_logout, ("uint",),
             removed_by=tag, doc="end a session"),
        Gate("as_$whoami", "login", h_as_whoami, ("uint",),
             removed_by=tag, doc="session identity"),
        Gate("as_$change_password", "login", h_as_change_password,
             ("str", "str", "str"), removed_by=tag,
             doc="change a password"),
        Gate("as_$list_sessions", "login", h_as_list_sessions, (),
             removed_by=tag, doc="enumerate sessions (FLAW: user-available)"),
        Gate("as_$set_motd", "login", h_as_set_motd, ("str",),
             brackets=PRIVILEGED_GATE, removed_by=tag,
             doc="set the greeting (admin)"),
    ]
