"""The legacy in-kernel dynamic linker (removed by project E1).

"In a project now completed the functions of dynamic intersegment
linking and directing the search of the file system to satisfy a
symbolic reference have been removed from the supervisor.  ...  The
vulnerability is a result of the linker having to accept
user-constructed code segments as input data; the chances of such a
complex 'argument', if maliciously malstructured, causing the linker to
malfunction while executing in the supervisor were demonstrated to be
very high by numerous accidents.  The complexity is apparent in that
the linker's removal eliminated 10% of the gate entry points into the
supervisor."

These ten gates are that 10%.  ``lk_make_linkage`` parses the object
segment *in ring 0* with the period-faithful trusting decoder — the
vulnerability the paper describes.  A malformed object segment drives
the supervisor into a fault (counted as a supervisor incident by the
gate table); the user-ring replacement (:mod:`repro.user.linker`)
parses the same bytes defensively in the user's own ring, where a parse
failure damages nobody but the caller.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvalidArgument, LinkageError, NoSuchEntry
from repro.hw.cpu import CodeSegment, Link
from repro.kernel.gates import Gate
from repro.user.object_format import decode_object_trusting, parse_symbol

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.services import KernelServices


def h_make_linkage(services, process, segno):
    """Parse an object segment (ring 0!) and install its code and links.

    Returns ``(first_link_index, n_links)``.
    """
    words = services.read_segment_words(process, segno)
    # Period-faithful: the supervisor trusts the user-written header.
    obj = decode_object_trusting(words, name=f"seg{segno}")
    process.code_segments[segno] = CodeSegment(
        instructions=obj.code, entry_points=dict(obj.definitions)
    )
    first = len(process.links)
    for sym in obj.links:
        process.links.append(Link(symbol=sym))
    return (first, len(obj.links))


def h_snap(services, process, index):
    """Resolve one symbolic link: refname/search lookup + definition."""
    links = process.links
    if not 0 <= index < len(links):
        raise InvalidArgument(f"no link {index}")
    link = links[index]
    if link.snapped:
        return (link.segno, link.offset)
    ref, entry = parse_symbol(link.symbol)
    state = services.pstate(process)
    try:
        target_segno = state.legacy_kst.refname_entry(ref).segno
    except NoSuchEntry:
        # Walk the in-kernel search rules, then initiate + bind.
        from repro.kernel.naming_kernel import h_initiate_path, h_search

        path = h_search(services, process, ref)
        target_segno = h_initiate_path(services, process, path)
        state.legacy_kst.bind_refname(target_segno, ref)
    code = process.code_segments.get(target_segno)
    if code is None:
        raise LinkageError(
            f"segment {target_segno} has no linkage made (call "
            f"lk_$make_linkage first)"
        )
    offset = code.entry_points.get(entry)
    if offset is None:
        raise LinkageError(f"no definition {entry!r} in segment {target_segno}")
    link.snapped = True
    link.segno = target_segno
    link.offset = offset
    return (target_segno, offset)


def h_force(services, process, index, segno, offset):
    """Manually snap a link to an arbitrary target.

    The hardware gate discipline still applies when the link is used:
    forcing a link at a kernel segment's non-gate offset buys the
    attacker only an access violation at call time.
    """
    links = process.links
    if not 0 <= index < len(links):
        raise InvalidArgument(f"no link {index}")
    link = links[index]
    link.snapped = True
    link.segno = segno
    link.offset = offset
    return (segno, offset)


def h_unsnap_all(services, process):
    count = 0
    for link in process.links:
        if link.snapped:
            link.snapped = False
            link.segno = -1
            link.offset = -1
            count += 1
    return count


def h_link_count(services, process):
    return len(process.links)


def h_get_def(services, process, segno, name):
    code = process.code_segments.get(segno)
    if code is None:
        raise NoSuchEntry(f"segment {segno} has no linkage made")
    offset = code.entry_points.get(name)
    if offset is None:
        raise NoSuchEntry(f"no definition {name!r} in segment {segno}")
    return offset


def h_list_defs(services, process, segno):
    code = process.code_segments.get(segno)
    if code is None:
        raise NoSuchEntry(f"segment {segno} has no linkage made")
    return sorted(code.entry_points.items())


def h_get_linkage(services, process):
    return [
        {
            "index": i,
            "symbol": link.symbol,
            "snapped": link.snapped,
            "segno": link.segno,
            "offset": link.offset,
        }
        for i, link in enumerate(process.links)
    ]


def h_combine_linkage(services, process, segno):
    """Append another object segment's links without (re)loading code."""
    words = services.read_segment_words(process, segno)
    obj = decode_object_trusting(words, name=f"seg{segno}")
    first = len(process.links)
    for sym in obj.links:
        process.links.append(Link(symbol=sym))
    return (first, len(obj.links))


def h_reset_linkage(services, process):
    n = len(process.links)
    process.links.clear()
    process.code_segments.clear()
    return n


def linker_gates() -> list[Gate]:
    """The ten linker gates — 10% of the legacy perimeter (E1)."""
    tag = "linker"
    return [
        Gate("lk_$make_linkage", "linker", h_make_linkage, ("segno",),
             removed_by=tag,
             doc="parse an object segment, install code and links"),
        Gate("lk_$snap", "linker", h_snap, ("uint",),
             removed_by=tag, doc="resolve one symbolic link"),
        Gate("lk_$force", "linker", h_force, ("uint", "segno", "uint"),
             removed_by=tag, doc="manually snap a link"),
        Gate("lk_$unsnap_all", "linker", h_unsnap_all, (),
             removed_by=tag, doc="unsnap every link"),
        Gate("lk_$link_count", "linker", h_link_count, (),
             removed_by=tag, doc="count linkage slots"),
        Gate("lk_$get_def", "linker", h_get_def, ("segno", "name"),
             removed_by=tag, doc="look up a definition"),
        Gate("lk_$list_defs", "linker", h_list_defs, ("segno",),
             removed_by=tag, doc="enumerate definitions"),
        Gate("lk_$get_linkage", "linker", h_get_linkage, (),
             removed_by=tag, doc="dump the linkage section"),
        Gate("lk_$combine_linkage", "linker", h_combine_linkage, ("segno",),
             removed_by=tag, doc="append another segment's links"),
        Gate("lk_$reset_linkage", "linker", h_reset_linkage, (),
             removed_by=tag, doc="clear the linkage section"),
    ]
