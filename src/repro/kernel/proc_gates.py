"""Process and IPC gates (kept by both supervisors).

The headline gate is ``hcs_$proc_create``: the paper's "recently-
realized equivalence between the mechanics of entering a protected
subsystem and the mechanics of creating a new process in response to a
user's log in."  One kernel mechanism creates a process *for an
authenticated principal*; everything else about logging in (terminal
dialogue, sessions, greeting, accounting) is unprivileged user-ring
code in the new system (:mod:`repro.user.login`, experiment E14),
whereas the legacy supervisor carries a whole in-kernel answering
service (:mod:`repro.kernel.login_kernel`).

IPC channels are tied to segments, so the right to send a wakeup is
the right to write the channel's segment — the standard memory
protection controls IPC with no mechanism of its own.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.errors import (
    AccessDenied,
    AuthenticationError,
    InvalidArgument,
    NoSuchEntry,
)
from repro.kernel.gates import Gate, PRIVILEGED_GATE
from repro.proc.ipc import guarded_by_segment_write
from repro.proc.process import Process
from repro.security.mac import BOTTOM, SecurityLabel
from repro.security.principal import Principal

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.services import KernelServices


def hash_password(password: str, salt: str) -> str:
    """The kernel stores only salted hashes (not period-authentic —
    the real system stored scrambled passwords — but the mechanism
    shape is the same: the kernel never reveals the stored secret)."""
    return hashlib.blake2b(
        f"{salt}:{password}".encode(), digest_size=16
    ).hexdigest()


# ---------------------------------------------------------------------------
# IPC handlers
# ---------------------------------------------------------------------------

def _channel_name(pid: int, segno: int) -> str:
    return f"ipc.{pid}.{segno}"


def h_ipc_create_channel(services, process, segno):
    """Create an event channel guarded by write access to ``segno``."""
    if segno not in process.dseg:
        raise InvalidArgument(
            f"segment {segno} is not in the caller's address space"
        )
    name = _channel_name(process.pid, segno)
    services.scheduler.create_channel(
        name, guard=guarded_by_segment_write(segno)
    )
    return name


def h_ipc_delete_channel(services, process, name):
    channel = services.scheduler.channels.get(name)
    if channel is None:
        raise NoSuchEntry(f"no channel {name!r}")
    if not name.startswith(f"ipc.{process.pid}."):
        raise AccessDenied("only the creating process may delete a channel")
    del services.scheduler.channels[name]
    return name


def h_ipc_wakeup(services, process, name):
    """Send a wakeup; the channel's guard enforces authorization."""
    channel = services.scheduler.channels.get(name)
    if channel is None:
        raise NoSuchEntry(f"no channel {name!r}")
    services.scheduler.send_wakeup(channel, sender=process)
    return True


def h_ipc_pending(services, process, name):
    channel = services.scheduler.channels.get(name)
    if channel is None:
        raise NoSuchEntry(f"no channel {name!r}")
    return len(channel.pending)


# ---------------------------------------------------------------------------
# process handlers
# ---------------------------------------------------------------------------

def h_proc_create(services, process, name, person, project, password):
    """The unified subsystem-entry / process-creation mechanism.

    Creates a process owned by ``person.project`` after verifying the
    password against the kernel's registry.  This is the *only*
    privileged step of logging in; the caller may be any user-ring
    program (the login subsystem, a subsystem launcher, a test).
    """
    record = services.users.get(person)
    if record is None or record.password_hash != hash_password(
        password, person
    ):
        services.audit.log(
            services.sim.clock.now,
            str(process.principal) if process.principal else process.name,
            person, "proc_create", "denied", "bad credentials",
        )
        raise AuthenticationError(f"authentication failed for {person}")
    if project not in record.projects:
        raise AuthenticationError(
            f"{person} is not registered on project {project}"
        )
    principal = Principal(person, project, clearance=record.clearance)
    new_process = Process(name, ring=services.config_user_ring(), principal=principal)
    services.created_processes[new_process.pid] = new_process
    services.process_creators[new_process.pid] = process.pid
    services.pstate(new_process)  # allocate kernel-side state now
    return new_process.pid


def h_proc_destroy(services, process, pid):
    target = services.created_processes.get(pid)
    if target is None:
        raise NoSuchEntry(f"no created process {pid}")
    creator = services.process_creators.get(pid)
    same_person = (
        process.principal is not None
        and target.principal is not None
        and process.principal.person == target.principal.person
    )
    if not (same_person or creator == process.pid or process.ring <= 1):
        raise AccessDenied(
            "may only destroy one's own processes or ones one created"
        )
    del services.created_processes[pid]
    services.process_creators.pop(pid, None)
    services.drop_pstate(target)
    return pid


def h_proc_info(services, process, pid):
    target = services.created_processes.get(pid)
    if target is None:
        raise NoSuchEntry(f"no created process {pid}")
    return {
        "pid": target.pid,
        "name": target.name,
        "principal": str(target.principal) if target.principal else None,
        "ring": target.ring,
        "state": target.state.value,
        "cpu_cycles": target.cpu_cycles,
        "page_faults": target.page_faults,
    }


def h_proc_list(services, process):
    return sorted(services.created_processes)


def h_user_register(services, process, person, project, password, label):
    """Administrative: add a user to the kernel registry."""
    services.register_user(person, [project], password, label)
    return person


def h_set_clearance(services, process, person, label):
    record = services.users.get(person)
    if record is None:
        raise NoSuchEntry(f"no user {person}")
    record.clearance = label
    return str(label)


def proc_gates() -> list[Gate]:
    return [
        Gate("hcs_$ipc_create_channel", "ipc", h_ipc_create_channel,
             ("segno",), doc="create a segment-guarded event channel"),
        Gate("hcs_$ipc_delete_channel", "ipc", h_ipc_delete_channel,
             ("str",), doc="delete an event channel"),
        Gate("hcs_$ipc_wakeup", "ipc", h_ipc_wakeup, ("str",),
             doc="send a wakeup (guarded by segment write access)"),
        Gate("hcs_$ipc_pending", "ipc", h_ipc_pending, ("str",),
             doc="count queued wakeups"),
        Gate("hcs_$proc_create", "process", h_proc_create,
             ("name", "str", "str", "str"),
             doc="unified authenticated process creation / subsystem entry"),
        Gate("hcs_$proc_destroy", "process", h_proc_destroy, ("uint",),
             doc="destroy a created process"),
        Gate("hcs_$proc_info", "process", h_proc_info, ("uint",),
             doc="inspect a created process"),
        Gate("hcs_$proc_list", "process", h_proc_list, (),
             brackets=PRIVILEGED_GATE, doc="enumerate processes (admin)"),
        Gate("hcs_$user_register", "process", h_user_register,
             ("str", "str", "str", "label"),
             brackets=PRIVILEGED_GATE, doc="register a user (admin)"),
        Gate("hcs_$set_clearance", "process", h_set_clearance,
             ("str", "label"),
             brackets=PRIVILEGED_GATE, doc="set a user's clearance (admin)"),
    ]
