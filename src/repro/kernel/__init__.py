"""The protected supervisors.

* :mod:`repro.kernel.gates` — the gate registry: every protected entry
  point is declared, ring-checked, and argument-validated here.
* :mod:`repro.kernel.kernel` — the **security kernel**: the paper's
  minimized supervisor.
* :mod:`repro.kernel.legacy` — the **legacy supervisor**: the "before"
  system, with the linker, reference naming, search rules, device I/O,
  and login all inside the protected perimeter.
* :mod:`repro.kernel.metrics` — gate censuses and protected-code size
  measurement for experiments E1-E3.
"""

from repro.kernel.gates import Gate, GateTable
from repro.kernel.services import KernelServices, build_services

__all__ = ["Gate", "GateTable", "KernelServices", "build_services"]
