"""The security kernel — the paper's minimized supervisor.

What it keeps (and why each survives the common-mechanism test):

* file system + minimal address space — information sharing;
* process creation, IPC channels — interprocess communication;
* page control, scheduling — physical resource multiplexing;
* the network attachment — the one external I/O path;
* the reference monitor and MAC lattice — the security model itself.

What it does **not** have: linker gates, naming/refname/search gates,
per-device I/O gates, and the answering service — all were functions
that "could be done as well without the special powers and privileges
of the supervisor."
"""

from __future__ import annotations

from repro.config import SupervisorKind, SystemConfig
from repro.kernel.fs_gates import fs_gates
from repro.kernel.gates import GateTable
from repro.kernel.io_gates import network_gates
from repro.kernel.proc_gates import proc_gates
from repro.kernel.services import KernelServices
from repro.proc.process import Process


class Supervisor:
    """Base: a gate table over the shared services."""

    kind = SupervisorKind.SECURITY_KERNEL

    def __init__(self, services: KernelServices) -> None:
        self.services = services
        self.gates = self._make_table()
        self._register_gates()

    def _make_table(self) -> GateTable:
        """The gate table this supervisor dispatches through.

        Hook: :class:`repro.kernel.specialize.SpecializedKernel`
        substitutes a table whose unprofiled entries are deny stubs.
        """
        return GateTable(self.services, self.services.audit)

    def _register_gates(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- the system call interface ------------------------------------------

    def call(self, process: Process, gate_name: str, *args: object) -> object:
        """Invoke a gate on behalf of ``process`` (the syscall path)."""
        return self.gates.call(process, gate_name, *args)

    # -- census helpers (experiments E1/E2) -------------------------------------

    def gate_count(self) -> int:
        return len(self.gates)

    def user_available_count(self) -> int:
        return len(self.gates.user_available_gates())

    # -- what a certifier must read (experiment E3 et al.) ----------------------

    def protected_modules(self) -> list:
        """The modules whose code executes with supervisor privilege."""
        import repro.fs.acl
        import repro.fs.directory
        import repro.fs.kst
        import repro.fs.uid_layer
        import repro.hw.rings
        import repro.hw.segmentation
        import repro.kernel.fs_gates
        import repro.kernel.gates
        import repro.kernel.io_gates
        import repro.kernel.proc_gates
        import repro.kernel.services
        import repro.security.audit
        import repro.security.mac
        import repro.security.principal
        import repro.security.reference_monitor
        import repro.vm.page_control
        import repro.vm.replacement
        import repro.vm.segment_control

        return [
            repro.hw.segmentation,
            repro.hw.rings,
            repro.vm.page_control,
            repro.vm.replacement,
            repro.vm.segment_control,
            repro.fs.acl,
            repro.fs.directory,
            repro.fs.kst,
            repro.fs.uid_layer,
            repro.security.mac,
            repro.security.principal,
            repro.security.audit,
            repro.security.reference_monitor,
            repro.kernel.gates,
            repro.kernel.services,
            repro.kernel.fs_gates,
            repro.kernel.proc_gates,
            repro.kernel.io_gates,
        ]

    def address_space_components(self) -> list:
        """The protected code managing the address space (E3)."""
        import repro.fs.kst
        from repro.kernel import fs_gates

        return [
            repro.fs.kst,
            fs_gates.initiate_branch,
            fs_gates.h_initiate,
            fs_gates.h_terminate,
            fs_gates.h_terminate_all,
            fs_gates.h_get_uid,
            fs_gates.h_list_kst,
            fs_gates.h_get_root,
        ]


class SecurityKernel(Supervisor):
    """The minimized supervisor."""

    kind = SupervisorKind.SECURITY_KERNEL

    def _register_gates(self) -> None:
        self.gates.register_all(fs_gates())
        self.gates.register_all(proc_gates())
        self.gates.register_all(network_gates())


def build_kernel(config: SystemConfig | None = None) -> SecurityKernel:
    """Convenience: services + kernel in one step."""
    return SecurityKernel(KernelServices(config or SystemConfig()))
