"""Segment control: active segments and their page homes.

A segment's pages live at exactly one memory level each: in a core
frame (recorded in the hardware PTW), on the bulk store, or on disk.
:class:`ActiveSegment` tracks the non-core homes; the PTW list it owns
is shared by every process that has the segment in its address space,
so one page-in serves all sharers (Multics's single-copy sharing).

The :class:`ActiveSegmentTable` (AST) is the kernel's census of
segments currently set up for paging.  Activation allocates disk homes
for all pages; deactivation requires every page to be out of core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import MemoryHierarchy, MemoryLevel
from repro.hw.segmentation import PTW


@dataclass
class PageHome:
    """Where a page lives when it is not in a core frame."""

    level: str   # "bulk" or "disk"
    frame: int


class ActiveSegment:
    """Paging state of one active segment."""

    def __init__(self, uid: int, n_pages: int) -> None:
        if n_pages < 0:
            raise ValueError("negative page count")
        self.uid = uid
        self.ptws: list[PTW] = [PTW() for _ in range(n_pages)]
        #: Non-core home of each page; None while the page is in core.
        self.homes: list[PageHome | None] = [None] * n_pages
        #: How many descriptor segments share this segment's page table.
        self.connections = 0

    @property
    def n_pages(self) -> int:
        return len(self.ptws)

    def resident_pages(self) -> list[int]:
        return [i for i, ptw in enumerate(self.ptws) if ptw.in_core]

    def __repr__(self) -> str:
        return (
            f"<ActiveSegment uid={self.uid} pages={self.n_pages} "
            f"in_core={len(self.resident_pages())}>"
        )


class ActiveSegmentTable:
    """The kernel's table of active segments, keyed by UID."""

    def __init__(self, hierarchy: MemoryHierarchy, lock=None) -> None:
        self.hierarchy = hierarchy
        #: The AST lock (repro.kernel.locks): every activation,
        #: deactivation and destruction of a page table is made while
        #: holding it.  Acquisitions here are accounting-only — AST
        #: mutations happen on the serialized kernel paths — but the
        #: discipline (which operations serialize on which lock) is
        #: explicit and visible in the ``lock.ast.*`` metrics.
        self.lock = lock
        self._segments: dict[int, ActiveSegment] = {}
        self.activations = 0
        self.deactivations = 0

    def _locked(self) -> None:
        if self.lock is not None:
            self.lock.acquire()

    def __contains__(self, uid: int) -> bool:
        return uid in self._segments

    def __len__(self) -> int:
        return len(self._segments)

    def get(self, uid: int) -> ActiveSegment:
        try:
            return self._segments[uid]
        except KeyError:
            raise KeyError(f"segment {uid} is not active") from None

    def segments(self) -> list[ActiveSegment]:
        return list(self._segments.values())

    def activate(
        self, uid: int, n_pages: int, initial_data: list[list[int]] | None = None
    ) -> ActiveSegment:
        """Make a segment pageable: every page gets a disk home.

        ``initial_data`` optionally seeds page contents (used when a
        segment is created with content, e.g. a bootstrap image).
        """
        self._locked()
        if uid in self._segments:
            seg = self._segments[uid]
            seg.connections += 1
            return seg
        seg = ActiveSegment(uid, n_pages)
        disk = self.hierarchy.disk
        for pageno in range(n_pages):
            frame = disk.allocate()
            if initial_data is not None:
                disk.write_page(frame, initial_data[pageno])
            seg.homes[pageno] = PageHome("disk", frame)
        seg.connections = 1
        self._segments[uid] = seg
        self.activations += 1
        return seg

    def deactivate(self, uid: int) -> None:
        """Drop a segment from the AST; its pages must all be out of core.

        (Page control is responsible for flushing first; requiring it
        here keeps the invariant visible.)
        """
        self._locked()
        seg = self.get(uid)
        seg.connections -= 1
        if seg.connections > 0:
            return
        if seg.resident_pages():
            raise RuntimeError(
                f"segment {uid} still has pages in core; flush first"
            )
        del self._segments[uid]
        self.deactivations += 1

    def destroy(self, uid: int) -> None:
        """Free every page home of a (deactivatable) segment."""
        self._locked()
        seg = self.get(uid)
        if seg.resident_pages():
            raise RuntimeError(f"segment {uid} still has pages in core")
        for home in seg.homes:
            if home is not None:
                self.hierarchy.level(home.level).free(home.frame)
        del self._segments[uid]

    def drop(self, uid: int) -> None:
        """Remove a segment from the AST, freeing its non-core homes.

        Core frames must already have been released (page control's
        ``flush_segment`` does that).
        """
        self._locked()
        seg = self.get(uid)
        if seg.resident_pages():
            raise RuntimeError(f"segment {uid} still has pages in core")
        for i, home in enumerate(seg.homes):
            if home is not None:
                self.hierarchy.level(home.level).free(home.frame)
                seg.homes[i] = None
        del self._segments[uid]

    def home_level(self, uid: int, pageno: int) -> MemoryLevel | None:
        """Memory level currently holding the page (None if in core)."""
        home = self.get(uid).homes[pageno]
        if home is None:
            return None
        return self.hierarchy.level(home.level)
