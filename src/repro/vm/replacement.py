"""Page replacement policies.

A policy chooses which resident page to evict.  Candidates are
presented as :class:`Candidate` records; the policy returns an index
into the candidate list.  Policies never touch page *contents* —
the policy/mechanism split of experiment E7 makes that impossibility
structural, but even the in-kernel policies here are written against
the same narrow interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


@dataclass
class Candidate:
    """What a replacement policy may know about a resident page."""

    slot: int          #: opaque identity within this decision round
    used: bool         #: hardware used bit
    modified: bool     #: hardware modified bit
    loaded_at: int     #: time the page came into core


class ReplacementPolicy(Protocol):
    """Interface every policy implements."""

    name: str

    def select(self, candidates: list[Candidate]) -> int:
        """Return the index of the victim in ``candidates``."""
        ...

    def note_loaded(self, slot: int, time: int) -> None:
        """Observe that a page was loaded (for policies keeping state)."""
        ...


class FIFOPolicy:
    """Evict the page longest in core, regardless of use."""

    name = "fifo"

    def select(self, candidates: list[Candidate]) -> int:
        if not candidates:
            raise ValueError("no candidates")
        best = min(range(len(candidates)), key=lambda i: candidates[i].loaded_at)
        return best

    def note_loaded(self, slot: int, time: int) -> None:
        pass


class ClockPolicy:
    """Second-chance: prefer pages with the used bit off.

    The caller clears the used bit of pages the policy passes over
    (that is the 'clock hand sweep'); the policy itself only reads the
    bits it is given, keeping the interface one-way.
    """

    name = "clock"

    def select(self, candidates: list[Candidate]) -> int:
        if not candidates:
            raise ValueError("no candidates")
        unused = [i for i, c in enumerate(candidates) if not c.used]
        if unused:
            # Oldest unused page.
            return min(unused, key=lambda i: candidates[i].loaded_at)
        # Everything recently used: fall back to FIFO order.
        return min(range(len(candidates)), key=lambda i: candidates[i].loaded_at)

    def note_loaded(self, slot: int, time: int) -> None:
        pass


class LRUPolicy:
    """Least-recently-used, approximated by used-bit sampling.

    Each selection round, pages with the used bit set are treated as
    referenced 'now'; the policy keeps a recency estimate per slot.
    """

    name = "lru"

    def __init__(self) -> None:
        self._last_seen: dict[int, int] = {}
        self._round = 0

    def select(self, candidates: list[Candidate]) -> int:
        if not candidates:
            raise ValueError("no candidates")
        self._round += 1
        for cand in candidates:
            if cand.used:
                self._last_seen[cand.slot] = self._round
            self._last_seen.setdefault(cand.slot, 0)
        return min(
            range(len(candidates)),
            key=lambda i: (
                self._last_seen[candidates[i].slot],
                candidates[i].loaded_at,
            ),
        )

    def note_loaded(self, slot: int, time: int) -> None:
        self._last_seen[slot] = self._round


def make_policy(name: str) -> ReplacementPolicy:
    """Policy factory used by configuration code."""
    policies = {"fifo": FIFOPolicy, "clock": ClockPolicy, "lru": LRUPolicy}
    try:
        return policies[name]()
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}") from None
