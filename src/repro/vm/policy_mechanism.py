"""Policy/mechanism separation for page removal (experiment E7).

The paper: "Programs in the most privileged ring would implement the
mechanics of page removal, providing gate entry points for requesting
the movement of a particular page from primary memory to a particular
free block on the bulk store, and for obtaining usage information about
pages in primary memory.  The policy algorithm ... would execute in a
less privileged ring ... The policy algorithm, however, could never
read or write the contents of pages, learn the segment to which each
page belonged, or cause one page to overwrite another ... It could only
cause denial of use."

Here the *mechanism* (:class:`PageRemovalMechanism`) runs conceptually
in ring 0 and exposes exactly three gates.  The *policy* receives only
a :class:`PolicyGates` facade whose methods are closures over the
mechanism — the facade carries no reference a well-typed caller could
follow to page contents, and the gate return values are scrubbed:

* ``usage_info()`` returns opaque slot handles plus used/modified bits
  — never a segment UID, page number, frame number, or data word;
* ``move_to_bulk(slot)`` names the victim only by handle; the free
  bulk block is chosen by the mechanism, so no page can be made to
  overwrite another;
* ``free_count()`` returns one integer.

A malicious policy can therefore evict the wrong pages (denial of use)
but cannot violate confidentiality or integrity.  The test suite and
experiment E7 drive three adversarial policies against the gates to
demonstrate exactly that.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Callable

from repro.errors import InvalidArgument
from repro.vm.page_control import PageControl


@dataclass(frozen=True)
class SlotInfo:
    """Everything a removal policy may know about one resident page."""

    slot: int
    used: bool
    modified: bool
    age: int  #: cycles since the page was loaded


class PageRemovalMechanism:
    """The ring-0 mechanics of page removal, behind three gates."""

    GATE_NAMES = ("usage_info", "move_to_bulk", "free_count")

    def __init__(self, page_control: PageControl) -> None:
        self._pc = page_control
        self._round = itertools.count(1)
        self._salt = 0
        #: slot handle -> (uid, pageno); regenerated every usage_info round
        self._slots: dict[int, tuple[int, int]] = {}
        #: Gate-call audit trail: (gate, argument, outcome).
        self.audit: list[tuple[str, object, str]] = []
        self.invalid_calls = 0
        self.moves_performed = 0

    # -- gate bodies ------------------------------------------------------

    def _gate_usage_info(self) -> list[SlotInfo]:
        """Fresh usage snapshot with new opaque handles.

        Handles are salted hashes so a policy cannot even correlate
        identity across rounds beyond what the bits reveal.
        """
        self._salt = next(self._round)
        self._slots = {}
        now = self._pc.sim.clock.now
        infos = []
        for (uid, pageno), rp in self._pc.resident.items():
            digest = hashlib.blake2b(
                f"{self._salt}:{uid}:{pageno}".encode(), digest_size=6
            ).digest()
            handle = int.from_bytes(digest, "big")
            self._slots[handle] = (uid, pageno)
            ptw = rp.aseg.ptws[rp.pageno]
            infos.append(
                SlotInfo(
                    slot=handle,
                    used=ptw.used,
                    modified=ptw.modified,
                    age=now - rp.loaded_at,
                )
            )
        self.audit.append(("usage_info", None, "ok"))
        return infos

    def _gate_move_to_bulk(self, slot: int) -> bool:
        """Evict the page behind ``slot`` from core to the bulk store.

        The mechanism chooses the destination block; validates the
        handle; quietly makes bulk room if needed.  Returns False when
        the handle is stale (the page left core since the snapshot).
        """
        if not isinstance(slot, int):
            self.invalid_calls += 1
            self.audit.append(("move_to_bulk", slot, "invalid-type"))
            raise InvalidArgument("slot handle must be an integer")
        target = self._slots.get(slot)
        if target is None:
            self.invalid_calls += 1
            self.audit.append(("move_to_bulk", slot, "invalid-handle"))
            raise InvalidArgument(f"no such page slot {slot}")
        rp = self._pc.resident.get(target)
        if rp is None:
            self.audit.append(("move_to_bulk", slot, "stale"))
            return False
        if self._pc.hierarchy.bulk.free_count == 0:
            self._pc._evict_bulk_move()
        self._pc._evict_core_move(rp)
        del self._slots[slot]
        self.moves_performed += 1
        self.audit.append(("move_to_bulk", slot, "moved"))
        return True

    def _gate_free_count(self) -> int:
        self.audit.append(("free_count", None, "ok"))
        return self._pc.hierarchy.core.free_count

    # -- the facade handed to ring 2 --------------------------------------

    def gates(self) -> "PolicyGates":
        return PolicyGates(
            usage_info=self._gate_usage_info,
            move_to_bulk=self._gate_move_to_bulk,
            free_count=self._gate_free_count,
        )


class PolicyGates:
    """The complete interface visible from the policy's ring.

    Instances expose *only* the three gate callables; there is no
    attribute leading back to page frames, segment identities, or data.
    """

    __slots__ = ("usage_info", "move_to_bulk", "free_count")

    def __init__(
        self,
        usage_info: Callable[[], list[SlotInfo]],
        move_to_bulk: Callable[[int], bool],
        free_count: Callable[[], int],
    ) -> None:
        object.__setattr__(self, "usage_info", usage_info)
        object.__setattr__(self, "move_to_bulk", move_to_bulk)
        object.__setattr__(self, "free_count", free_count)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("the gate facade is immutable")


# ---------------------------------------------------------------------------
# Policies (run conceptually in ring 2)
# ---------------------------------------------------------------------------

class RemovalPolicy:
    """Base class: make room by calling gates until ``target`` frames free."""

    name = "abstract"

    def make_room(self, gates: PolicyGates, target: int) -> int:
        """Free frames until ``free_count() >= target``; returns moves made."""
        moves = 0
        guard = 0
        while gates.free_count() < target:
            guard += 1
            if guard > 10_000:
                break  # a policy must never wedge the mechanism's caller
            infos = gates.usage_info()
            if not infos:
                break
            slot = self.choose(infos)
            try:
                if gates.move_to_bulk(slot):
                    moves += 1
            except InvalidArgument:
                continue
        return moves

    def choose(self, infos: list[SlotInfo]) -> int:
        raise NotImplementedError


class SensibleRemovalPolicy(RemovalPolicy):
    """Prefers old, unused, clean pages — a reasonable policy."""

    name = "sensible"

    def choose(self, infos: list[SlotInfo]) -> int:
        ranked = sorted(
            infos, key=lambda i: (i.used, i.modified, -i.age)
        )
        return ranked[0].slot


class ThrashingRemovalPolicy(RemovalPolicy):
    """Malicious: always evicts the *most recently used* pages,
    maximizing refaults — pure denial of use."""

    name = "thrasher"

    def choose(self, infos: list[SlotInfo]) -> int:
        ranked = sorted(infos, key=lambda i: (not i.used, i.age))
        return ranked[0].slot


class ForgingRemovalPolicy(RemovalPolicy):
    """Malicious: fabricates slot handles, probing for a way to name
    pages it was never shown.  Every forged call is rejected."""

    name = "forger"

    def __init__(self) -> None:
        self.rejections = 0

    def make_room(self, gates: PolicyGates, target: int) -> int:
        moves = 0
        for probe in range(64):
            try:
                gates.move_to_bulk(probe * 7919)
            except InvalidArgument:
                self.rejections += 1
        # Falls back to legitimate behaviour so the system still runs.
        moves += SensibleRemovalPolicy().make_room(gates, target)
        return moves

    def choose(self, infos: list[SlotInfo]) -> int:  # pragma: no cover
        return infos[0].slot


class SnoopingRemovalPolicy(RemovalPolicy):
    """Malicious: inspects everything the gate interface returns,
    recording any field that could leak segment identity or contents.

    Its ``loot`` stays empty — the interface exposes nothing to steal —
    which experiment E7 asserts.
    """

    name = "snooper"

    def __init__(self) -> None:
        self.loot: list[object] = []

    def choose(self, infos: list[SlotInfo]) -> int:
        for info in infos:
            for field_name in dir(info):
                if field_name.startswith("_"):
                    continue
                value = getattr(info, field_name)
                # Anything other than the four declared scalars would
                # be a leak.
                if field_name not in ("slot", "used", "modified", "age"):
                    self.loot.append((field_name, value))
        return sorted(infos, key=lambda i: -i.age)[0].slot
