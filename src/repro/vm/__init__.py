"""Virtual memory: segment activation and page control.

The heart of experiments E5 (sequential vs dedicated-process page
control) and E7 (policy/mechanism separation by rings).
"""

from repro.vm.page_control import (
    PageControl,
    ParallelPageControl,
    SequentialPageControl,
    make_page_control,
)
from repro.vm.replacement import ClockPolicy, FIFOPolicy, LRUPolicy
from repro.vm.segment_control import ActiveSegment, ActiveSegmentTable

__all__ = [
    "PageControl",
    "ParallelPageControl",
    "SequentialPageControl",
    "make_page_control",
    "ClockPolicy",
    "FIFOPolicy",
    "LRUPolicy",
    "ActiveSegment",
    "ActiveSegmentTable",
]
