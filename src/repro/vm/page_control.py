"""Page control: servicing missing-page faults.

Two complete designs, matching the paper's description (experiment E5):

**Sequential** (:class:`SequentialPageControl`) — the current-Multics
design the paper criticizes.  The whole cascade runs *in the faulting
process*: if no core frame is free it must first move a page from core
to the bulk store; if the bulk store is full it must first move a page
from the bulk store (via primary memory) to disk; only then can it
bring in the wanted page.  The faulting process executes every step.

**Parallel** (:class:`ParallelPageControl`) — the paper's new design.
One dedicated kernel process (the *core freer*) "runs in a loop making
sure that some small number of free primary memory blocks always
exist"; a second (the *bulk freer*) "keeps space free on the bulk store
by moving pages to disk when required".  The faulting process "can just
wait until a primary memory block is free and then initiate the
transfer of the desired page into primary memory".

Both designs share the same data-movement helpers, so the measured
difference is purely structural: how many steps the *faulting process*
performs, and how long a fault takes under contention.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass

from repro.config import PageControlKind, SystemConfig
from repro.errors import DeviceError
from repro.faults.recovery import RetryPolicy, retry_call
from repro.hw.assoc import cam_uid
from repro.hw.clock import Simulator
from repro.hw.memory import MemoryHierarchy, OutOfFrames
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer
from repro.proc.ipc import Block, Charge, Now, Wakeup
from repro.proc.process import Process
from repro.proc.scheduler import TrafficController
from repro.vm.replacement import Candidate, ReplacementPolicy, make_policy
from repro.vm.segment_control import ActiveSegment, ActiveSegmentTable, PageHome


@dataclass
class ResidentPage:
    """Page control's record of one page currently in a core frame."""

    aseg: ActiveSegment
    pageno: int
    loaded_at: int


@dataclass
class FaultRecord:
    """Measurement of one serviced fault (consumed by experiment E5)."""

    process: str
    started: int
    finished: int
    #: Page-moving steps executed by the *faulting process itself*.
    steps_in_faulter: int

    @property
    def latency(self) -> int:
        return self.finished - self.started


class PageControl:
    """Shared state and data movement for both designs."""

    kind = "abstract"

    def __init__(
        self,
        sim: Simulator,
        scheduler: TrafficController,
        hierarchy: MemoryHierarchy,
        ast: ActiveSegmentTable,
        config: SystemConfig,
        policy: ReplacementPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        locks=None,
    ) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.hierarchy = hierarchy
        self.ast = ast
        self.config = config
        self.policy = policy or make_policy("clock")
        self.tracer = tracer or NULL_TRACER
        #: The global page-table lock (repro.kernel.locks): every fault
        #: service and frame move happens under it.  On the
        #: discrete-event path acquisitions are free (events are
        #: serial); the SMP complex passes a real timestamp and owner to
        #: :meth:`service_sync` so concurrent faulters serialize here —
        #: exactly where the paper's kernel serializes them.
        self.ptl = locks.ptl if locks is not None else None
        #: (uid, pageno) -> ResidentPage for every page in core.
        self.resident: dict[tuple[int, int], ResidentPage] = {}
        #: FIFO census of pages on the bulk store.
        self._bulk_pages: deque[tuple[ActiveSegment, int]] = deque()
        self._io_seq = itertools.count()
        # Fault plane: injector rides on the hierarchy; retry budget
        # comes from the config.
        self.injector = getattr(hierarchy, "injector", None)
        self.retry_policy = RetryPolicy.from_config(config)
        # Metrics.
        self.faults_serviced = 0
        #: Total cycles processes spent waiting on faults (the metering
        #: plane's coverage denominator reads this; the same quantity
        #: is charged per-process in ``_record_fault``).
        self.fault_wait_total = 0
        self.core_evictions = 0
        self.bulk_evictions = 0
        self.transfer_retries = 0
        self.fault_records: list[FaultRecord] = []
        self._h_latency = None
        self._h_steps = None
        if metrics is not None:
            metrics.counter("pc.faults_serviced", "page faults serviced",
                            source=lambda: self.faults_serviced)
            metrics.counter("pc.core_evictions", "pages moved core -> bulk",
                            source=lambda: self.core_evictions)
            metrics.counter("pc.bulk_evictions", "pages moved bulk -> disk",
                            source=lambda: self.bulk_evictions)
            metrics.counter("pc.transfer_retries",
                            "transfers that needed the retry loop",
                            source=lambda: self.transfer_retries)
            metrics.gauge("pc.resident_pages", "pages in core now",
                          source=lambda: len(self.resident))
            self._h_latency = metrics.histogram(
                "pc.fault_latency", "fault service time, cycles")
            self._h_steps = metrics.histogram(
                "pc.fault_steps", "page-moves executed by the faulter")

    # ------------------------------------------------------------------
    # data movement primitives (no simulated waiting here)
    # ------------------------------------------------------------------

    def _retry(self, site: str, thunk):
        """Run a transfer with the bounded-retry policy.

        Returns ``(result, backoff_cycles)``; the backoff is folded into
        the cost the caller charges to simulated time, so recovery slows
        the workload down instead of sleeping the host.
        """
        result, spent = retry_call(
            thunk, self.retry_policy, self.injector, site, tracer=self.tracer
        )
        if spent:
            self.transfer_retries += 1
        return result, spent

    def _page_in_move(self, aseg: ActiveSegment, pageno: int) -> int:
        """Move a page from its home into a free core frame.

        Returns the transfer cost.  Raises :class:`OutOfFrames` if core
        is full (callers make room first).
        """
        home = aseg.homes[pageno]
        if home is None:
            return 0  # already in core (another faulter won the race)
        src = self.hierarchy.level(home.level)
        dst_frame, backoff = self._retry(
            "pc.page_in",
            lambda: self.hierarchy.transfer(src, home.frame, self.hierarchy.core),
        )
        aseg.homes[pageno] = None
        aseg.ptws[pageno].place(dst_frame)
        # The page may land in a different frame than any cached
        # translation remembers: cam it everywhere before anyone hits.
        cam_uid(aseg.uid, pageno)
        if home.level == "bulk":
            self._bulk_census_remove(aseg, pageno)
        self.resident[(aseg.uid, pageno)] = ResidentPage(
            aseg, pageno, self.sim.clock.now
        )
        self.policy.note_loaded(hash((aseg.uid, pageno)), self.sim.clock.now)
        return self.hierarchy.transfer_cost(src, self.hierarchy.core) + backoff

    def _evict_core_move(self, rp: ResidentPage) -> int:
        """Move one resident page core -> bulk.  Bulk must have room."""
        ptw = rp.aseg.ptws[rp.pageno]
        assert ptw.in_core and ptw.frame is not None
        bulk_frame, backoff = self._retry(
            "pc.evict_core",
            lambda: self.hierarchy.transfer(
                self.hierarchy.core, ptw.frame, self.hierarchy.bulk
            ),
        )
        ptw.evict()
        # Broadcast cam: every process sharing this segment must stop
        # honouring its cached translation before the frame is reused.
        cam_uid(rp.aseg.uid, rp.pageno)
        rp.aseg.homes[rp.pageno] = PageHome("bulk", bulk_frame)
        self._bulk_pages.append((rp.aseg, rp.pageno))
        del self.resident[(rp.aseg.uid, rp.pageno)]
        self.core_evictions += 1
        return (
            self.hierarchy.transfer_cost(self.hierarchy.core, self.hierarchy.bulk)
            + backoff
        )

    def _evict_bulk_move(self) -> int:
        """Move the oldest bulk-store page bulk -> disk.

        Historically this went *via primary memory*; the cost charged is
        the sum of both transfers even though the simulation moves the
        data directly.
        """
        if not self._bulk_pages:
            raise OutOfFrames("bulk store has no evictable page")
        # Peek first, pop only after the transfer lands: a fatal
        # transfer must not lose the page from the census.
        aseg, pageno = self._bulk_pages[0]
        home = aseg.homes[pageno]
        assert home is not None and home.level == "bulk"
        disk_frame, backoff = self._retry(
            "pc.evict_bulk",
            lambda: self.hierarchy.transfer(
                self.hierarchy.bulk, home.frame, self.hierarchy.disk
            ),
        )
        self._bulk_pages.popleft()
        aseg.homes[pageno] = PageHome("disk", disk_frame)
        self.bulk_evictions += 1
        return self.hierarchy.transfer_cost(
            self.hierarchy.bulk, self.hierarchy.core
        ) + self.hierarchy.transfer_cost(
            self.hierarchy.core, self.hierarchy.disk
        ) + backoff

    def deactivate_segment(self, aseg: ActiveSegment) -> int:
        """Write every resident page back to a disk home and evict it
        (segment deactivation, e.g. at process destruction).

        Returns the number of pages written back.  Note the written
        pages now live in disk frames; whether those frames are cleared
        when later freed is the residue question of experiment E11.
        """
        if self.ptl is not None:
            self.ptl.acquire(self.sim.clock.now)
        written = 0
        for pageno in aseg.resident_pages():
            ptw = aseg.ptws[pageno]
            # Read (retrying parity hits) before allocating the disk
            # frame, so a fatal read leaks no storage.
            data, _ = self._retry(
                "pc.writeback",
                lambda f=ptw.frame: self.hierarchy.core.read_page(f),
            )
            disk_frame = self.hierarchy.disk.allocate()
            self.hierarchy.disk.write_page(disk_frame, data)
            self.hierarchy.core.free(ptw.frame)
            ptw.evict()
            cam_uid(aseg.uid, pageno)
            aseg.homes[pageno] = PageHome("disk", disk_frame)
            self.resident.pop((aseg.uid, pageno), None)
            written += 1
        return written

    def flush_segment(self, aseg: ActiveSegment) -> None:
        """Throw every page of a segment out of core and off the bulk
        store census (used when a segment is deleted)."""
        if self.ptl is not None:
            self.ptl.acquire(self.sim.clock.now)
        for pageno in aseg.resident_pages():
            ptw = aseg.ptws[pageno]
            self.hierarchy.core.free(ptw.frame)
            ptw.evict()
            self.resident.pop((aseg.uid, pageno), None)
        # Segment deletion invalidates everything cached for it,
        # including fetch-legality entries.
        cam_uid(aseg.uid)
        self._bulk_pages = deque(
            (seg, page) for seg, page in self._bulk_pages if seg is not aseg
        )

    def _bulk_census_remove(self, aseg: ActiveSegment, pageno: int) -> None:
        try:
            self._bulk_pages.remove((aseg, pageno))
        except ValueError:
            pass

    def _choose_core_victim(self) -> ResidentPage:
        """Ask the replacement policy for a victim among resident pages."""
        return self._choose_core_victims(1)[0]

    def _choose_core_victims(self, want: int) -> list[ResidentPage]:
        """One replacement round choosing up to ``want`` victims.

        The policy picks the first victim from the full candidate
        census.  The clock-hand sweep then clears every used bit, after
        which any further selection this round degenerates to FIFO
        order — so the rest of the batch is taken directly from the
        oldest resident pages (``resident`` iterates in insertion
        order and pages are loaded at non-decreasing clock times)
        instead of re-running the policy over the census once per
        frame.  Batching is what keeps eviction storms at 10k-session
        scale from going quadratic in resident pages.
        """
        pages = list(self.resident.values())
        if not pages:
            raise OutOfFrames("no resident page to evict")
        candidates = [
            Candidate(
                slot=hash((rp.aseg.uid, rp.pageno)),
                used=rp.aseg.ptws[rp.pageno].used,
                modified=rp.aseg.ptws[rp.pageno].modified,
                loaded_at=rp.loaded_at,
            )
            for rp in pages
        ]
        index = self.policy.select(candidates)
        if not 0 <= index < len(pages):
            # A broken (or malicious ring-2) policy returned nonsense;
            # the mechanism substitutes FIFO rather than malfunction.
            index = min(range(len(pages)), key=lambda i: pages[i].loaded_at)
        victims = [pages[index]]
        # Clock-hand sweep: passing over a page clears its used bit.
        for rp in pages:
            rp.aseg.ptws[rp.pageno].used = False
        if want > 1:
            rest = (rp for i, rp in enumerate(pages) if i != index)
            victims.extend(itertools.islice(rest, want - 1))
        return victims

    def _core_eviction_batch(self) -> int:
        """How many frames one synchronous replacement round frees."""
        return max(self.config.free_core_target, self.config.core_frames // 256)

    def _record_fault(
        self, process: Process, started: int, finished: int, steps: int
    ) -> None:
        """The common tail of both designs' fault paths: count the
        fault, charge the wait, and feed the E5 measurement stream."""
        self.faults_serviced += 1
        process.fault_wait_cycles += finished - started
        self.fault_wait_total += finished - started
        record = FaultRecord(process.name, started, finished, steps)
        self.fault_records.append(record)
        if self._h_latency is not None:
            self._h_latency.observe(record.latency)
            self._h_steps.observe(steps)

    # ------------------------------------------------------------------
    # simulated I/O wait
    # ------------------------------------------------------------------

    def _io(self, cost: int):
        """Generator: wait ``cost`` cycles for an I/O transfer."""
        channel = self.scheduler.create_channel(f"pc.io.{next(self._io_seq)}")
        self.sim.schedule(
            cost, lambda: self.scheduler.send_wakeup(channel, sender=None)
        )
        yield Block(channel)

    # ------------------------------------------------------------------
    # the workload-facing reference helper
    # ------------------------------------------------------------------

    def touch(self, process: Process, aseg: ActiveSegment, pageno: int,
              write: bool = False):
        """Generator: one memory reference by ``process``; faults if the
        page is out of core."""
        ptw = aseg.ptws[pageno]
        if not ptw.in_core:
            yield from self.fault(process, aseg, pageno)
            ptw = aseg.ptws[pageno]
        ptw.used = True
        if write:
            ptw.modified = True
        yield Charge(self.config.costs.core_access)

    # ------------------------------------------------------------------
    # synchronous servicing (for CPU-driven execution outside the DES)
    # ------------------------------------------------------------------

    def service_sync(self, aseg: ActiveSegment, pageno: int,
                     now: int | None = None, owner=None) -> int:
        """Service a fault immediately, returning the cycle cost.

        Used by the CPU's missing-page callback, where execution is
        synchronous.  Both designs do the same data movement here; the
        structural difference between them is only observable in the
        discrete-event path.

        ``now``/``owner`` are the SMP complex's concurrency handles: the
        fault is serialized under the global page-table lock at virtual
        time ``now``, any wait for another CPU's hold window is added to
        the returned cycles, and the service cost extends the hold so
        later faulters on other CPUs wait in turn.  Without them
        (uniprocessor / discrete-event callers) the lock is acquired for
        accounting only and the cost is unchanged.
        """
        wait = 0
        if self.ptl is not None:
            wait = self.ptl.acquire(
                self.sim.clock.now if now is None else now, owner
            )
        sid = -1
        if self.tracer.enabled:
            sid = self.tracer.begin(
                "page_fault", design=self.kind, sync=True,
                segment=aseg.uid, page=pageno,
            )
        cost = 0
        try:
            while True:
                if aseg.ptws[pageno].in_core:
                    return cost + wait
                if self.hierarchy.core.free_count == 0:
                    # Synchronous path: free a whole batch per policy
                    # round.  The faulter that hits the full core pays
                    # the batch's transfer cycles; the next batch-many
                    # faulters find free frames.  (The discrete-event
                    # designs keep their one-page-per-step structure —
                    # that structure is what E5 measures.)
                    for rp in self._choose_core_victims(
                        self._core_eviction_batch()
                    ):
                        if self.hierarchy.bulk.free_count == 0:
                            cost += self._evict_bulk_move()
                        cost += self._evict_core_move(rp)
                    continue
                try:
                    cost += self._page_in_move(aseg, pageno)
                except OutOfFrames:
                    continue
                self.faults_serviced += 1
                return cost + wait
        finally:
            if owner is not None and self.ptl is not None:
                # Only a real (SMP) owner extends the hold window: the
                # serialized discrete-event path must never manufacture
                # contention for later callers.
                self.ptl.hold(cost)
            self.tracer.end(sid, cost=cost)

    # ------------------------------------------------------------------

    def fault(self, process: Process, aseg: ActiveSegment, pageno: int):
        """Generator servicing one missing-page fault for ``process``."""
        raise NotImplementedError

    def install(self) -> None:
        """Create any dedicated kernel processes the design needs."""


class SequentialPageControl(PageControl):
    """The old design: the whole cascade runs in the faulting process."""

    kind = "sequential"

    def fault(self, process: Process, aseg: ActiveSegment, pageno: int):
        process.page_faults += 1
        started = yield Now()
        if self.ptl is not None:
            # Discrete-event faulters run serially, so the acquisition
            # is free; it still counts toward the lock discipline.
            self.ptl.acquire(started)
        sid = -1
        if self.tracer.enabled:
            sid = self.tracer.begin(
                "page_fault", design=self.kind,
                process=process.name, segment=aseg.uid, page=pageno,
            )
        steps = 0
        # The generator can be dropped at any yield (fatal injected
        # fault, process destruction): close the span as aborted rather
        # than leaking it with end=None.
        try:
            while True:
                if aseg.ptws[pageno].in_core:
                    break  # another process brought it in meanwhile
                if self.hierarchy.core.free_count == 0:
                    # Make room — and possibly make room to make room.
                    if self.hierarchy.bulk.free_count == 0:
                        cost = self._evict_bulk_move()
                        steps += 1
                        yield from self._io(cost)
                        continue
                    try:
                        victim = self._choose_core_victim()
                        cost = self._evict_core_move(victim)
                    except OutOfFrames:
                        continue
                    steps += 1
                    yield from self._io(cost)
                    continue
                try:
                    cost = self._page_in_move(aseg, pageno)
                except OutOfFrames:
                    continue  # lost a race; start over
                steps += 1
                yield from self._io(cost)
                break
            finished = yield Now()
        except BaseException:
            self.tracer.abort(sid, steps=steps)
            raise
        self.tracer.end(sid, steps=steps)
        self._record_fault(process, started, finished, steps)


class ParallelPageControl(PageControl):
    """The new design: dedicated freer processes keep space available."""

    kind = "parallel"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.core_needed = self.scheduler.create_channel("pc.core_needed")
        self.core_freed = self.scheduler.create_channel("pc.core_freed")
        self.bulk_needed = self.scheduler.create_channel("pc.bulk_needed")
        self.bulk_freed = self.scheduler.create_channel("pc.bulk_freed")
        self.core_freer: Process | None = None
        self.bulk_freer: Process | None = None

    def install(self) -> None:
        """Admit the two dedicated kernel processes."""
        self.core_freer = Process(
            "core_freer", body=self._core_freer_body, ring=0, dedicated=True
        )
        self.bulk_freer = Process(
            "bulk_freer", body=self._bulk_freer_body, ring=0, dedicated=True
        )
        self.scheduler.add_process(self.core_freer)
        self.scheduler.add_process(self.bulk_freer)

    # -- the dedicated processes ----------------------------------------

    def _core_freer_body(self, proc: Process):
        """Keep at least ``free_core_target`` core frames free."""
        target = self.config.free_core_target
        while True:
            if self.hierarchy.core.free_count >= target or not self.resident:
                yield Block(self.core_needed)
                continue
            if self.hierarchy.bulk.free_count == 0:
                # Drive the bulk freer, then wait for it.
                yield Wakeup(self.bulk_needed)
                yield Block(self.bulk_freed)
                continue
            try:
                victim = self._choose_core_victim()
                cost = self._evict_core_move(victim)
            except OutOfFrames:
                continue
            except DeviceError:
                # Retries exhausted on this eviction; the page stays in
                # core and the daemon keeps serving (degraded, not dead).
                continue
            yield from self._io(cost)
            # Tell one waiting faulter a frame is available.
            yield Wakeup(self.core_freed)

    def _bulk_freer_body(self, proc: Process):
        """Keep at least ``free_bulk_target`` bulk frames free."""
        target = self.config.free_bulk_target
        while True:
            if self.hierarchy.bulk.free_count >= target or not self._bulk_pages:
                yield Block(self.bulk_needed)
                continue
            try:
                cost = self._evict_bulk_move()
            except DeviceError:
                continue  # page stays on the bulk census; keep serving
            yield from self._io(cost)
            yield Wakeup(self.bulk_freed)

    # -- the faulting path -------------------------------------------------

    def fault(self, process: Process, aseg: ActiveSegment, pageno: int):
        """The greatly simplified path: wait for a frame, transfer."""
        process.page_faults += 1
        started = yield Now()
        if self.ptl is not None:
            self.ptl.acquire(started)
        sid = -1
        if self.tracer.enabled:
            sid = self.tracer.begin(
                "page_fault", design=self.kind,
                process=process.name, segment=aseg.uid, page=pageno,
            )
        steps = 0
        # As in the sequential design: a dropped generator must close
        # the span as aborted, never leak it with end=None.
        try:
            while True:
                if aseg.ptws[pageno].in_core:
                    break
                if self.hierarchy.core.free_count == 0:
                    yield Wakeup(self.core_needed)
                    yield Block(self.core_freed)
                    continue
                try:
                    cost = self._page_in_move(aseg, pageno)
                except OutOfFrames:
                    continue
                steps += 1
                # Falling below the low-water mark pre-arms the freer.
                if self.hierarchy.core.free_count < self.config.free_core_target:
                    yield Wakeup(self.core_needed)
                yield from self._io(cost)
                break
            finished = yield Now()
        except BaseException:
            self.tracer.abort(sid, steps=steps)
            raise
        self.tracer.end(sid, steps=steps)
        self._record_fault(process, started, finished, steps)


def make_page_control(
    kind: PageControlKind,
    sim: Simulator,
    scheduler: TrafficController,
    hierarchy: MemoryHierarchy,
    ast: ActiveSegmentTable,
    config: SystemConfig,
    policy: ReplacementPolicy | None = None,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    locks=None,
) -> PageControl:
    """Build (and for the parallel design, install) page control."""
    cls = {
        PageControlKind.SEQUENTIAL: SequentialPageControl,
        PageControlKind.PARALLEL: ParallelPageControl,
    }[kind]
    control = cls(sim, scheduler, hierarchy, ast, config, policy,
                  metrics=metrics, tracer=tracer, locks=locks)
    control.install()
    return control
