"""Interval time-series sampling of the metrics registry.

The registry's :meth:`~repro.obs.registry.MetricsRegistry.snapshot` is
one end-of-run aggregate: a chaos storm that collapses throughput at
t=80k and recovers by t=140k is invisible in it.  The
:class:`TimelineSampler` turns the same instruments into a **time
series**: polled at deterministic points of the simulated run (SMP
lockstep round boundaries, workload-driver burst boundaries), it
records one sample per elapsed sampling interval — per-interval counter
*deltas*, gauge *levels*, and rolling histogram percentiles from the
bounded reservoirs — into a bounded ring exported as a
schema-validated ``repro.timeline/v1`` document.

The design inherits the observability plane's two contracts:

* **Zero simulated-cycle overhead.**  Polling only reads instruments;
  it never charges cycles or schedules events, so the simulated clock
  and every architectural result are byte-identical with the sampler
  on or off (bench E20 asserts the identity).  Off by default via
  ``SystemConfig.timeline``.

* **Determinism.**  Sampling decisions depend only on the simulated
  clock, never the wall clock, and every recorded value is a simulated
  quantity — so same seed, same config ⇒ byte-identical timeline
  documents, per shard and merged (the shard layer folds per-shard
  timelines in shard-id order; see
  :func:`repro.workloads.shards.merge.merge_timelines`).

Samples are aligned to interval *indices*: interval ``k`` covers
simulated time ``[t0 + k·interval, t0 + (k+1)·interval)`` and at most
one sample is ever recorded per index (the first poll at or past the
boundary takes it, covering everything since the previous sample; a
forced end-of-run flush inside an already-sampled interval is
attributed to the next index, keeping indices strictly increasing).
Indices are what the cross-shard merge folds on.
"""

from __future__ import annotations

from collections import deque

from repro.obs.registry import _NAME_RE

#: Timeline document schema identifier and version.
SCHEMA = "repro.timeline/v1"
SCHEMA_VERSION = 1

#: Default sampling interval, in simulated cycles.
DEFAULT_INTERVAL = 2000
#: Default ring capacity, in samples.
DEFAULT_CAPACITY = 512

#: Quantiles recorded per histogram each sample (rolling, over the
#: deterministic reservoir) and their document keys.
PERCENTILES = ((0.50, "p50"), (0.95, "p95"))

#: Keys a timeline config dict (``SystemConfig.timeline``) may carry.
CONFIG_KEYS = ("interval", "capacity", "rules")


def validate_timeline_config(spec: object) -> None:
    """Raise ``ValueError`` unless ``spec`` is a valid timeline config.

    Shape: ``{"interval": int, "capacity": int, "rules": [...]}`` — all
    keys optional; ``rules`` is a health-rule list validated by
    :func:`repro.obs.health.validate_rules`.
    """
    if not isinstance(spec, dict):
        raise ValueError(
            f"timeline config must be a dict, got {type(spec).__name__}"
        )
    unknown = set(spec) - set(CONFIG_KEYS)
    if unknown:
        raise ValueError(
            f"timeline config: unknown keys {sorted(unknown)} "
            f"(known: {CONFIG_KEYS})"
        )
    for key in ("interval", "capacity"):
        if key in spec and (not isinstance(spec[key], int)
                            or spec[key] <= 0):
            raise ValueError(f"timeline config: {key} must be a "
                             f"positive integer, got {spec[key]!r}")
    if "rules" in spec:
        from repro.obs.health import validate_rules

        validate_rules(spec["rules"])


class TimelineSampler:
    """Records interval samples of one registry into a bounded ring."""

    def __init__(self, registry, clock, interval: int = DEFAULT_INTERVAL,
                 capacity: int = DEFAULT_CAPACITY,
                 metrics=None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.registry = registry
        self.clock = clock
        self.interval = interval
        self.capacity = capacity
        self.t0 = clock.now
        self.samples: deque[dict] = deque()
        #: Listeners called with each new sample (the health monitor).
        self.listeners: list = []
        # Accounting (the timeline.* metric sources).
        self.polls = 0
        self.taken = 0
        self.dropped = 0
        self._last_t = clock.now
        self._last_index = -1
        self._next_at = self.t0 + interval
        self._last_counters: dict[str, int] = {
            name: c.value for name, c in registry._counters.items()
        }
        self._last_hist: dict[str, tuple[int, float]] = {
            name: (h.count, h.sum)
            for name, h in registry._histograms.items()
        }
        if metrics is not None:
            metrics.counter("timeline.polls",
                            "sampling-point checks performed",
                            source=lambda: self.polls)
            metrics.counter("timeline.samples", "interval samples recorded",
                            source=lambda: self.taken)
            metrics.counter("timeline.dropped",
                            "samples evicted by the ring capacity",
                            source=lambda: self.dropped)
            metrics.gauge("timeline.interval",
                          "sampling interval, simulated cycles",
                          source=lambda: self.interval)

    # -- sampling --------------------------------------------------------

    def poll(self, force: bool = False) -> bool:
        """Record a sample if an interval boundary has been crossed.

        Called at deterministic points of the run (lockstep round ends,
        burst boundaries); reads instruments only — zero simulated
        cycles.  ``force`` records a sample mid-interval (the driver's
        end-of-run flush) so trailing activity is never lost; the
        interval index still advances, so no index ever gets two
        samples.  Returns whether a sample was recorded.
        """
        self.polls += 1
        now = self.clock.now
        if now <= self._last_t:
            return False
        if not force and now < self._next_at:
            return False
        index = (now - self.t0) // self.interval
        if index <= self._last_index:
            # A forced flush inside an already-sampled interval: the
            # tail activity is attributed to the next index so indices
            # stay strictly increasing (one sample per index).
            index = self._last_index + 1
        registry = self.registry
        counters: dict[str, int] = {}
        last = self._last_counters
        for name, counter in registry._counters.items():
            value = counter.value
            delta = value - last.get(name, 0)
            last[name] = value
            if delta:
                counters[name] = delta
        gauges = {
            name: gauge.value
            for name, gauge in sorted(registry._gauges.items())
        }
        histograms: dict[str, dict] = {}
        for name, hist in sorted(registry._histograms.items()):
            if not hist.count:
                continue
            c0, s0 = self._last_hist.get(name, (0, 0))
            self._last_hist[name] = (hist.count, hist.sum)
            row = {"count": hist.count - c0, "sum": hist.sum - s0}
            for q, key in PERCENTILES:
                row[key] = hist.percentile(q)
            histograms[name] = row
        sample = {
            "index": index,
            "t": now,
            "dt": now - self._last_t,
            "counters": dict(sorted(counters.items())),
            "gauges": gauges,
            "histograms": histograms,
        }
        if len(self.samples) == self.capacity:
            self.samples.popleft()
            self.dropped += 1
        self.samples.append(sample)
        self.taken += 1
        self._last_t = now
        self._last_index = index
        self._next_at = self.t0 + (index + 1) * self.interval
        for listener in self.listeners:
            listener(sample)
        return True

    # -- export ----------------------------------------------------------

    def to_doc(self, breaches: list[dict] | None = None) -> dict:
        """The ring as one ``repro.timeline/v1`` document."""
        return {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "t0": self.t0,
            "interval": self.interval,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "samples": [dict(s) for s in self.samples],
            "breaches": [dict(b) for b in (breaches or [])],
        }


def _check_table(errors: list[str], where: str, table: object,
                 allow_null: bool = False) -> None:
    if not isinstance(table, dict):
        errors.append(f"{where}: must be an object")
        return
    for name, value in table.items():
        if not _NAME_RE.match(name):
            errors.append(f"{where}: bad metric name {name!r}")
        if not (isinstance(value, (int, float)) and not isinstance(
                value, bool)) and not (allow_null and value is None):
            errors.append(f"{where}.{name}: value must be a number")


def validate_timeline(doc: object) -> list[str]:
    """Schema check for one timeline document; returns violations.

    The single source of truth consumed by
    ``scripts/check_bench_schema.py`` for ``repro.timeline/v1``
    exports — keep in sync with :meth:`TimelineSampler.to_doc` and the
    shard merge.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"timeline must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"schema_version must be {SCHEMA_VERSION}, "
                      f"got {doc.get('schema_version')!r}")
    for key in ("t0", "interval", "capacity", "dropped"):
        if not isinstance(doc.get(key), int) or isinstance(
                doc.get(key), bool):
            errors.append(f"{key} must be an integer")
    if isinstance(doc.get("interval"), int) and doc["interval"] <= 0:
        errors.append("interval must be positive")
    if "n_shards" in doc and not isinstance(doc["n_shards"], int):
        errors.append("n_shards must be an integer")
    samples = doc.get("samples")
    if not isinstance(samples, list):
        errors.append("samples must be a list")
        samples = []
    previous = None
    for i, sample in enumerate(samples):
        where = f"samples[{i}]"
        if not isinstance(sample, dict):
            errors.append(f"{where}: must be an object")
            continue
        for key in ("index", "t", "dt"):
            if not isinstance(sample.get(key), int):
                errors.append(f"{where}.{key} must be an integer")
        index = sample.get("index")
        if isinstance(index, int):
            if previous is not None and index <= previous:
                errors.append(
                    f"{where}: index {index} not after {previous}"
                )
            previous = index
        _check_table(errors, f"{where}.counters", sample.get("counters"))
        _check_table(errors, f"{where}.gauges", sample.get("gauges"))
        rows = sample.get("histograms")
        if not isinstance(rows, dict):
            errors.append(f"{where}.histograms must be an object")
            continue
        for name, row in rows.items():
            if not _NAME_RE.match(name):
                errors.append(f"{where}.histograms: bad name {name!r}")
            if not isinstance(row, dict):
                errors.append(f"{where}.histograms.{name}: "
                              "must be an object")
                continue
            missing = {"count", "sum"} - set(row)
            if missing:
                errors.append(f"{where}.histograms.{name}: "
                              f"missing keys {sorted(missing)}")
    breaches = doc.get("breaches")
    if not isinstance(breaches, list):
        errors.append("breaches must be a list")
        breaches = []
    for i, breach in enumerate(breaches):
        where = f"breaches[{i}]"
        if not isinstance(breach, dict):
            errors.append(f"{where}: must be an object")
            continue
        for key in ("t", "index"):
            if not isinstance(breach.get(key), int):
                errors.append(f"{where}.{key} must be an integer")
        for key in ("rule", "kind"):
            if not isinstance(breach.get(key), str) or not breach.get(key):
                errors.append(f"{where}.{key} must be a non-empty string")
        for key in ("value", "limit"):
            if not isinstance(breach.get(key), (int, float)) or isinstance(
                    breach.get(key), bool):
                errors.append(f"{where}.{key} must be a number")
    return errors
