"""Simulated-clock span tracing for the kernel's hot paths.

A :class:`Span` marks one interval of simulated time in a named
category with free-form attributes.  The taxonomy (kept in sync with
the DESIGN.md "Observability" section):

* ``gate``          — one supervisor gate invocation, entry to exit;
* ``ring_crossing`` — one hardware or gate-level ring transition
  (instantaneous: the crossing itself is a point event);
* ``page_fault``    — one missing-page fault service, begin to satisfy;
* ``interrupt``     — delivery of one interrupt to the interceptor;
* ``retry``         — one bounded-retry recovery loop around an I/O op.

Zero cost when disabled: every emitting site is guarded by the
``enabled`` flag (one attribute read), ``begin`` returns the sentinel
``-1`` immediately, and ``end(-1)`` is a no-op — a disabled tracer
allocates nothing and charges no simulated cycles.  Synchronous
sections (gate calls) use the begin/end pair in try/finally; generator
paths (page faults) carry the span id across their yields, so
overlapping faults from different processes trace correctly.

Times come from the shared simulated :class:`repro.hw.clock.Clock`.
Paths that execute synchronously (the simulated clock does not advance
under them) produce zero-duration spans whose *attributes* carry the
cost, e.g. ``cycles`` on gate spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Span:
    """One traced interval of simulated time."""

    name: str
    start: int
    end: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> int | None:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects spans stamped with the simulated clock."""

    __slots__ = ("clock", "enabled", "spans")

    def __init__(self, clock=None, enabled: bool = False) -> None:
        self.clock = clock
        self.enabled = enabled
        self.spans: list[Span] = []

    # -- switches --------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.spans = []

    # -- emission --------------------------------------------------------

    def _now(self) -> int:
        return self.clock.now if self.clock is not None else 0

    def begin(self, name: str, **attrs) -> int:
        """Open a span; returns its id (``-1`` when disabled)."""
        if not self.enabled:
            return -1
        self.spans.append(Span(name, self._now(), None, attrs))
        return len(self.spans) - 1

    def end(self, span_id: int, **attrs) -> None:
        """Close a span opened by :meth:`begin` (no-op for ``-1``)."""
        if span_id < 0 or not self.enabled:
            return
        span = self.spans[span_id]
        span.end = self._now()
        if attrs:
            span.attrs.update(attrs)

    def point(self, name: str, **attrs) -> None:
        """A zero-duration span (instantaneous event)."""
        if not self.enabled:
            return
        now = self._now()
        self.spans.append(Span(name, now, now, attrs))

    # -- queries ---------------------------------------------------------

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0) + 1
        return out

    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.spans]


#: The shared disabled tracer every component defaults to.  Do not
#: enable it — construct a real Tracer(clock, enabled=True) instead, or
#: set ``SystemConfig.tracing`` and let KernelServices build one.
NULL_TRACER = Tracer(clock=None, enabled=False)
