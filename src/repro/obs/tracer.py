"""Simulated-clock span tracing for the kernel's hot paths.

A :class:`Span` marks one interval of simulated time in a named
category with free-form attributes.  The taxonomy (kept in sync with
the DESIGN.md "Observability" section):

* ``gate``          — one supervisor gate invocation, entry to exit;
* ``ring_crossing`` — one hardware or gate-level ring transition
  (instantaneous: the crossing itself is a point event);
* ``page_fault``    — one missing-page fault service, begin to satisfy;
* ``interrupt``     — delivery of one interrupt to the interceptor;
* ``retry``         — one bounded-retry recovery loop around an I/O op.

Zero cost when disabled: every emitting site is guarded by the
``enabled`` flag (one attribute read), ``begin`` returns the sentinel
``-1`` immediately, and ``end(-1)`` is a no-op — a disabled tracer
allocates nothing and charges no simulated cycles.  Synchronous
sections (gate calls) use the begin/end pair in try/finally; generator
paths (page faults) carry the span id across their yields, so
overlapping faults from different processes trace correctly.

Times come from the shared simulated :class:`repro.hw.clock.Clock`.
Paths that execute synchronously (the simulated clock does not advance
under them) produce zero-duration spans whose *attributes* carry the
cost, e.g. ``cycles`` on gate spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Span:
    """One traced interval of simulated time."""

    name: str
    start: int
    end: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> int | None:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects spans stamped with the simulated clock."""

    __slots__ = ("clock", "enabled", "spans")

    def __init__(self, clock=None, enabled: bool = False) -> None:
        self.clock = clock
        self.enabled = enabled
        self.spans: list[Span] = []

    # -- switches --------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.spans = []

    # -- emission --------------------------------------------------------

    def _now(self) -> int:
        return self.clock.now if self.clock is not None else 0

    def begin(self, name: str, **attrs) -> int:
        """Open a span; returns its id (``-1`` when disabled)."""
        if not self.enabled:
            return -1
        self.spans.append(Span(name, self._now(), None, attrs))
        return len(self.spans) - 1

    def end(self, span_id: int, **attrs) -> None:
        """Close a span opened by :meth:`begin` (no-op for ``-1``)."""
        if span_id < 0 or not self.enabled:
            return
        span = self.spans[span_id]
        span.end = self._now()
        if attrs:
            span.attrs.update(attrs)

    def abort(self, span_id: int, **attrs) -> None:
        """Close a span whose section did not finish normally.

        Generator paths (page faults) can be dropped mid-service — a
        destroyed process, an injected fatal fault — and a span left
        with ``end=None`` would poison every export.  Aborting closes
        it at the current time and marks it ``aborted`` so consumers
        can tell a completed service from a torn one.
        """
        if span_id < 0 or not self.enabled:
            return
        span = self.spans[span_id]
        span.end = self._now()
        span.attrs["aborted"] = True
        if attrs:
            span.attrs.update(attrs)

    def point(self, name: str, **attrs) -> None:
        """A zero-duration span (instantaneous event)."""
        if not self.enabled:
            return
        now = self._now()
        self.spans.append(Span(name, now, now, attrs))

    # -- queries ---------------------------------------------------------

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def open_spans(self) -> list[Span]:
        """Spans still missing an end time (should be [] when idle)."""
        return [s for s in self.spans if s.end is None]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0) + 1
        return out

    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.spans]

    def to_chrome_trace(self, timeline: dict | None = None) -> dict:
        """The span list as a Chrome trace-event document (Perfetto).

        One pid (the simulated machine) with one tid lane per simulated
        process: spans carrying a ``process`` attribute land in that
        process's lane, everything else (kernel-side work: interrupts,
        retries, synchronous fault service) in lane 0.  Spans are "X"
        (complete) events with simulated-clock microsecond-equivalent
        ``ts``/``dur``; a span still open at export time is emitted with
        ``dur=0`` and ``aborted`` set rather than being dropped.

        ``timeline`` (a ``repro.timeline/v1`` document) appends its
        series as Perfetto counter tracks and its breach log as instant
        events — see :func:`timeline_counter_events` — so a chaos
        storm renders as graphs above the span lanes.
        """
        pid = 1
        lanes: dict[str, int] = {"kernel": 0}
        events: list[dict] = [
            {
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": "simulated multics"},
            },
            {
                "name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": "kernel"},
            },
        ]

        def lane(name: str) -> int:
            tid = lanes.get(name)
            if tid is None:
                tid = lanes[name] = len(lanes)
                events.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"name": name},
                })
            return tid

        for span in self.spans:
            attrs = dict(span.attrs)
            aborted = span.end is None or attrs.get("aborted", False)
            duration = 0 if span.end is None else span.end - span.start
            if aborted:
                attrs["aborted"] = True
            events.append({
                "name": span.name,
                "cat": span.name,
                "ph": "X",
                "ts": span.start,
                "dur": duration,
                "pid": pid,
                "tid": lane(str(attrs.get("process", "kernel"))),
                "args": attrs,
            })
        if timeline is not None:
            events.extend(timeline_counter_events(timeline, pid=pid))
        return {"traceEvents": events, "displayTimeUnit": "ns"}


def timeline_counter_events(doc: dict, pid: int = 1) -> list[dict]:
    """A ``repro.timeline/v1`` document as Perfetto trace events.

    Each counter delta, gauge level, and histogram percentile series
    becomes a "C" (counter) event stream keyed by metric name, so
    Perfetto draws one graph track per series; SLO breaches become "i"
    (instant) events on the process, so they render as markers at the
    simulated time the rule tripped.
    """
    events: list[dict] = []
    for sample in doc.get("samples", []):
        ts = sample["t"]
        for name, value in sample["counters"].items():
            events.append({
                "name": name, "ph": "C", "ts": ts, "pid": pid,
                "tid": 0, "args": {"delta": value},
            })
        for name, value in sample["gauges"].items():
            events.append({
                "name": name, "ph": "C", "ts": ts, "pid": pid,
                "tid": 0, "args": {"value": value},
            })
        for name, row in sample["histograms"].items():
            args = {
                key: value for key, value in row.items()
                if key.startswith("p") and value is not None
            }
            if args:
                events.append({
                    "name": name, "ph": "C", "ts": ts, "pid": pid,
                    "tid": 0, "args": args,
                })
    for breach in doc.get("breaches", []):
        events.append({
            "name": f"breach:{breach['rule']}",
            "ph": "i", "ts": breach["t"], "pid": pid, "tid": 0,
            "s": "p",
            "args": {
                "kind": breach["kind"],
                "value": breach["value"],
                "limit": breach["limit"],
            },
        })
    return events


#: The shared disabled tracer every component defaults to.  Do not
#: enable it — construct a real Tracer(clock, enabled=True) instead, or
#: set ``SystemConfig.tracing`` and let KernelServices build one.
NULL_TRACER = Tracer(clock=None, enabled=False)
