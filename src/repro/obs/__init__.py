"""The observability plane: metrics, meters, tracing, audit trail.

See :mod:`repro.obs.registry` for instruments and the snapshot schema,
:mod:`repro.obs.tracer` for the span taxonomy and the Chrome trace
export, :mod:`repro.obs.meters` for per-process/per-gate cycle
attribution, and :mod:`repro.obs.audit` for the bounded security-audit
trail.  The system facade wires one of each through
:class:`repro.kernel.services.KernelServices`; standalone components
(a bare CPU, a bench-built scheduler) accept them as optional
constructor arguments.
"""

from repro.obs.audit import LEVELS, AuditTrail, TrailRecord
from repro.obs.health import HealthMonitor, validate_rules
from repro.obs.meters import NULL_METERS, GateMeter, Meters, ProcessMeter
from repro.obs.registry import (
    NAME_RE,
    SCHEMA,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_snapshot,
)
from repro.obs.timeline import (
    TimelineSampler,
    validate_timeline,
    validate_timeline_config,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Span,
    Tracer,
    timeline_counter_events,
)

__all__ = [
    "NAME_RE",
    "SCHEMA",
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "validate_snapshot",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "timeline_counter_events",
    "NULL_METERS",
    "Meters",
    "ProcessMeter",
    "GateMeter",
    "LEVELS",
    "AuditTrail",
    "TrailRecord",
    "TimelineSampler",
    "validate_timeline",
    "validate_timeline_config",
    "HealthMonitor",
    "validate_rules",
]
