"""The observability plane: one metrics namespace, one span tracer.

See :mod:`repro.obs.registry` for instruments and the snapshot schema,
:mod:`repro.obs.tracer` for the span taxonomy.  The system facade wires
one :class:`MetricsRegistry` and one :class:`Tracer` through
:class:`repro.kernel.services.KernelServices`; standalone components
(a bare CPU, a bench-built scheduler) accept them as optional
constructor arguments.
"""

from repro.obs.registry import (
    SCHEMA,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_snapshot,
)
from repro.obs.tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "validate_snapshot",
    "NULL_TRACER",
    "Span",
    "Tracer",
]
