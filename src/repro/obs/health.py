"""Declarative SLO rules evaluated over the interval timeline.

The paper's availability argument — "denial of use, never wrong data"
— is a statement about *service levels over time*: under a chaos storm
the system may slow down, but audited denials must stay complete and
recovery must follow.  The :class:`HealthMonitor` turns that into
checkable configuration: a list of declarative rules, each bound to
one metric series in the timeline samples, evaluated per interval as
the :class:`~repro.obs.timeline.TimelineSampler` records them.  Every
violation lands in a bounded breach log stamped with the simulated
time and interval index, so a bench (R2, E20) can assert "breaches
confined to the storm window, none after recovery" directly from the
exported document.

Rule kinds (``kind`` key):

* ``rate_floor`` — counter delta per interval must be >= ``min``.
  Optional ``when`` names a second counter that gates evaluation: the
  rule only fires in intervals where the ``when`` counter moved (e.g.
  "completions per interval >= N, but only in intervals that admitted
  work").
* ``rate_ceiling`` — counter delta per interval must be <= ``max``
  (``max: 0`` expresses completeness invariants such as "no audit
  records dropped, ever").
* ``gauge_floor`` / ``gauge_ceiling`` — the gauge's sampled level must
  be >= ``min`` / <= ``max``.
* ``percentile_ceiling`` — a histogram's rolling percentile (``q``,
  default 0.95) must be <= ``max``.

Like the sampler, evaluation reads sample dicts only: zero simulated
cycles, identical architectural results with the monitor on or off.
"""

from __future__ import annotations

#: Rule kinds and the keys each accepts beyond the common set.
KINDS = {
    "rate_floor": {"min", "when"},
    "rate_ceiling": {"max"},
    "gauge_floor": {"min"},
    "gauge_ceiling": {"max"},
    "percentile_ceiling": {"max", "q"},
}

#: Keys every rule carries.
COMMON_KEYS = {"name", "kind", "metric"}

#: Default breach-log bound.
DEFAULT_LOG_CAPACITY = 1024


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_rules(rules: object) -> None:
    """Raise ``ValueError`` unless ``rules`` is a valid SLO rule list."""
    if not isinstance(rules, (list, tuple)):
        raise ValueError(
            f"health rules must be a list, got {type(rules).__name__}"
        )
    seen: set[str] = set()
    for i, rule in enumerate(rules):
        where = f"health rule [{i}]"
        if not isinstance(rule, dict):
            raise ValueError(f"{where}: must be a dict")
        kind = rule.get("kind")
        if kind not in KINDS:
            raise ValueError(
                f"{where}: kind must be one of {sorted(KINDS)}, got {kind!r}"
            )
        allowed = COMMON_KEYS | KINDS[kind]
        unknown = set(rule) - allowed
        if unknown:
            raise ValueError(
                f"{where}: unknown keys {sorted(unknown)} for kind {kind!r}"
            )
        name = rule.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{where}: name must be a non-empty string")
        if name in seen:
            raise ValueError(f"{where}: duplicate rule name {name!r}")
        seen.add(name)
        metric = rule.get("metric")
        if not isinstance(metric, str) or not metric:
            raise ValueError(f"{where}: metric must be a non-empty string")
        bound_key = "min" if kind.endswith("_floor") else "max"
        if not _is_number(rule.get(bound_key)):
            raise ValueError(
                f"{where}: kind {kind!r} requires a numeric {bound_key!r}"
            )
        if "when" in rule and (not isinstance(rule["when"], str)
                               or not rule["when"]):
            raise ValueError(f"{where}: when must be a non-empty string")
        if "q" in rule and not (_is_number(rule["q"])
                                and 0.0 <= rule["q"] <= 1.0):
            raise ValueError(f"{where}: q must be a number in [0, 1]")


class HealthMonitor:
    """Evaluates SLO rules on each timeline sample; logs breaches."""

    def __init__(self, rules, metrics=None,
                 log_capacity: int = DEFAULT_LOG_CAPACITY) -> None:
        validate_rules(rules)
        if log_capacity <= 0:
            raise ValueError("log_capacity must be positive")
        self.rules = [dict(rule) for rule in rules]
        self.log_capacity = log_capacity
        self.breaches: list[dict] = []
        self.evaluations = 0
        self.breached = 0
        self.log_dropped = 0
        if metrics is not None:
            metrics.counter("health.evaluations",
                            "per-interval rule evaluations performed",
                            source=lambda: self.evaluations)
            metrics.counter("health.breaches", "SLO rule violations observed",
                            source=lambda: self.breached)
            metrics.gauge("health.rules", "SLO rules configured",
                          source=lambda: len(self.rules))
            metrics.gauge("health.ok",
                          "1 while no rule has ever breached, else 0",
                          source=lambda: 0 if self.breached else 1)

    # -- evaluation ------------------------------------------------------

    def observe(self, sample: dict) -> None:
        """Evaluate every rule against one timeline sample.

        Registered as a sampler listener; called once per recorded
        interval.  A rule whose metric is absent from the sample simply
        does not fire (counters only appear when they moved; a missing
        series is "no activity", not an error).
        """
        for rule in self.rules:
            value = self._value(rule, sample)
            if value is None:
                continue
            self.evaluations += 1
            if rule["kind"].endswith("_floor"):
                limit = rule["min"]
                ok = value >= limit
            else:
                limit = rule["max"]
                ok = value <= limit
            if ok:
                continue
            self.breached += 1
            if len(self.breaches) == self.log_capacity:
                self.breaches.pop(0)
                self.log_dropped += 1
            self.breaches.append({
                "t": sample["t"],
                "index": sample["index"],
                "rule": rule["name"],
                "kind": rule["kind"],
                "value": value,
                "limit": limit,
            })

    def _value(self, rule: dict, sample: dict):
        """The rule's observed value in this sample, or None to skip."""
        kind = rule["kind"]
        metric = rule["metric"]
        if kind in ("rate_floor", "rate_ceiling"):
            when = rule.get("when")
            if when is not None and not sample["counters"].get(when):
                return None
            # Absent counter == zero delta: floors must still see idle
            # intervals (when-gated above); ceilings trivially pass.
            return sample["counters"].get(metric, 0)
        if kind in ("gauge_floor", "gauge_ceiling"):
            return sample["gauges"].get(metric)
        row = sample["histograms"].get(metric)
        if row is None:
            return None
        q = rule.get("q", 0.95)
        return row.get(f"p{round(q * 100)}")

    # -- export ----------------------------------------------------------

    def to_rows(self) -> list[dict]:
        """The breach log as plain rows for the timeline document."""
        return [dict(b) for b in self.breaches]
