"""Metering: per-process and per-gate simulated-cycle attribution.

Real Multics answered "where did the time go?" with its metering
commands — ``total_time_meters``, ``traffic_control_meters``,
``file_system_meters`` — each a formatted report over counters the
supervisor accumulated as a side effect of normal operation.  This
module is that layer for the simulation: every simulated cycle the
system charges anywhere (scheduler ``Charge`` simcalls, gate-call
costs, CPU stack-machine execution, page-fault waits) is attributed to
a per-process bucket, and every supervisor gate gets its own
call/denial/cycle meter.

Discipline (same as :mod:`repro.obs.registry`): accumulation is plain
integer arithmetic on the hot path and **never touches the simulated
clock** — metering on or off, a workload runs in identical simulated
cycles.  The boundaries feed the meters:

* :meth:`Meters.track` — process admission (scheduler) and first kernel
  contact; live processes are *polled* for their own accounting fields
  (``cpu_cycles``, ``fault_wait_cycles``, ``page_faults``) at snapshot
  time, so those charges cost nothing extra to attribute;
* :meth:`Meters.note_gate` — the gate choke point, charging the
  ring-crossing cost to both the per-gate and per-process meters;
* :meth:`Meters.note_execution` — one ``CPU.execute`` run, attributing
  the cycle/AM/walk/crossing deltas to the executing context;
* :meth:`Meters.fold` — process destruction, folding the live fields
  into the bucket so aggregates stay monotonic (the ``_am_retired``
  pattern).

The attribution *coverage* invariant is the point of the whole layer:
``attributed_cycles()`` (everything landed in some process bucket) over
``total_cycles()`` (everything any charging site recorded) is 1.0 when
the wiring is complete, and drops below it exactly when some charged
process escaped tracking — bench E16 asserts >= 95%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.proc.process import Process


@dataclass
class ProcessMeter:
    """Cycle attribution bucket for one process.

    Live accounting (charged cycles, fault waits, fault counts) stays
    on the :class:`Process` and is polled; the fields here are what no
    other layer accumulates per process, plus the folded values of
    destroyed processes.
    """

    pid: int
    name: str
    #: Cycles charged by the CPU while executing for this process.
    exec_cycles: int = 0
    #: Of those, translation cycles resolved by the associative memory.
    am_hit_cycles: int = 0
    #: Translation cycles spent on full SDW/PTW walks.
    walk_cycles: int = 0
    #: Ring transitions (hardware calls + gate entries that crossed).
    ring_crossings: int = 0
    #: Supervisor gate entries and the cycles they charged.
    gate_entries: int = 0
    gate_denials: int = 0
    gate_cycles: int = 0
    # Folded at destruction; live values are polled from the Process.
    folded_cpu_cycles: int = 0
    folded_fault_wait_cycles: int = 0
    folded_page_faults: int = 0


@dataclass
class CpuMeter:
    """Per-CPU attribution bucket for the SMP complex.

    Busy cycles are instructions, translations and calls the CPU
    charged; stall cycles are time spent waiting out another CPU's
    kernel-lock hold window (plus the serialized fault service under
    it).  Both are simulated cycles on the lockstep timeline.
    """

    cpu_id: int
    busy_cycles: int = 0
    stall_cycles: int = 0
    slices: int = 0
    jobs: int = 0

    @property
    def stall_fraction(self) -> float:
        total = self.busy_cycles + self.stall_cycles
        return self.stall_cycles / total if total else 0.0


@dataclass
class GateMeter:
    """Call census for one supervisor gate."""

    name: str
    calls: int = 0
    denials: int = 0
    cycles: int = 0

    @property
    def mean_cycles(self) -> float:
        return self.cycles / self.calls if self.calls else 0.0


class Meters:
    """The metering plane: buckets, totals, and the report formatters."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        #: pid -> live Process (polled for its accounting fields).
        self._live: dict[int, "Process"] = {}
        #: pid -> bucket; buckets are never removed, only folded.
        self._buckets: dict[int, ProcessMeter] = {}
        #: gate name -> meter.
        self._gates: dict[str, GateMeter] = {}
        #: cpu id -> per-CPU bucket (fed by the SMP complex's slices).
        self._cpu_meters: dict[int, CpuMeter] = {}
        #: Every CPU built with these meters (denominator source).
        self._cpus: list = []
        # Denominator sources bound by the owning KernelServices; a
        # standalone Meters (unit tests) counts only what it saw itself.
        self._busy_cycles: Callable[[], int] = lambda: 0
        self._gate_cycles: Callable[[], int] = lambda: 0
        self._fault_wait: Callable[[], int] = lambda: 0

    # -- wiring ----------------------------------------------------------

    def bind_system(
        self,
        busy_cycles: Callable[[], int],
        gate_cycles: Callable[[], int],
        fault_wait: Callable[[], int],
    ) -> None:
        """Bind the system-wide charge totals the coverage denominator
        reads (processor busy cycles, gate costs, fault waits)."""
        self._busy_cycles = busy_cycles
        self._gate_cycles = gate_cycles
        self._fault_wait = fault_wait

    def register_cpu(self, cpu) -> None:
        """Count a CPU's charged cycles in the coverage denominator."""
        if not self.enabled:
            return
        self._cpus.append(cpu)

    # -- accumulation boundaries ----------------------------------------

    def track(self, process: "Process") -> None:
        """Ensure a bucket exists and the live process is polled."""
        if not self.enabled:
            return
        pid = process.pid
        if pid not in self._buckets:
            self._buckets[pid] = ProcessMeter(pid, process.name)
        if pid not in self._live:
            self._live[pid] = process

    def fold(self, process: "Process") -> None:
        """Process destruction: freeze its live accounting into the
        bucket so the aggregates stay monotonic."""
        if not self.enabled:
            return
        live = self._live.pop(process.pid, None)
        if live is None:
            return
        bucket = self._buckets[process.pid]
        bucket.folded_cpu_cycles += live.cpu_cycles
        bucket.folded_fault_wait_cycles += live.fault_wait_cycles
        bucket.folded_page_faults += live.page_faults

    def note_gate(self, process: "Process", gate: str, cycles: int,
                  crossed: bool = False) -> None:
        """One gate entry: charge its cost to both meters."""
        if not self.enabled:
            return
        self.track(process)
        bucket = self._buckets[process.pid]
        bucket.gate_entries += 1
        bucket.gate_cycles += cycles
        if crossed:
            bucket.ring_crossings += 1
        meter = self._gates.get(gate)
        if meter is None:
            meter = self._gates[gate] = GateMeter(gate)
        meter.calls += 1
        meter.cycles += cycles

    def note_gate_denied(self, process: "Process", gate: str) -> None:
        """One refused gate call (before or after the cost charge)."""
        if not self.enabled:
            return
        self.track(process)
        self._buckets[process.pid].gate_denials += 1
        meter = self._gates.get(gate)
        if meter is None:
            meter = self._gates[gate] = GateMeter(gate)
        meter.denials += 1

    def note_execution(self, ctx, cycles: int, am_hit_cycles: int,
                       walk_cycles: int, crossings: int) -> None:
        """Attribute one ``CPU.execute`` run's cycle deltas to the
        executing context (a Process, or any ctx with a ``pid``)."""
        if not self.enabled:
            return
        pid = getattr(ctx, "pid", None)
        if pid is None:
            return  # a bare bench context; nothing to attribute to
        bucket = self._buckets.get(pid)
        if bucket is None:
            bucket = self._buckets[pid] = ProcessMeter(
                pid, getattr(ctx, "name", f"pid{pid}")
            )
            if hasattr(ctx, "cpu_cycles"):
                self._live.setdefault(pid, ctx)
        bucket.exec_cycles += cycles
        bucket.am_hit_cycles += am_hit_cycles
        bucket.walk_cycles += walk_cycles
        bucket.ring_crossings += crossings

    def note_cpu_slice(self, cpu_id: int, busy: int, stall: int,
                       jobs: int = 0) -> None:
        """One lockstep slice on one CPU of the SMP complex."""
        if not self.enabled:
            return
        meter = self._cpu_meters.get(cpu_id)
        if meter is None:
            meter = self._cpu_meters[cpu_id] = CpuMeter(cpu_id)
        meter.busy_cycles += busy
        meter.stall_cycles += stall
        meter.slices += 1
        meter.jobs += jobs

    def cpu_meter(self, cpu_id: int) -> CpuMeter | None:
        return self._cpu_meters.get(cpu_id)

    def gate_usage(self) -> dict[str, GateMeter]:
        """Per-gate meters, keyed by gate name (a shallow copy: the
        profiler reads these to corroborate the audit trace)."""
        return dict(self._gates)

    # -- per-process readbacks ------------------------------------------

    def _live_field(self, pid: int, attr: str) -> int:
        live = self._live.get(pid)
        return getattr(live, attr) if live is not None else 0

    def process_cpu_cycles(self, pid: int) -> int:
        b = self._buckets[pid]
        return b.folded_cpu_cycles + self._live_field(pid, "cpu_cycles")

    def process_fault_wait(self, pid: int) -> int:
        b = self._buckets[pid]
        return (b.folded_fault_wait_cycles
                + self._live_field(pid, "fault_wait_cycles"))

    def process_page_faults(self, pid: int) -> int:
        b = self._buckets[pid]
        return b.folded_page_faults + self._live_field(pid, "page_faults")

    def process_attributed(self, pid: int) -> int:
        """Everything this process accounts for in the numerator."""
        b = self._buckets[pid]
        return (self.process_cpu_cycles(pid)
                + self.process_fault_wait(pid)
                + b.exec_cycles)

    # -- totals and coverage --------------------------------------------

    def attributed_cycles(self) -> int:
        """Cycles landed in some per-process bucket (the numerator)."""
        return sum(self.process_attributed(pid) for pid in self._buckets)

    def total_cycles(self) -> int:
        """Cycles any charging site recorded (the denominator):
        processor busy time + gate costs + CPU execution + fault waits.

        ``process.cpu_cycles`` accumulates both ``Charge`` simcalls
        (mirrored into processor busy time) and gate costs (mirrored
        into the gate total), so numerator and denominator measure the
        same flows from independent sides.
        """
        return (self._busy_cycles()
                + self._gate_cycles()
                + sum(cpu.cycles for cpu in self._cpus)
                + self._fault_wait())

    def coverage(self) -> float:
        """Fraction of total cycles attributed to a bucket (0..1)."""
        total = self.total_cycles()
        return self.attributed_cycles() / total if total else 1.0

    # -- aggregates over buckets (registry sources) ---------------------

    def _sum(self, attr: str) -> int:
        return sum(getattr(b, attr) for b in self._buckets.values())

    def register_metrics(self, registry) -> None:
        """Expose the plane under ``meter.*`` in the shared registry."""
        registry.counter(
            "meter.attributed_cycles",
            "cycles attributed to some process bucket",
            source=self.attributed_cycles,
        )
        registry.counter(
            "meter.total_cycles", "cycles recorded by any charging site",
            source=self.total_cycles,
        )
        registry.gauge(
            "meter.coverage", "attributed/total cycle fraction",
            source=self.coverage,
        )
        registry.counter(
            "meter.exec_cycles", "CPU execution cycles attributed",
            source=lambda: self._sum("exec_cycles"),
        )
        registry.counter(
            "meter.am_hit_cycles", "attributed AM-hit translation cycles",
            source=lambda: self._sum("am_hit_cycles"),
        )
        registry.counter(
            "meter.walk_cycles", "attributed full-walk translation cycles",
            source=lambda: self._sum("walk_cycles"),
        )
        registry.counter(
            "meter.ring_crossings", "attributed ring transitions",
            source=lambda: self._sum("ring_crossings"),
        )
        registry.counter(
            "meter.gate_entries", "attributed supervisor gate entries",
            source=lambda: self._sum("gate_entries"),
        )
        registry.counter(
            "meter.gate_denials", "attributed refused gate calls",
            source=lambda: self._sum("gate_denials"),
        )
        registry.gauge(
            "meter.processes", "processes with a metering bucket",
            source=lambda: len(self._buckets),
        )
        registry.gauge(
            "meter.gates", "gates with a call meter",
            source=lambda: len(self._gates),
        )
        registry.counter(
            "meter.smp_busy_cycles",
            "busy cycles attributed to SMP complex CPUs",
            source=lambda: sum(
                m.busy_cycles for m in self._cpu_meters.values()
            ),
        )
        registry.counter(
            "meter.smp_stall_cycles",
            "lock-stall cycles attributed to SMP complex CPUs",
            source=lambda: sum(
                m.stall_cycles for m in self._cpu_meters.values()
            ),
        )
        registry.gauge(
            "meter.cpus", "CPUs with an attribution bucket",
            source=lambda: len(self._cpu_meters),
        )

    # -- the Multics-style reports --------------------------------------

    def total_time_meters(self) -> str:
        """Where the simulated time went, system-wide."""
        total = self.total_cycles()
        attributed = self.attributed_cycles()
        busy = self._busy_cycles()
        gates = self._gate_cycles()
        execu = self._sum("exec_cycles")
        waits = self._fault_wait()

        def pct(n: int) -> str:
            return f"{100.0 * n / total:6.2f}%" if total else "   n/a"

        lines = [
            "TOTAL TIME METERS",
            f"  total recorded cycles     {total:>12}",
            f"  attributed to processes   {attributed:>12}  {pct(attributed)}",
            f"    scheduler (charged)     {busy:>12}  {pct(busy)}",
            f"    gate calls              {gates:>12}  {pct(gates)}",
            f"    cpu execution           {execu:>12}  {pct(execu)}",
            f"    page-fault waits        {waits:>12}  {pct(waits)}",
            f"    am hits / walks         "
            f"{self._sum('am_hit_cycles'):>6} / {self._sum('walk_cycles')}",
        ]
        return "\n".join(lines)

    def traffic_control_meters(self) -> str:
        """Per-process accounting, in the traffic controller's terms."""
        lines = [
            "TRAFFIC CONTROL METERS",
            f"  {'pid':>5} {'process':<16} {'cpu':>10} {'exec':>10} "
            f"{'faults':>7} {'fault wait':>11} {'gates':>6} {'xring':>6}",
        ]
        for pid in sorted(self._buckets):
            b = self._buckets[pid]
            lines.append(
                f"  {pid:>5} {b.name:<16} "
                f"{self.process_cpu_cycles(pid):>10} {b.exec_cycles:>10} "
                f"{self.process_page_faults(pid):>7} "
                f"{self.process_fault_wait(pid):>11} "
                f"{b.gate_entries:>6} {b.ring_crossings:>6}"
            )
        return "\n".join(lines)

    def processor_meters(self) -> str:
        """Per-CPU slice accounting for the SMP complex."""
        lines = [
            "PROCESSOR METERS",
            f"  {'cpu':>4} {'busy':>12} {'stall':>10} {'stall %':>8} "
            f"{'slices':>7} {'jobs':>6}",
        ]
        for cpu_id in sorted(self._cpu_meters):
            m = self._cpu_meters[cpu_id]
            lines.append(
                f"  {cpu_id:>4} {m.busy_cycles:>12} {m.stall_cycles:>10} "
                f"{100.0 * m.stall_fraction:>7.2f}% "
                f"{m.slices:>7} {m.jobs:>6}"
            )
        return "\n".join(lines)

    def gate_meters(self) -> str:
        """Per-gate call census, busiest first."""
        lines = [
            "GATE METERS",
            f"  {'gate':<28} {'calls':>7} {'denied':>7} "
            f"{'cycles':>10} {'mean':>8}",
        ]
        for meter in sorted(
            self._gates.values(), key=lambda m: (-m.cycles, m.name)
        ):
            lines.append(
                f"  {meter.name:<28} {meter.calls:>7} {meter.denials:>7} "
                f"{meter.cycles:>10} {meter.mean_cycles:>8.1f}"
            )
        return "\n".join(lines)


#: The shared disabled meters standalone components default to.
NULL_METERS = Meters(enabled=False)
