"""The bounded security-audit trail.

:class:`repro.security.audit.AuditLog` is the kernel's unbounded,
in-memory decision log — fine for tests, wrong for an operator surface:
a long-running system must bound its audit storage and say how much it
dropped.  :class:`AuditTrail` is that surface: a ring buffer of frozen
:class:`TrailRecord` entries fed by *every* reference-monitor decision
point (the ``AuditLog`` forwards each record it takes), each carrying
the principal, the object, the ring the request came from, a category
naming the mechanism that decided (``acl``, ``mac``, ``ring``, ``gate``,
``args``, ``revocation``), the decision, and the simulated timestamp.

Levels: ``all`` records every decision, ``deny`` only refusals and
errors, ``off`` nothing.  At any level except ``off`` the completeness
guarantee holds: **every deny raised anywhere appears in the trail**
(until capacity forces the oldest out — ``dropped`` counts those, so a
consumer can tell a complete trail from a truncated one).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass

#: Recognized trail levels, least to most verbose.
LEVELS = ("off", "deny", "all")


@dataclass(frozen=True)
class TrailRecord:
    """One security-relevant decision, as exported."""

    seq: int            #: monotonic sequence number (detects truncation)
    time: int           #: simulated clock at the decision
    principal: str      #: who asked
    object: str         #: what was referenced (path, uid, gate name)
    action: str         #: requested access or invoked operation
    ring: int | None    #: ring the request was made from (None = n/a)
    category: str       #: deciding mechanism: acl|mac|ring|gate|args|...
    decision: str       #: "granted" | "denied" | "error"
    detail: str = ""


class AuditTrail:
    """Bounded ring buffer of security decisions."""

    def __init__(self, capacity: int = 4096, level: str = "all") -> None:
        if level not in LEVELS:
            raise ValueError(f"audit level must be one of {LEVELS}, "
                             f"got {level!r}")
        if capacity <= 0:
            raise ValueError("audit capacity must be positive")
        self.capacity = capacity
        self.level = level
        self._records: deque[TrailRecord] = deque(maxlen=capacity)
        #: Decisions offered to the trail (before level filtering).
        self.seen = 0
        #: Records evicted by the capacity bound after being accepted.
        self.dropped = 0
        #: Denies/errors accepted (the completeness-check numerator).
        self.denials = 0
        self._seq = 0

    # -- feeding ---------------------------------------------------------

    def record(
        self,
        time: int,
        principal: str,
        obj: str,
        action: str,
        decision: str,
        detail: str = "",
        ring: int | None = None,
        category: str = "",
    ) -> None:
        """Offer one decision to the trail (level-filtered, bounded)."""
        self.seen += 1
        if self.level == "off":
            return
        if self.level == "deny" and decision == "granted":
            return
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._seq += 1
        if decision != "granted":
            self.denials += 1
        self._records.append(TrailRecord(
            self._seq, time, principal, obj, action, ring, category,
            decision, detail,
        ))

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[TrailRecord]:
        return list(self._records)

    def denied(self) -> list[TrailRecord]:
        return [r for r in self._records if r.decision != "granted"]

    def by_principal(self, principal: str) -> list[TrailRecord]:
        return [r for r in self._records if r.principal == principal]

    def by_category(self, category: str) -> list[TrailRecord]:
        return [r for r in self._records if r.category == category]

    # -- export ----------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        return [asdict(r) for r in self._records]

    def to_json(self, indent: int | None = 2) -> str:
        """The whole trail as one self-describing JSON document."""
        return json.dumps(
            {
                "schema": "repro.audit/v1",
                "level": self.level,
                "capacity": self.capacity,
                "seen": self.seen,
                "dropped": self.dropped,
                "denials": self.denials,
                "records": self.to_dicts(),
            },
            indent=indent,
        )

    # -- registry wiring -------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Expose the trail under ``audit.*`` in the shared registry."""
        registry.counter("audit.seen", "decisions offered to the trail",
                         source=lambda: self.seen)
        registry.counter("audit.denials", "denies/errors recorded",
                         source=lambda: self.denials)
        registry.counter("audit.dropped",
                         "accepted records evicted by the capacity bound",
                         source=lambda: self.dropped)
        registry.gauge("audit.depth", "records held now",
                       source=lambda: len(self._records))
