"""The kernel-wide metrics registry.

Every measured claim the experiments make (gate counts aside) is a
number some subsystem accumulates at runtime.  Before this module those
numbers were ad-hoc integer attributes scattered across ``hw/``,
``proc/``, ``vm/``, ``io/``, and ``faults/``, and each bench reached
into private fields to read them.  The registry gives every such number
a *name* in one namespace and a uniform snapshot/export path, so a
bench (or an operator) consumes one JSON document instead of a grab-bag
of object attributes.

Three instrument kinds:

* :class:`Counter` — a monotonically non-decreasing count (dispatches,
  faults serviced, messages dropped);
* :class:`Gauge` — a point-in-time level (free core frames, buffer
  backlog);
* :class:`Histogram` — a distribution summary (fault latency, recovery
  backoff ticks): count / sum / min / max / mean.

Hot-path migration rule: subsystems keep their plain integer attributes
(``self.dispatches += 1`` costs nothing and stays readable) and
register the attribute as the instrument's *source* — a zero-argument
callable the registry polls at snapshot time.  The hot path therefore
pays **zero** extra cost for being observable; only ``snapshot()``
pays, and only when called.  Low-frequency sites may instead increment
a source-less instrument directly.

Naming scheme: lowercase dotted paths, ``<subsystem>.<metric>`` —
``sched.dispatches``, ``pc.faults_serviced``, ``mem.core.allocations``,
``io.buffer.overwrites``, ``faults.recovered``, ``gate.cycles``.

Re-registering a name returns the existing instrument; passing a new
``source`` rebinds it (the latest instrument owner wins — e.g. each
CPU a session builds takes over the ``cpu.*`` names).
"""

from __future__ import annotations

import json
import random
import re
from typing import Callable

#: Snapshot schema identifier and version.  Bump the version whenever
#: the snapshot document shape changes incompatibly; the bench-schema
#: guard (scripts/check_bench_schema.py) pins consumers to it.
SCHEMA = "repro.obs/v1"
SCHEMA_VERSION = 1

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
#: Public alias of the naming rule, for lint tests and external tools.
NAME_RE = _NAME_RE


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("name", "doc", "source", "_value")

    def __init__(self, name: str, doc: str = "",
                 source: Callable[[], int] | None = None) -> None:
        self.name = name
        self.doc = doc
        self.source = source
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"{self.name}: counters only go up")
        self._value += n

    @property
    def value(self) -> int:
        return self.source() if self.source is not None else self._value


class Gauge:
    """A point-in-time level; may go up or down."""

    __slots__ = ("name", "doc", "source", "_value")

    def __init__(self, name: str, doc: str = "",
                 source: Callable[[], float] | None = None) -> None:
        self.name = name
        self.doc = doc
        self.source = source
        self._value = 0

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self.source() if self.source is not None else self._value


#: Default reservoir size per histogram.  512 samples bound a
#: histogram's memory at any observation count while keeping
#: nearest-rank percentile estimates stable for the rolling-window
#: reads the timeline sampler performs.
RESERVOIR_SIZE = 512


class Histogram:
    """A distribution summary: count, sum, min, max (mean derived),
    plus a bounded sample reservoir for percentile estimates.

    ``count``/``sum``/``min``/``max`` are **exact** at any scale.  The
    reservoir holds at most ``reservoir_size`` observations via
    Vitter's Algorithm R with a per-name seeded RNG, so memory is O(1)
    in the observation count (a 100k-user run observes hundreds of
    thousands of latencies) and the kept sample — hence every
    percentile read — is a pure function of the observation sequence:
    same run, same percentiles, on any host or shard.
    """

    __slots__ = ("name", "doc", "count", "sum", "min", "max",
                 "reservoir", "reservoir_size", "_rng")

    def __init__(self, name: str, doc: str = "",
                 reservoir_size: int = RESERVOIR_SIZE) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be positive")
        self.name = name
        self.doc = doc
        self.count = 0
        self.sum = 0
        self.min: float | None = None
        self.max: float | None = None
        self.reservoir: list[float] = []
        self.reservoir_size = reservoir_size
        # Seeded by name, not by wall state: two systems observing the
        # same sequence keep byte-identical reservoirs.
        self._rng = random.Random(f"reservoir|{name}")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self.reservoir) < self.reservoir_size:
            self.reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self.reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile over the reservoir (None if empty).

        ``q`` is clamped to [0, 1].  Exact while fewer observations
        than the reservoir size have arrived; a deterministic uniform
        estimate beyond that.
        """
        if not self.reservoir:
            return None
        ordered = sorted(self.reservoir)
        index = int(max(0.0, min(1.0, q)) * (len(ordered) - 1) + 0.5)
        return ordered[max(0, min(len(ordered) - 1, index))]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """One namespace of instruments plus the snapshot/export API."""

    def __init__(self, clock=None) -> None:
        #: Optional simulated clock; snapshots are stamped with its time.
        self.clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- registration (get-or-create) -----------------------------------

    def counter(self, name: str, doc: str = "",
                source: Callable[[], int] | None = None) -> Counter:
        return self._instrument(self._counters, Counter, name, doc, source)

    def gauge(self, name: str, doc: str = "",
              source: Callable[[], float] | None = None) -> Gauge:
        return self._instrument(self._gauges, Gauge, name, doc, source)

    def histogram(self, name: str, doc: str = "") -> Histogram:
        self._check_name(name)
        self._check_kind(name, self._histograms)
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, doc)
        return instrument

    def _check_kind(self, name: str, table: dict) -> None:
        for other in (self._counters, self._gauges, self._histograms):
            if other is not table and name in other:
                raise ValueError(
                    f"metric {name!r} already registered as another kind"
                )

    def _instrument(self, table, cls, name, doc, source):
        self._check_name(name)
        self._check_kind(name, table)
        instrument = table.get(name)
        if instrument is None:
            instrument = table[name] = cls(name, doc, source)
        elif source is not None:
            # Latest owner wins: a rebuilt component (reboot, fresh CPU)
            # takes over its names rather than leaving them dangling.
            instrument.source = source
        return instrument

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"bad metric name {name!r}: want lowercase dotted path "
                "like 'sched.dispatches'"
            )

    # -- queries ---------------------------------------------------------

    def names(self) -> list[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def __contains__(self, name: str) -> bool:
        return (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        )

    # -- snapshot / export ----------------------------------------------

    def snapshot(self) -> dict:
        """One self-describing document with every instrument's value."""
        return {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "clock": self.clock.now if self.clock is not None else None,
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """Counter differences between two snapshots.

        **Counters only.**  Counters are flows, so ``after - before``
        is the activity between the two snapshots; a name present only
        in ``after`` (an instrument registered between the snapshots)
        counts from zero.  Gauges are point-in-time levels and
        histograms are distribution summaries — subtracting either
        produces a number with no physical meaning (a "free frames
        delta" is not a flow of frames; a min/max cannot be
        un-observed) — so both kinds are deliberately absent from the
        result.  Callers that want interval views of those kinds read
        the gauge's level at each boundary, or difference a histogram's
        exact ``count``/``sum`` themselves (what the timeline sampler
        does); ``min``/``max``/percentiles are not differentiable.
        """
        b = before["counters"]
        return {
            name: value - b.get(name, 0)
            for name, value in after["counters"].items()
        }


def validate_snapshot(doc: object) -> list[str]:
    """Schema check for one snapshot document; returns violations.

    This is the single source of truth consumed by the bench-schema
    guard (scripts/check_bench_schema.py) and the tier-1 test — keep it
    in sync with :meth:`MetricsRegistry.snapshot`.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"snapshot must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    if not (doc.get("clock") is None or isinstance(doc.get("clock"), int)):
        errors.append("clock must be an integer or null")
    for section, want_scalar in (("counters", True), ("gauges", True)):
        table = doc.get(section)
        if not isinstance(table, dict):
            errors.append(f"{section} must be an object")
            continue
        for name, value in table.items():
            if not _NAME_RE.match(name):
                errors.append(f"{section}: bad metric name {name!r}")
            if want_scalar and not isinstance(value, (int, float)):
                errors.append(f"{section}.{name}: value must be a number")
    # Bench exports (scripts/run_benches.py, the benchmark export
    # fixture) merge one extra section of derived numbers into the
    # snapshot; validate the merged document, not just the snapshot.
    if "bench" in doc and not isinstance(doc["bench"], dict):
        errors.append("bench section must be an object")
    histograms = doc.get("histograms")
    if not isinstance(histograms, dict):
        errors.append("histograms must be an object")
    else:
        for name, summary in histograms.items():
            if not _NAME_RE.match(name):
                errors.append(f"histograms: bad metric name {name!r}")
            if not isinstance(summary, dict):
                errors.append(f"histograms.{name}: must be an object")
                continue
            missing = {"count", "sum", "min", "max", "mean"} - set(summary)
            if missing:
                errors.append(
                    f"histograms.{name}: missing keys {sorted(missing)}"
                )
    return errors
