"""End-to-end MAC enforcement through the live system (experiment E12).

The lattice lives at the bottom layer (labels are immutable segment
attributes from creation); ACLs provide controlled sharing *within*
what the lattice allows.  These tests drive real sessions with real
clearances against the kernel.

A note on structure: an *upgraded branch* (a segment whose label
dominates its directory's) is how classified data lives in a shareable
tree — anyone may traverse the unclassified directories, but the
reference monitor grants each subject only the lattice-safe SDW modes
on the branch itself.  An *upgraded directory* additionally blocks
traversal by lower-cleared subjects (reading the directory is itself a
read of its label).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MulticsSystem, SecurityLabel, kernel_config
from repro.errors import AccessDenied, AccessViolation, KernelDenial


@pytest.fixture
def mls_system():
    system = MulticsSystem(kernel_config()).boot()
    system.register_user("Low", "Intel", "pw",
                         clearance=SecurityLabel.parse("unclassified"))
    system.register_user("Mid", "Intel", "pw",
                         clearance=SecurityLabel.parse("confidential"))
    system.register_user("High", "Intel", "pw",
                         clearance=SecurityLabel.parse("secret"))
    system.register_user("CryptoU", "Intel", "pw",
                         clearance=SecurityLabel.parse("secret:crypto"))
    return system


class TestCompartmentalization:
    def test_no_read_up_despite_open_acl(self, mls_system):
        """Simple security dominates DAC: an rw ACL cannot grant a low
        subject read access to a secret branch."""
        low = mls_system.login("Low", "Intel", "pw")
        segno = low.create_segment(
            "plans", label=SecurityLabel.parse("secret")
        )
        low.set_acl("plans", "*.Intel", "rw")
        # Even the creating (unclassified) session cannot read it back.
        with pytest.raises(AccessViolation):
            low.read_words(segno, 1)
        # A properly cleared subject can.
        high = mls_system.login("High", "Intel", "pw")
        high_segno = high.initiate(f"{low.home_path}>plans")
        high.read_words(high_segno, 1)

    def test_no_write_down(self, mls_system):
        low = mls_system.login("Low", "Intel", "pw")
        high = mls_system.login("High", "Intel", "pw")
        low.create_segment("public_notes")
        low.set_acl("public_notes", "*.Intel", "rw")
        high_segno = high.initiate(f"{low.home_path}>public_notes")
        with pytest.raises(AccessViolation):
            high.write_words(high_segno, [9])
        high.read_words(high_segno, 1)  # read-down is fine

    def test_blind_write_up(self, mls_system):
        """A low subject may write an upgraded branch (a drop box) but
        never read it back."""
        low = mls_system.login("Low", "Intel", "pw")
        segno = low.create_segment(
            "report", label=SecurityLabel.parse("secret")
        )
        low.write_words(segno, [7])
        with pytest.raises(AccessViolation):
            low.read_words(segno, 1)
        # The cleared reader sees the dropped data.
        low.set_acl("report", "High.Intel", "r")
        high = mls_system.login("High", "Intel", "pw")
        high_segno = high.initiate(f"{low.home_path}>report")
        assert high.read_words(high_segno, 1) == [7]

    def test_upgraded_directory_blocks_traversal(self, mls_system):
        """An upgraded *directory* hides even the names below it from
        lower clearances — the absolute compartmentalization of the
        paper's bottom layer."""
        low = mls_system.login("Low", "Intel", "pw")
        high = mls_system.login("High", "Intel", "pw")
        low.create_dir("vault", label=SecurityLabel.parse("secret"))
        low.set_acl("vault", "*.Intel", "rw")
        with pytest.raises((AccessDenied, KernelDenial)):
            low.list_dir(f"{low.home_path}>vault")
        # High can work inside it.
        high.set_working_dir(f"{low.home_path}>vault")
        high.create_segment("inner", label=SecurityLabel.parse("secret"))
        assert [e["name"] for e in high.list_dir()] == ["inner"]

    def test_incomparable_compartments_isolated(self, mls_system):
        """secret:crypto and secret:nato are incomparable: neither may
        read nor write the other's data (note secret:crypto *dominates*
        plain secret, so the plain-secret subject could still write up —
        incomparability needs disjoint categories)."""
        mls_system.register_user(
            "NatoU", "Intel", "pw",
            clearance=SecurityLabel.parse("secret:nato"),
        )
        low = mls_system.login("Low", "Intel", "pw")
        crypto = mls_system.login("CryptoU", "Intel", "pw")
        nato = mls_system.login("NatoU", "Intel", "pw")
        low.create_segment(
            "keys", label=SecurityLabel.parse("secret:crypto")
        )
        low.set_acl("keys", "*.Intel", "rw")
        path = f"{low.home_path}>keys"
        crypto_segno = crypto.initiate(path)
        crypto.read_words(crypto_segno, 1)
        # Disjoint category at the same level: no lattice-safe mode
        # exists at all, so initiation itself is refused.
        with pytest.raises((AccessDenied, KernelDenial)):
            nato.initiate(path)

    def test_labels_immutable_after_creation(self, mls_system):
        """Tranquility: there is no gate to relabel a segment."""
        gates = mls_system.supervisor.gates.names()
        assert not any("set_label" in g or "relabel" in g for g in gates)

    def test_directory_labels_nondecreasing(self, mls_system):
        low = mls_system.login("Low", "Intel", "pw")
        high = mls_system.login("High", "Intel", "pw")
        low.create_dir("vault2", label=SecurityLabel.parse("confidential"))
        low.set_acl("vault2", "*.Intel", "rw")
        mid = mls_system.login("Mid", "Intel", "pw")
        mid.set_working_dir(f"{low.home_path}>vault2")
        with pytest.raises((AccessDenied, KernelDenial)):
            mid.create_segment(
                "leak", label=SecurityLabel.parse("unclassified")
            )

    def test_mac_exfiltration_blocked_at_network(self, mls_system):
        high = mls_system.login("High", "Intel", "pw")
        with pytest.raises((AccessDenied, KernelDenial)):
            high.call("net_$send", "remote", "secret stuff")
        low = mls_system.login("Low", "Intel", "pw")
        low.call("net_$send", "remote", "unclassified stuff")  # fine


class TestLatticeSweep:
    @given(subject=st.integers(0, 3), object_=st.integers(0, 3))
    @settings(max_examples=16, deadline=None)
    def test_read_write_matrix(self, subject, object_):
        """Property over the full level matrix, with upgraded branches
        in a universally traversable directory and a wide-open ACL:
        reads succeed iff subject >= object, writes iff subject <=
        object — the two BLP rules, enforced by the hardware SDW the
        kernel built."""
        system = MulticsSystem(kernel_config()).boot()
        system.register_user("Sub", "Intel", "pw",
                             clearance=SecurityLabel(subject))
        system.register_user("Builder", "Intel", "pw")  # unclassified
        builder = system.login("Builder", "Intel", "pw")
        builder.create_segment("obj", label=SecurityLabel(object_))
        builder.set_acl("obj", "*.Intel", "rw")
        path = f"{builder.home_path}>obj"

        sub = system.login("Sub", "Intel", "pw")
        segno = sub.initiate(path)
        can_read = True
        try:
            sub.read_words(segno, 1)
        except AccessViolation:
            can_read = False
        can_write = True
        try:
            sub.write_words(segno, [1])
        except AccessViolation:
            can_write = False
        assert can_read == (subject >= object_)
        assert can_write == (subject <= object_)
