"""Tests for the legacy in-kernel naming and linker gate families, and
for the user-ring replacements behaving equivalently."""

import pytest

from repro.errors import (
    InvalidArgument,
    KernelDenial,
    LinkageError,
    NoSuchEntry,
    ObjectFormatError,
    SearchFailed,
)
from repro.hw.cpu import Instruction as I
from repro.hw.cpu import Op
from repro.kernel.kst_legacy import LegacyKnownSegmentTable
from repro.user.object_format import (
    ObjectSegment,
    decode_object,
    decode_object_trusting,
    encode_object,
    parse_symbol,
)


@pytest.fixture
def legacy_session(legacy_system):
    return legacy_system.login("Alice", "Crypto", "alice-pw")


@pytest.fixture
def kernel_session(kernel_system):
    return kernel_system.login("Alice", "Crypto", "alice-pw")


class TestLegacyNamingGates:
    def test_initiate_by_path(self, legacy_session):
        s = legacy_session
        s.create_segment("x")
        segno = s.call("hcs_$initiate_path", f"{s.home_path}>x")
        assert s.call("hcs_$get_pathname", segno) == f"{s.home_path}>x"

    def test_working_dir_expansion(self, legacy_session):
        s = legacy_session
        assert s.call("hcs_$get_wdir") == s.home_path
        assert (
            s.call("hcs_$expand_pathname", "notes")
            == f"{s.home_path}>notes"
        )

    def test_refname_lifecycle(self, legacy_session):
        s = legacy_session
        s.create_segment("lib")
        segno = s.call("hcs_$initiate_refname", "lib", "mylib")
        assert s.call("hcs_$refname_to_segno", "mylib") == segno
        s.call("hcs_$add_refname", segno, "alias")
        assert s.call("hcs_$segno_to_refnames", segno) == ["alias", "mylib"]
        s.call("hcs_$delete_refname", "alias")
        s.call("hcs_$terminate_refname", "mylib")
        with pytest.raises(NoSuchEntry):
            s.call("hcs_$refname_to_segno", "mylib")

    def test_initiate_count_semantics(self, legacy_session):
        """The unsplit KST counts initiations; termination by path only
        unmaps when the count drops to zero."""
        s = legacy_session
        s.create_segment("c")
        first = s.call("hcs_$initiate_path", "c")
        second = s.call("hcs_$initiate_path", "c")
        assert first == second
        s.call("hcs_$terminate_path", "c")  # count 2 -> 1
        assert s.call("hcs_$get_pathname", first)  # still known
        s.call("hcs_$terminate_path", "c")  # count 1 -> 0
        with pytest.raises((NoSuchEntry, KernelDenial)):
            s.call("hcs_$get_pathname", first)

    def test_search_rules(self, legacy_session):
        s = legacy_session
        s.create_dir("libdir")
        s.create_segment("libdir>helper")
        s.call("hcs_$set_search_rules", [f"{s.home_path}>libdir"])
        assert s.call("hcs_$get_search_rules") == [f"{s.home_path}>libdir"]
        found = s.call("hcs_$search", "helper")
        assert found == f"{s.home_path}>libdir>helper"
        s.call("hcs_$reset_search_rules")
        with pytest.raises(SearchFailed):
            s.call("hcs_$search", "helper")

    def test_whole_path_conveniences(self, legacy_session):
        s = legacy_session
        s.call("hcs_$create_dir_path", f"{s.home_path}>sub")
        s.call("hcs_$create_segment_path", f"{s.home_path}>sub>f", 1)
        listing = s.call("hcs_$list_path", f"{s.home_path}>sub")
        assert [e["name"] for e in listing] == ["f"]
        s.call("hcs_$chname", f"{s.home_path}>sub", "f", "g")
        info = s.call("hcs_$find_entry", f"{s.home_path}>sub>g")
        assert info["type"] == "segment"
        s.call("hcs_$delete_path", f"{s.home_path}>sub>g")
        with pytest.raises(NoSuchEntry):
            s.call("hcs_$find_entry", f"{s.home_path}>sub>g")

    def test_kernel_has_no_naming_gates(self, kernel_session):
        from repro.kernel.gates import GateViolationError

        with pytest.raises(GateViolationError):
            kernel_session.call("hcs_$initiate_path", ">udd")


class TestLegacyKst:
    def test_initiate_counts(self):
        kst = LegacyKnownSegmentTable()
        segno, already = kst.initiate(uid=5, pathname=">a>b")
        assert not already
        segno2, already2 = kst.initiate(uid=5)
        assert segno2 == segno and already2
        assert kst.entry(segno).initiate_count == 2
        assert kst.terminate(segno) is None
        assert kst.terminate(segno) == 5

    def test_refname_chain(self):
        kst = LegacyKnownSegmentTable()
        segno, _ = kst.initiate(uid=5, refname="lib")
        kst.bind_refname(segno, "lib2")
        assert kst.refnames_of(segno) == ["lib", "lib2"]
        with pytest.raises(InvalidArgument):
            kst.bind_refname(segno, "lib")
        assert kst.unbind_refname("lib") == segno
        assert kst.refnames_of(segno) == ["lib2"]

    def test_pathname_index(self):
        kst = LegacyKnownSegmentTable()
        segno, _ = kst.initiate(uid=5, pathname=">x>y")
        assert kst.by_pathname(">x>y").segno == segno
        assert kst.pathname_of(segno) == ">x>y"

    def test_forced_terminate_clears_names(self):
        kst = LegacyKnownSegmentTable()
        segno, _ = kst.initiate(uid=5, refname="r")
        kst.initiate(uid=5)
        assert kst.terminate(segno, force=True) == 5
        with pytest.raises(NoSuchEntry):
            kst.refname_entry("r")

    def test_explicit_segno(self):
        kst = LegacyKnownSegmentTable()
        segno, _ = kst.initiate(uid=5, segno=42)
        assert segno == 42
        with pytest.raises(InvalidArgument):
            kst.initiate(uid=6, segno=42)

    def test_terminate_all(self):
        kst = LegacyKnownSegmentTable()
        kst.initiate(uid=1)
        kst.initiate(uid=2, refname="r")
        assert kst.terminate_all() == 2
        assert len(kst) == 0


class TestObjectFormat:
    def sample(self):
        return ObjectSegment(
            "m",
            code=[I(Op.PUSHI, 1), I(Op.RET)],
            definitions={"main": 0},
            links=["lib$fn"],
        )

    def test_roundtrip(self):
        obj = self.sample()
        decoded = decode_object(encode_object(obj), "m")
        assert decoded.code == obj.code
        assert decoded.definitions == obj.definitions
        assert decoded.links == obj.links

    def test_parse_symbol(self):
        assert parse_symbol("lib$fn") == ("lib", "fn")
        assert parse_symbol("solo") == ("solo", "solo")
        with pytest.raises(ObjectFormatError):
            parse_symbol("")
        with pytest.raises(ObjectFormatError):
            parse_symbol("$broken")

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda w: [0] + w[1:],                      # bad magic
            lambda w: w[:1] + [99] + w[2:],             # bad version
            lambda w: w[:2] + [10_000_000] + w[3:],     # absurd count
            lambda w: w[:-1],                           # truncated
            lambda w: w[:2] + [len(w)] + w[3:],         # code overruns
        ],
    )
    def test_defensive_decoder_rejects(self, mutate):
        words = mutate(encode_object(self.sample()))
        with pytest.raises(ObjectFormatError):
            decode_object(words, "m")

    def test_trusting_decoder_malfunctions(self):
        """The period-faithful parser walks off the end of malicious
        input — the supervisor vulnerability of experiment E11."""
        words = encode_object(self.sample())
        words[2] = 10_000  # claim far more code than exists
        with pytest.raises(Exception):
            decode_object_trusting(words, "m")

    def test_validate_rejects_bad_definitions(self):
        obj = self.sample()
        obj.definitions["out"] = 99
        with pytest.raises(ObjectFormatError):
            obj.validate()


class TestLinkerEquivalence:
    """Both linkers resolve the same program; only the failure locus
    differs."""

    LIB = ObjectSegment(
        "lib",
        code=[I(Op.LOADF, 0), I(Op.PUSHI, 100), I(Op.ADD), I(Op.RET)],
        definitions={"add100": 0},
    )
    MAIN = ObjectSegment(
        "main",
        code=[I(Op.PUSHI, 5), I(Op.CALLL, 0, 1), I(Op.RET)],
        definitions={"main": 0},
        links=["lib$add100"],
    )

    def run_on(self, session):
        lib_segno = session.install_object("lib", self.LIB)
        main_segno = session.install_object("main", self.MAIN)
        if session.linker is None:
            session.call("lk_$make_linkage", lib_segno)
        return session.run_program(main_segno)

    def test_legacy(self, legacy_session):
        assert self.run_on(legacy_session) == 105

    def test_kernel(self, kernel_session):
        assert self.run_on(kernel_session) == 105

    def test_legacy_linkage_gates(self, legacy_session):
        s = legacy_session
        main_segno = s.install_object("main", self.MAIN)
        first, count = s.call("lk_$make_linkage", main_segno)
        assert count == 1
        assert s.call("lk_$link_count") == 1
        dump = s.call("lk_$get_linkage")
        assert dump[0]["symbol"] == "lib$add100"
        assert not dump[0]["snapped"]
        # Forcing, unsnapping.
        s.call("lk_$force", first, main_segno, 0)
        assert s.call("lk_$get_linkage")[0]["snapped"]
        assert s.call("lk_$unsnap_all") == 1
        assert s.call("lk_$reset_linkage") == 1

    def test_user_linker_snap_failure_contained(self, kernel_session):
        s = kernel_session
        main_segno = s.install_object("main", self.MAIN)
        s.load_program(main_segno)
        # lib does not exist: the snap fails in the user ring.
        with pytest.raises((LinkageError, SearchFailed)):
            s.linker.snap(0)
        assert s.system.services.supervisor_incidents == 0

    def test_definition_lookup_gates(self, legacy_session):
        s = legacy_session
        lib_segno = s.install_object("lib", self.LIB)
        s.call("lk_$make_linkage", lib_segno)
        assert s.call("lk_$get_def", lib_segno, "add100") == 0
        assert s.call("lk_$list_defs", lib_segno) == [("add100", 0)]
        with pytest.raises(NoSuchEntry):
            s.call("lk_$get_def", lib_segno, "missing")
