"""Tests for the metering plane (repro.obs.meters): unit behaviour of
the buckets and coverage math, and the end-to-end attribution wiring
through a live system."""

from repro.config import SystemConfig
from repro.faults.harness import harness_config, standard_workload
from repro.obs import NULL_METERS, Meters
from repro.proc.ipc import Charge
from repro.proc.process import Process
from repro.system import MulticsSystem


class FakeProcess:
    """Just the accounting surface Meters polls."""

    def __init__(self, pid, name="p"):
        self.pid = pid
        self.name = name
        self.cpu_cycles = 0
        self.fault_wait_cycles = 0
        self.page_faults = 0


class TestMetersUnit:
    def test_disabled_meters_accumulate_nothing(self):
        m = Meters(enabled=False)
        p = FakeProcess(1)
        m.track(p)
        m.note_gate(p, "hcs_$x", 8)
        m.note_gate_denied(p, "hcs_$x")
        m.note_execution(p, 100, 10, 20, 1)
        assert m._buckets == {}
        assert m._gates == {}
        assert m.attributed_cycles() == 0

    def test_null_meters_is_disabled(self):
        assert NULL_METERS.enabled is False

    def test_live_fields_are_polled_not_copied(self):
        m = Meters()
        p = FakeProcess(1)
        m.track(p)
        p.cpu_cycles = 70
        p.fault_wait_cycles = 30
        p.page_faults = 2
        assert m.process_cpu_cycles(1) == 70
        assert m.process_fault_wait(1) == 30
        assert m.process_page_faults(1) == 2
        assert m.process_attributed(1) == 100

    def test_fold_freezes_destroyed_process_accounting(self):
        m = Meters()
        p = FakeProcess(1)
        m.track(p)
        p.cpu_cycles = 40
        p.page_faults = 1
        m.fold(p)
        # The live process is gone; the bucket keeps its totals.
        p.cpu_cycles = 9999
        assert m.process_cpu_cycles(1) == 40
        assert m.process_page_faults(1) == 1
        # Folding twice is harmless (already unpolled).
        m.fold(p)
        assert m.process_cpu_cycles(1) == 40

    def test_note_gate_charges_both_meters(self):
        m = Meters()
        p = FakeProcess(1)
        m.note_gate(p, "hcs_$initiate", 8, crossed=True)
        m.note_gate(p, "hcs_$initiate", 8)
        m.note_gate_denied(p, "hcs_$initiate")
        b = m._buckets[1]
        assert b.gate_entries == 2
        assert b.gate_cycles == 16
        assert b.ring_crossings == 1
        assert b.gate_denials == 1
        g = m._gates["hcs_$initiate"]
        assert g.calls == 2 and g.denials == 1 and g.cycles == 16
        assert g.mean_cycles == 8.0

    def test_note_execution_attributes_deltas(self):
        m = Meters()
        p = FakeProcess(3)
        m.note_execution(p, 120, 30, 60, 2)
        b = m._buckets[3]
        assert b.exec_cycles == 120
        assert b.am_hit_cycles == 30
        assert b.walk_cycles == 60
        assert b.ring_crossings == 2
        # ctx with accounting fields becomes polled too.
        assert 3 in m._live

    def test_note_execution_ignores_pidless_context(self):
        m = Meters()

        class Bare:
            pass

        m.note_execution(Bare(), 100, 0, 0, 0)
        assert m._buckets == {}

    def test_coverage_of_empty_meters_is_one(self):
        assert Meters().coverage() == 1.0

    def test_coverage_drops_when_charges_escape_attribution(self):
        m = Meters()
        total = {"n": 0}
        m.bind_system(busy_cycles=lambda: total["n"],
                      gate_cycles=lambda: 0, fault_wait=lambda: 0)
        p = FakeProcess(1)
        m.track(p)
        # A charge recorded system-wide and mirrored on the process.
        total["n"] += 100
        p.cpu_cycles += 100
        assert m.coverage() == 1.0
        # A charge recorded system-wide that no tracked process carries:
        # the paper-trail breaks and coverage says so.
        total["n"] += 100
        assert m.coverage() == 0.5

    def test_report_formatters_render(self):
        m = Meters()
        p = FakeProcess(1, "alice")
        m.track(p)
        m.note_gate(p, "hcs_$initiate", 8, crossed=True)
        m.note_execution(p, 50, 10, 20, 1)
        assert "TOTAL TIME METERS" in m.total_time_meters()
        tcm = m.traffic_control_meters()
        assert "TRAFFIC CONTROL METERS" in tcm and "alice" in tcm
        gm = m.gate_meters()
        assert "GATE METERS" in gm and "hcs_$initiate" in gm


class TestSystemAttribution:
    """The metering plane threaded through a whole live system."""

    def make_system(self, **overrides):
        config = harness_config(**overrides)
        system = MulticsSystem(config).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        system.register_user("Eve", "Spies", "eve-pw")
        return system

    def test_workload_attribution_is_complete(self):
        system = self.make_system()
        standard_workload(system, tag="m")
        m = system.meters
        assert m.enabled
        assert m.total_cycles() > 0
        assert m.coverage() == 1.0

    def test_scheduler_and_paging_cycles_attributed(self):
        system = self.make_system()
        alice = system.login("Alice", "Crypto", "alice-pw")
        svc = system.services
        segno = alice.create_segment("pages", n_pages=6)
        aseg = svc.ast.get(alice.process.dseg.get(segno).uid)
        pc = svc.page_control

        def worker(proc):
            for page in range(6):
                yield from pc.touch(proc, aseg, page)
                yield Charge(40)

        w = Process("worker", body=worker, ring=4)
        system.add_process(w)
        system.run()
        m = system.meters
        assert m.process_cpu_cycles(w.pid) == w.cpu_cycles > 0
        assert m.process_fault_wait(w.pid) == w.fault_wait_cycles > 0
        assert m.process_page_faults(w.pid) == w.page_faults > 0
        assert m.coverage() == 1.0

    def test_destroyed_process_accounting_survives_in_fold(self):
        system = self.make_system()
        alice = system.login("Alice", "Crypto", "alice-pw")
        pid = alice.process.pid
        before = system.meters.process_cpu_cycles(pid)
        assert before > 0  # login's gate calls already charged it
        alice.logout()
        m = system.meters
        assert pid not in m._live
        assert m._buckets[pid].folded_cpu_cycles >= before
        assert m.process_cpu_cycles(pid) >= before

    def test_meter_metrics_exported_in_snapshot(self):
        system = self.make_system()
        standard_workload(system, tag="s")
        snap = system.metrics.snapshot()
        c = snap["counters"]
        assert c["meter.total_cycles"] == system.meters.total_cycles() > 0
        assert c["meter.attributed_cycles"] == c["meter.total_cycles"]
        assert c["meter.gate_entries"] > 0
        assert snap["gauges"]["meter.coverage"] == 1.0
        assert snap["gauges"]["meter.processes"] > 0

    def test_metering_disabled_is_inert_and_costless(self):
        clocks = {}
        for metering in (True, False):
            system = self.make_system(metering=metering)
            standard_workload(system, tag="z")
            clocks[metering] = system.clock.now
            if not metering:
                assert system.meters._buckets == {}
        # Identical simulated time with the plane on or off.
        assert clocks[True] == clocks[False]

    def test_config_flag_validates(self):
        cfg = SystemConfig(metering=False)
        cfg.validate()
        assert MulticsSystem(cfg).boot().meters.enabled is False
