"""The chaos scenario engine: validation, controllers, CPU loss."""

import json

import pytest

from repro.faults.chaos import (
    CPU_LOSS_KIND,
    CPU_LOSS_SITE,
    ChaosEngine,
    ChaosScenario,
)
from repro.faults.harness import harness_config
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.system import MulticsSystem
from tests.test_smp import make_jobs, smp_system


def scenario(*controllers, name="test", seed=0):
    return ChaosScenario(name, list(controllers), seed=seed)


def timed(*events):
    return {"type": "timed", "events": list(events)}


def booted(**overrides):
    system = MulticsSystem(harness_config(**overrides)).boot()
    system.register_user("Alice", "Crypto", "pw")
    return system


# ---------------------------------------------------------------------------
# scenario validation
# ---------------------------------------------------------------------------

class TestScenarioValidation:
    def test_round_trips_from_json(self):
        text = json.dumps({
            "name": "storm",
            "seed": 9,
            "controllers": [
                timed({"at": 10, "site": "link.uplink", "kind": "drop"}),
                {"type": "random", "every": 100,
                 "sites": ["link.uplink"], "kinds": ["flap"]},
                {"type": "targeted", "every": 200, "kind": "partition"},
            ],
        })
        s = ChaosScenario.from_json(text)
        assert s.name == "storm"
        assert s.seed == 9
        assert len(s.controllers) == 3

    @pytest.mark.parametrize("spec,fragment", [
        ({"name": "", "controllers": [timed({"at": 0, "site": "link.l",
                                             "kind": "drop"})]},
         "needs a name"),
        ({"name": "s", "controllers": []}, "needs controllers"),
        ({"name": "s", "controllers": [{"type": "volcanic"}]},
         "type must be one of"),
        ({"name": "s", "controllers": [timed()]}, "events list"),
        ({"name": "s", "controllers": [
            timed({"at": -1, "site": "link.l", "kind": "drop"})]},
         "non-negative"),
        ({"name": "s", "controllers": [
            timed({"at": 0, "site": "link.l", "kind": "melt"})]},
         "link kind"),
        ({"name": "s", "controllers": [
            timed({"at": 0, "site": "cpu.loss", "kind": "drop"})]},
         "only understands"),
        ({"name": "s", "controllers": [
            timed({"at": 0, "site": "device.tty1", "kind": "hang"})]},
         "unknown chaos site"),
        ({"name": "s", "controllers": [
            {"type": "random", "every": 0, "sites": ["link.l"],
             "kinds": ["drop"]}]},
         "positive 'every'"),
        ({"name": "s", "controllers": [
            {"type": "random", "every": 5, "kinds": ["drop"]}]},
         "sites list"),
        ({"name": "s", "controllers": [
            {"type": "targeted", "every": 5, "kind": "parity"}]},
         "targeted kind"),
        ({"name": "s", "controllers": [timed({"at": 0, "site": "link.l",
                                              "kind": "drop"})],
          "weather": "bad"},
         "unknown keys"),
    ])
    def test_malformed_scenarios_rejected(self, spec, fragment):
        with pytest.raises(ValueError, match=fragment):
            ChaosScenario.from_dict(spec)


# ---------------------------------------------------------------------------
# controllers against a live system
# ---------------------------------------------------------------------------

class TestControllers:
    def test_timed_events_fire_at_offsets(self):
        system = booted()
        engine = system.chaos_engine(scenario(
            timed({"at": 100, "site": "link.uplink", "kind": "flap"},
                  {"at": 300, "site": "link.uplink", "kind": "drop"}),
        ))
        assert engine.step() == 0  # nothing due at offset 0
        system.clock.advance(150)
        assert engine.step() == 1
        assert engine.applied[0][1:] == ("link.uplink", "flap")
        assert engine.step() == 0  # fired events never refire
        system.clock.advance(200)
        assert engine.step() == 1
        assert system.topology.links["uplink"].pending_drops == 1
        system.shutdown()

    def test_offsets_are_relative_to_engine_start(self):
        system = booted()
        system.clock.advance(5000)  # a late-built engine
        engine = system.chaos_engine(scenario(
            timed({"at": 100, "site": "link.uplink", "kind": "flap"}),
        ))
        assert engine.t0 == system.clock.now
        assert engine.step() == 0
        system.clock.advance(101)
        assert engine.step() == 1
        system.shutdown()

    def test_random_controller_is_seed_deterministic(self):
        def storm(seed):
            system = booted()
            engine = system.chaos_engine(scenario(
                {"type": "random", "every": 50,
                 "sites": ["link.uplink"],
                 "kinds": ["drop", "flap", "latency_spike"]},
                seed=seed,
            ))
            for _ in range(20):
                system.clock.advance(50)
                engine.step()
            events = [(t - engine.t0, site, kind)
                      for t, site, kind in engine.applied]
            system.shutdown()
            return events

        assert storm(4) == storm(4)
        assert storm(4) != storm(5)
        assert len(storm(4)) == 20

    def test_random_controller_stop_bound(self):
        system = booted()
        engine = system.chaos_engine(scenario(
            {"type": "random", "every": 10, "stop": 30,
             "sites": ["link.uplink"], "kinds": ["drop"]},
        ))
        system.clock.advance(500)
        engine.step()
        assert len(engine.applied) == 3  # offsets 10, 20, 30
        system.shutdown()

    def test_targeted_controller_hits_busiest_link(self):
        spec = {
            "hosts": ["east", "west"],
            "links": [
                {"name": "east_up", "a": "east", "b": "multics"},
                {"name": "west_up", "a": "west", "b": "multics"},
            ],
        }
        system = booted(topology=spec)
        for _ in range(5):
            system.topology.send("west", "chatter")
        engine = system.chaos_engine(scenario(
            {"type": "targeted", "every": 100, "kind": "partition"},
        ))
        system.clock.advance(100)
        engine.step()
        assert engine.applied[0][1] == "link.west_up"
        assert system.topology.links["west_up"].down(system.clock.now)
        system.shutdown()

    def test_commanded_faults_land_in_injector_and_audit(self):
        system = booted(fault_plan=FaultPlan([], seed=2))
        engine = system.chaos_engine(scenario(
            timed({"at": 0, "site": "link.uplink", "kind": "drop"}),
        ))
        system.clock.advance(1)
        engine.step()
        services = system.services
        assert services.injector.injected == [
            (system.clock.now, "link.uplink", "drop")
        ]
        records = [r for r in system.audit_trail.records()
                   if r.object == "link.uplink"]
        assert records and records[0].decision == "injected"
        system.shutdown()

    def test_unknown_link_site_raises_at_apply(self):
        system = booted()
        engine = system.chaos_engine(scenario(
            timed({"at": 0, "site": "link.ghost", "kind": "drop"}),
        ))
        system.clock.advance(1)
        with pytest.raises(ValueError, match="unknown link"):
            engine.step()
        system.shutdown()


# ---------------------------------------------------------------------------
# CPU loss
# ---------------------------------------------------------------------------

class TestCpuLoss:
    def test_lose_cpu_requeues_job_and_completes_elsewhere(self):
        system = smp_system(n_cpus=2)
        cx = system.cpu_complex(n_cpus=2)
        jobs, _sessions = make_jobs(system, n_jobs=6)
        engine = system.chaos_engine(scenario(
            timed({"at": 600, "site": CPU_LOSS_SITE,
                   "kind": CPU_LOSS_KIND, "cpu": 1}),
        ), complex_=cx)
        cx.run_jobs(jobs, on_round=engine.step)
        assert cx.online_count() == 1
        assert cx.cpus_lost == 1
        assert [j.result for j in jobs] == [96] * 6
        assert all(j.error is None for j in jobs)
        # Every job was (re)dispatched somewhere real; the displaced one
        # restarted on the surviving CPU.
        assert all(j.cpu_id in (0, 1) for j in jobs)
        if cx.jobs_requeued:
            assert any(j.cpu_id == 0 for j in jobs)
        system.shutdown()

    def test_last_cpu_is_never_taken(self):
        system = smp_system(n_cpus=1)
        cx = system.cpu_complex(n_cpus=1)
        engine = system.chaos_engine(scenario(
            timed({"at": 0, "site": CPU_LOSS_SITE, "kind": CPU_LOSS_KIND}),
        ), complex_=cx)
        system.clock.advance(1)
        engine.step()
        assert engine.applied == []
        assert engine.skipped and engine.skipped[0][1] == CPU_LOSS_SITE
        assert cx.online_count() == 1
        system.shutdown()

    def test_cpu_loss_without_complex_raises(self):
        system = booted()
        engine = system.chaos_engine(scenario(
            timed({"at": 0, "site": CPU_LOSS_SITE, "kind": CPU_LOSS_KIND}),
        ))
        system.clock.advance(1)
        with pytest.raises(ValueError, match="no SMP complex"):
            engine.step()
        system.shutdown()

    def test_loss_books_degraded_and_requeue_recovery(self):
        system = smp_system(n_cpus=2, fault_plan=FaultPlan([], seed=0))
        cx = system.cpu_complex(n_cpus=2)
        jobs, _sessions = make_jobs(system, n_jobs=4)
        engine = system.chaos_engine(scenario(
            timed({"at": 600, "site": CPU_LOSS_SITE,
                   "kind": CPU_LOSS_KIND, "cpu": 0}),
        ), complex_=cx)
        cx.run_jobs(jobs, on_round=engine.step)
        injector = system.services.injector
        assert (CPU_LOSS_SITE in injector.per_site) and injector.degraded >= 1
        if cx.jobs_requeued:
            assert injector.recovered >= 1
        assert [j.result for j in jobs] == [96] * 4
        system.shutdown()

    def test_lose_cpu_guards(self):
        system = smp_system(n_cpus=2)
        cx = system.cpu_complex(n_cpus=2)
        with pytest.raises(ValueError, match="no CPU 7"):
            cx.lose_cpu(7)
        cx.lose_cpu(1)
        with pytest.raises(ValueError, match="already offline"):
            cx.lose_cpu(1)
        with pytest.raises(ValueError, match="last online"):
            cx.lose_cpu(0)
        assert cx.last_online() == 0
        system.shutdown()


# ---------------------------------------------------------------------------
# engine bookkeeping
# ---------------------------------------------------------------------------

class TestEngineMetrics:
    def test_chaos_metrics_register_and_count(self):
        system = booted()
        engine = system.chaos_engine(scenario(
            timed({"at": 0, "site": "link.uplink", "kind": "flap"}),
        ))
        system.clock.advance(1)
        engine.step()
        snap = system.metrics.snapshot()
        assert snap["counters"]["chaos.events"] == 1
        assert snap["counters"]["chaos.steps"] == 1
        assert snap["counters"]["chaos.skipped"] == 0
        assert snap["gauges"]["chaos.controllers"] == 1
        system.shutdown()

    def test_engine_without_fault_plan_still_audits(self):
        system = booted()  # no fault_plan: services.injector is None
        assert system.services.injector is None
        engine = system.chaos_engine(scenario(
            timed({"at": 0, "site": "link.uplink", "kind": "drop"}),
        ))
        system.clock.advance(1)
        engine.step()
        assert engine.injector.injected_count == 1
        assert any(r.object == "link.uplink"
                   for r in system.audit_trail.records())
        system.shutdown()
