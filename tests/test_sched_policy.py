"""Tests for the scheduler policy/mechanism split (the paper's
generalization of E7 to 'all resource management algorithms')."""

import pytest

from repro.config import SystemConfig
from repro.hw.clock import Simulator
from repro.proc.ipc import Charge
from repro.proc.process import Process, ProcessState
from repro.proc.sched_policy import (
    CandidateInfo,
    FairShareSchedulingPolicy,
    FifoSchedulingPolicy,
    ForgingSchedulingPolicy,
    SchedulingMechanism,
    SnoopingSchedulingPolicy,
    StarvingSchedulingPolicy,
)
from repro.proc.scheduler import TrafficController


def build(config, policy=None, n_workers=4, work=(100, 100, 100, 100)):
    config.n_processors = 1
    config.quantum = 50
    tc = TrafficController(Simulator(), config)
    mechanism = SchedulingMechanism(tc)
    if policy is not None:
        mechanism.install(policy)
    finish_order = []

    def body(name, cycles):
        def gen(proc):
            remaining = cycles
            while remaining > 0:
                step = min(25, remaining)
                yield Charge(step)
                remaining -= step
            finish_order.append(name)

        return gen

    workers = [
        Process(f"w{i}", body=body(f"w{i}", work[i])) for i in range(n_workers)
    ]
    for worker in workers:
        tc.add_process(worker)
    tc.run(max_events=500_000)
    assert all(w.state is ProcessState.STOPPED for w in workers)
    return tc, mechanism, workers, finish_order


class TestMechanism:
    def test_fifo_policy_behaves_like_no_policy(self, config):
        _, _, _, order_none = build(config, policy=None)
        config2 = SystemConfig(**{**config.__dict__})
        _, _, _, order_fifo = build(config, policy=FifoSchedulingPolicy())
        assert order_none == order_fifo

    def test_fair_share_lets_light_process_finish_first(self, config):
        light_then_heavy = (400, 400, 400, 50)
        _, _, _, order = build(
            config, FairShareSchedulingPolicy(), work=light_then_heavy
        )
        assert order[0] == "w3"  # the 50-cycle process escapes first

    def test_starver_delays_light_process(self, config):
        work = (400, 400, 400, 50)
        _, _, _, fair_order = build(config, FairShareSchedulingPolicy(), work=work)
        _, _, _, starved_order = build(config, StarvingSchedulingPolicy(), work=work)
        assert fair_order.index("w3") <= starved_order.index("w3")
        # Denial only: everything still completed (asserted in build).

    def test_forged_handles_fall_back_to_fifo(self, config):
        tc, mechanism, _, order = build(config, ForgingSchedulingPolicy())
        assert mechanism.invalid_choices > 0
        assert len(order) == 4  # nobody lost

    def test_snooper_finds_only_scrubbed_fields(self, config):
        policy = SnoopingSchedulingPolicy()
        build(config, policy)
        assert policy.loot == []

    def test_crashing_policy_contained(self, config):
        class Crasher(FifoSchedulingPolicy):
            def choose(self, infos):
                raise RuntimeError("policy bug")

        tc, mechanism, _, order = build(config, Crasher())
        assert len(order) == 4
        assert mechanism.invalid_choices > 0

    def test_handles_salted_per_round(self, config):
        """The same process gets different handles in different rounds,
        so a policy cannot track identity across decisions."""
        mechanism = SchedulingMechanism(
            TrafficController(Simulator(), config)
        )
        seen = []

        class Recorder(FifoSchedulingPolicy):
            def choose(self, infos):
                seen.append({i.slot for i in infos})
                return infos[0].slot

        procs = [Process("a"), Process("b")]
        mechanism._decide(Recorder(), procs)
        mechanism._decide(Recorder(), procs)
        assert seen[0] != seen[1]

    def test_kernel_processes_never_consulted(self, config):
        """Dedicated kernel processes bypass the advisor entirely: the
        policy cannot delay the kernel's own mechanisms."""
        consulted = []

        class Recorder(FifoSchedulingPolicy):
            def choose(self, infos):
                consulted.append(len(infos))
                return infos[0].slot

        config.n_processors = 1
        tc = TrafficController(Simulator(), config)
        SchedulingMechanism(tc).install(Recorder())

        def kbody(proc):
            yield Charge(10)

        kernels = [
            Process(f"k{i}", body=kbody, dedicated=True) for i in range(3)
        ]
        for k in kernels:
            tc.add_process(k)
        tc.run(max_events=10_000)
        assert consulted == []  # only user processes go through policy

    def test_uninstall(self, config):
        tc = TrafficController(Simulator(), config)
        mechanism = SchedulingMechanism(tc)
        mechanism.install(FifoSchedulingPolicy())
        assert tc.dispatch_advisor is not None
        mechanism.uninstall()
        assert tc.dispatch_advisor is None
