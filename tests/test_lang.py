"""Tests for the KPL compiler and the per-module certifier (E13)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CertificationError, CompilationError
from repro.hw.cpu import Instruction, Op
from repro.lang.certifier import (
    SourceInterpreter,
    certify_module,
    check_structure,
    execute_object,
)
from repro.lang.compiler import compile_source, parse

FIB = """
procedure fib(n);
  declare a; declare b; declare t;
  a = 0; b = 1;
  while n > 0 do
    t = a + b; a = b; b = t; n = n - 1;
  end;
  return a;
end;
"""

GCD = """
procedure gcd(a, b);
  declare t;
  while b ^= 0 do
    t = b;
    b = a mod b;
    a = t;
  end;
  return a;
end;
"""

CALLS = """
procedure double(x);
  return x + x;
end;

procedure quad(x);
  return double(double(x));
end;
"""

CONDITIONAL = """
procedure sign(x);
  if x > 0 then
    return 1;
  else
    if x < 0 then
      return -1;
    end;
  end;
  return 0;
end;
"""


class TestCompiler:
    def test_fib(self):
        obj = compile_source(FIB, "m")
        assert execute_object(obj, "m", "fib", [10]) == 55
        assert execute_object(obj, "m", "fib", [0]) == 0

    def test_gcd(self):
        obj = compile_source(GCD, "m")
        assert execute_object(obj, "m", "gcd", [48, 36]) == 12

    def test_internal_calls_via_linkage(self):
        obj = compile_source(CALLS, "m")
        assert "m$double" in obj.links
        assert execute_object(obj, "m", "quad", [3]) == 12

    def test_conditionals(self):
        obj = compile_source(CONDITIONAL, "m")
        for x, expected in ((5, 1), (-5, -1), (0, 0)):
            assert execute_object(obj, "m", "sign", [x]) == expected

    def test_comments_stripped(self):
        src = "procedure f(x); /* a comment */ return x; end;"
        obj = compile_source(src, "m")
        assert execute_object(obj, "m", "f", [9]) == 9

    @pytest.mark.parametrize(
        "bad",
        [
            "",                                         # empty
            "procedure f(; return 1; end;",             # syntax
            "procedure f(x); y = 1; return y; end;",    # undeclared
            "procedure f(x); declare x; return x; end;",  # redeclare
            "procedure f(x); return x; end; procedure f(y); return y; end;",
            "procedure f(x); return @; end;",           # bad token
        ],
    )
    def test_rejects_bad_source(self, bad):
        with pytest.raises(CompilationError):
            compile_source(bad, "m")

    def test_fall_off_end_returns_zero(self):
        obj = compile_source("procedure f(x); declare y; y = x; end;", "m")
        assert execute_object(obj, "m", "f", [5]) == 0


class TestSourceInterpreter:
    def test_matches_python_semantics(self):
        program = parse(GCD, "m")
        assert SourceInterpreter(program).run("gcd", [48, 36]) == 12

    def test_divergence_guard(self):
        src = "procedure spin(); declare i; i = 1; while i > 0 do i = 2; end; return 0; end;"
        program = parse(src, "m")
        with pytest.raises(CertificationError, match="diverged"):
            SourceInterpreter(program, max_steps=1000).run("spin", [])


class TestCertifier:
    def test_certifies_correct_compilation(self):
        report = certify_module(
            FIB, "m", {"fib": [[0], [1], [2], [10], [15]]}
        )
        assert report.certified
        assert report.vectors_run == 5

    def test_catches_tampered_object(self):
        """A patched return value — the certifier must notice."""
        obj = compile_source(FIB, "m")
        for i, inst in enumerate(obj.code):
            if inst.op is Op.PUSHI and inst.a == 1:
                obj.code[i] = Instruction(Op.PUSHI, 2)
                break
        with pytest.raises(CertificationError, match="source model says"):
            certify_module(FIB, "m", {"fib": [[5]]}, obj=obj)

    def test_catches_foreign_instructions(self):
        """Object code using operations the kernel language cannot emit
        (e.g. direct stores into arbitrary segments) fails structurally."""
        obj = compile_source(FIB, "m")
        obj.code.append(Instruction(Op.STORE, 0, 0))
        with pytest.raises(CertificationError, match="never emits"):
            check_structure(obj, "m")

    def test_catches_undeclared_links(self):
        obj = compile_source(FIB, "m")
        obj.code[0] = Instruction(Op.CALLL, 99, 0)
        with pytest.raises(CertificationError, match="undeclared link"):
            check_structure(obj, "m")

    def test_catches_outward_references(self):
        obj = compile_source(FIB, "m")
        obj.links.append("other_module$evil")
        with pytest.raises(CertificationError, match="outside itself"):
            check_structure(obj, "m")

    def test_catches_wild_jumps(self):
        obj = compile_source(FIB, "m")
        obj.code[0] = Instruction(Op.JMP, 9999)
        with pytest.raises(CertificationError, match="outside the module"):
            check_structure(obj, "m")

    def test_missing_procedure_rejected(self):
        with pytest.raises(CertificationError):
            certify_module(FIB, "m", {"nope": [[1]]})


class TestDifferentialProperty:
    @given(st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_fib_object_matches_model(self, n):
        """Property: compiled code and source model agree everywhere we
        look — the footnote-6 argument in executable form."""
        obj = compile_source(FIB, "m")
        program = parse(FIB, "m")
        assert execute_object(obj, "m", "fib", [n]) == SourceInterpreter(
            program
        ).run("fib", [n])

    @given(st.integers(1, 500), st.integers(1, 500))
    @settings(max_examples=20, deadline=None)
    def test_gcd_object_matches_model(self, a, b):
        obj = compile_source(GCD, "m")
        program = parse(GCD, "m")
        assert execute_object(obj, "m", "gcd", [a, b]) == SourceInterpreter(
            program
        ).run("gcd", [a, b])
