"""Tier-1 wiring for the bench-export schema guard.

The benches export registry snapshots to ``benchmarks/results/``;
``scripts/check_bench_schema.py`` validates those artifacts.  This test
drives the script's own logic against freshly generated documents (it
does not depend on the benches having run), so the guard itself is
exercised on every tier-1 run: a valid live snapshot passes, a
deliberately corrupted one is rejected, and a directory with no results
is not an error.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.obs import MetricsRegistry

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_schema.py"


def make_snapshot() -> dict:
    registry = MetricsRegistry()
    registry.counter("gate.calls").inc(3)
    registry.gauge("io.buffer.queued").set(2)
    registry.histogram("pc.fault_latency").observe(41)
    return registry.snapshot()


def run_script(results_dir: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(results_dir)],
        capture_output=True, text=True,
    )


class TestCheckBenchSchema:
    def test_valid_export_passes(self, tmp_path):
        doc = make_snapshot()
        doc["bench"] = {"derived": 7}
        (tmp_path / "e4.json").write_text(json.dumps(doc))
        proc = run_script(tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "e4.json: ok" in proc.stdout

    def test_corrupted_export_fails(self, tmp_path):
        doc = make_snapshot()
        doc["schema_version"] = 999          # drifted schema
        del doc["counters"]                  # missing section
        (tmp_path / "bad.json").write_text(json.dumps(doc))
        proc = run_script(tmp_path)
        assert proc.returncode == 1
        assert "bad.json" in proc.stdout

    def test_unparseable_json_fails(self, tmp_path):
        (tmp_path / "junk.json").write_text("{not json")
        proc = run_script(tmp_path)
        assert proc.returncode == 1
        assert "unreadable" in proc.stdout

    def test_timeline_export_dispatches_to_its_validator(self, tmp_path):
        from repro.hw.clock import Clock
        from repro.obs import TimelineSampler

        clock = Clock()
        registry = MetricsRegistry(clock=clock)
        registry.counter("gate.calls").inc(3)
        sampler = TimelineSampler(registry, clock, interval=10)
        clock.advance(10)
        sampler.poll()
        doc = sampler.to_doc()
        (tmp_path / "timeline.json").write_text(json.dumps(doc))
        bad = json.loads(json.dumps(doc))
        bad["samples"][0]["index"] = "one"
        (tmp_path / "timeline_bad.json").write_text(json.dumps(bad))
        proc = run_script(tmp_path)
        assert proc.returncode == 1
        assert "timeline.json: ok" in proc.stdout
        assert "timeline_bad.json" in proc.stdout
        assert "index must be an integer" in proc.stdout

    def test_no_results_is_not_an_error(self, tmp_path):
        proc = run_script(tmp_path / "never_created")
        assert proc.returncode == 0
        assert "no result files" in proc.stdout

    def test_mixed_results_report_each_file(self, tmp_path):
        (tmp_path / "good.json").write_text(json.dumps(make_snapshot()))
        (tmp_path / "bad.json").write_text(json.dumps({"schema": "wrong"}))
        proc = run_script(tmp_path)
        assert proc.returncode == 1
        assert "good.json: ok" in proc.stdout
        assert "bad.json" in proc.stdout
