"""Direct tests of the simulated CPU: execution, enforcement, faults."""

import pytest

from repro.config import CostModel, RingMode
from repro.errors import (
    AccessViolation,
    BoundsViolation,
    GateViolation,
    IllegalInstruction,
)
from repro.hw.cpu import (
    CPU,
    CodeSegment,
    ExecutionLimit,
    Instruction as I,
    Link,
    LinkageFault,
    Op,
)
from repro.hw.memory import MemoryLevel
from repro.hw.rings import kernel_gate_brackets, user_brackets
from repro.hw.segmentation import SDW, PTW, AccessMode, DescriptorSegment

PAGE = 16


class Ctx:
    """A minimal machine context for direct CPU tests."""

    def __init__(self, ring=4):
        self.dseg = DescriptorSegment()
        self.ring = ring
        self.codes = {}
        self.links = []

    def add_code(self, segno, instructions, brackets=None, gates=None,
                 entry_points=None):
        self.dseg.add(
            SDW(segno=segno, access=AccessMode.RE,
                brackets=brackets or user_brackets(4),
                page_table=[], bound=1, gates=gates)
        )
        self.codes[segno] = CodeSegment(list(instructions), entry_points or {})

    def add_data(self, segno, n_pages=1, access=AccessMode.RW, brackets=None,
                 in_core=True):
        ptws = [PTW() for _ in range(n_pages)]
        if in_core:
            for i, ptw in enumerate(ptws):
                ptw.place(i)
        self.dseg.add(
            SDW(segno=segno, access=access,
                brackets=brackets or user_brackets(4),
                page_table=ptws, bound=n_pages * PAGE)
        )
        return ptws

    def code_segment(self, segno):
        return self.codes[segno]

    def linkage(self):
        return self.links

    def stack_limit(self):
        return 4096


def make_cpu(core_frames=4, ring_mode=RingMode.HARDWARE_6180, **kwargs):
    return CPU(
        MemoryLevel("core", core_frames, 1, PAGE),
        CostModel(),
        ring_mode,
        PAGE,
        **kwargs,
    )


def run(instructions, args=None, ctx=None, cpu=None):
    ctx = ctx or Ctx()
    ctx.add_code(1, instructions)
    cpu = cpu or make_cpu()
    return cpu.execute(ctx, 1, 0, args or [])


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Op.ADD, 2, 3, 5),
            (Op.SUB, 7, 3, 4),
            (Op.MUL, 4, 5, 20),
            (Op.DIV, 17, 5, 3),
            (Op.DIV, -17, 5, -3),   # truncation toward zero
            (Op.MOD, 17, 5, 2),
            (Op.MOD, -17, 5, -2),
            (Op.EQ, 3, 3, 1),
            (Op.NE, 3, 3, 0),
            (Op.LT, 2, 3, 1),
            (Op.LE, 3, 3, 1),
            (Op.GT, 3, 2, 1),
            (Op.GE, 2, 3, 0),
        ],
    )
    def test_binops(self, op, a, b, expected):
        assert run([I(Op.PUSHI, a), I(Op.PUSHI, b), I(op), I(Op.HALT)]) == expected

    def test_neg_not_dup_pop_swap(self):
        assert run([I(Op.PUSHI, 5), I(Op.NEG), I(Op.HALT)]) == -5
        assert run([I(Op.PUSHI, 0), I(Op.NOT), I(Op.HALT)]) == 1
        assert run([I(Op.PUSHI, 3), I(Op.DUP), I(Op.ADD), I(Op.HALT)]) == 6
        assert run([I(Op.PUSHI, 1), I(Op.PUSHI, 2), I(Op.POP), I(Op.HALT)]) == 1
        assert run(
            [I(Op.PUSHI, 1), I(Op.PUSHI, 2), I(Op.SWAP), I(Op.SUB), I(Op.HALT)]
        ) == 1

    def test_division_by_zero(self):
        with pytest.raises(IllegalInstruction):
            run([I(Op.PUSHI, 1), I(Op.PUSHI, 0), I(Op.DIV), I(Op.HALT)])

    def test_stack_underflow(self):
        with pytest.raises(IllegalInstruction, match="underflow"):
            run([I(Op.ADD), I(Op.HALT)])


class TestControlFlow:
    def test_jumps(self):
        # if top == 0 jump to PUSHI 100
        prog = [
            I(Op.PUSHI, 0), I(Op.JZ, 4),
            I(Op.PUSHI, 1), I(Op.HALT),
            I(Op.PUSHI, 100), I(Op.HALT),
        ]
        assert run(prog) == 100

    def test_loop_sums(self):
        # sum 1..5 using frame slots: slot0 = i, slot1 = acc
        prog = [
            I(Op.PUSHI, 5), I(Op.STOREF, 0),
            I(Op.PUSHI, 0), I(Op.STOREF, 1),
            # loop:
            I(Op.LOADF, 0), I(Op.JZ, 15),
            I(Op.LOADF, 1), I(Op.LOADF, 0), I(Op.ADD), I(Op.STOREF, 1),
            I(Op.LOADF, 0), I(Op.PUSHI, 1), I(Op.SUB), I(Op.STOREF, 0),
            I(Op.JMP, 4),
            I(Op.LOADF, 1), I(Op.HALT),
        ]
        assert run(prog) == 15

    def test_args_in_frame(self):
        assert run([I(Op.LOADF, 0), I(Op.LOADF, 1), I(Op.SUB), I(Op.RET)],
                   args=[10, 4]) == 6

    def test_uninitialized_slot_rejected(self):
        with pytest.raises(IllegalInstruction):
            run([I(Op.LOADF, 3), I(Op.HALT)])

    def test_pc_out_of_range(self):
        with pytest.raises(IllegalInstruction):
            run([I(Op.PUSHI, 1)])  # falls off the end

    def test_execution_limit(self):
        with pytest.raises(ExecutionLimit):
            ctx = Ctx()
            ctx.add_code(1, [I(Op.JMP, 0)])
            make_cpu().execute(ctx, 1, 0, max_instructions=100)


class TestMemoryAccess:
    def test_load_store(self):
        ctx = Ctx()
        ctx.add_data(2)
        cpu = make_cpu()
        cpu.core.allocate()  # frame 0 backs page 0
        prog = [
            I(Op.PUSHI, 77), I(Op.STORE, 2, 3),
            I(Op.LOAD, 2, 3), I(Op.HALT),
        ]
        assert run(prog, ctx=ctx, cpu=cpu) == 77

    def test_indexed_load_store(self):
        ctx = Ctx()
        ctx.add_data(2)
        cpu = make_cpu()
        cpu.core.allocate()
        prog = [
            I(Op.PUSHI, 55), I(Op.PUSHI, 7), I(Op.STOREI, 2),
            I(Op.PUSHI, 7), I(Op.LOADI, 2), I(Op.HALT),
        ]
        assert run(prog, ctx=ctx, cpu=cpu) == 55

    def test_bounds_violation(self):
        ctx = Ctx()
        ctx.add_data(2, n_pages=1)
        with pytest.raises(BoundsViolation):
            run([I(Op.LOAD, 2, PAGE + 1), I(Op.HALT)], ctx=ctx)

    def test_write_to_readonly_segment_denied(self):
        ctx = Ctx()
        ctx.add_data(2, access=AccessMode.R)
        with pytest.raises(AccessViolation):
            run([I(Op.PUSHI, 1), I(Op.STORE, 2, 0), I(Op.HALT)], ctx=ctx)

    def test_missing_page_serviced_by_callback(self):
        serviced = []

        def service(ctx, segno, pageno):
            ptws[pageno].place(cpu.core.allocate())
            serviced.append((segno, pageno))

        ctx = Ctx()
        ptws = ctx.add_data(2, in_core=False)
        cpu = make_cpu(on_missing_page=service)
        assert run([I(Op.LOAD, 2, 0), I(Op.HALT)], ctx=ctx, cpu=cpu) == 0
        assert serviced == [(2, 0)]

    def test_missing_page_without_handler_propagates(self):
        from repro.errors import MissingPageFault

        ctx = Ctx()
        ctx.add_data(2, in_core=False)
        with pytest.raises(MissingPageFault):
            run([I(Op.LOAD, 2, 0), I(Op.HALT)], ctx=ctx)


class TestCallsAndRings:
    def test_static_call_and_return(self):
        ctx = Ctx()
        ctx.add_code(2, [I(Op.LOADF, 0), I(Op.PUSHI, 1), I(Op.ADD), I(Op.RET)])
        prog = [I(Op.PUSHI, 41), I(Op.CALL, 2, 0, 1), I(Op.RET)]
        assert run(prog, ctx=ctx) == 42

    def test_gate_call_switches_ring_and_returns(self):
        ctx = Ctx()
        # A ring-0 segment with a gate at offset 0.
        ctx.add_code(2, [I(Op.PUSHI, 9), I(Op.RET)],
                     brackets=kernel_gate_brackets(), gates=frozenset({0}))
        prog = [I(Op.CALL, 2, 0, 0), I(Op.RET)]
        assert run(prog, ctx=ctx) == 9
        assert ctx.ring == 4  # restored on return

    def test_inward_call_off_gate_rejected(self):
        ctx = Ctx()
        ctx.add_code(2, [I(Op.PUSHI, 9), I(Op.RET), I(Op.PUSHI, 666), I(Op.RET)],
                     brackets=kernel_gate_brackets(), gates=frozenset({0}))
        prog = [I(Op.CALL, 2, 2, 0), I(Op.RET)]  # offset 2 is not a gate
        with pytest.raises(GateViolation):
            run(prog, ctx=ctx)

    def test_ring_cost_counted(self):
        for mode, expect_ratio in ((RingMode.SOFTWARE_645, 10),
                                   (RingMode.HARDWARE_6180, 1)):
            ctx = Ctx()
            ctx.add_code(2, [I(Op.PUSHI, 1), I(Op.RET)],
                         brackets=kernel_gate_brackets(),
                         gates=frozenset({0}))
            cpu = make_cpu(ring_mode=mode)
            run([I(Op.CALL, 2, 0, 0), I(Op.RET)], ctx=ctx, cpu=cpu)
            assert cpu.calls_cross_ring == 1
            if mode is RingMode.SOFTWARE_645:
                assert cpu.cycles > 400

    def test_fetch_check_on_nonexecutable(self):
        ctx = Ctx()
        ctx.dseg.add(SDW(segno=1, access=AccessMode.RW,
                         brackets=user_brackets(4), page_table=[], bound=1))
        ctx.codes[1] = CodeSegment([I(Op.HALT)], {})
        with pytest.raises(AccessViolation):
            make_cpu().execute(ctx, 1, 0)


class TestLinkage:
    def test_snapped_link_call(self):
        ctx = Ctx()
        ctx.add_code(2, [I(Op.PUSHI, 5), I(Op.RET)])
        ctx.links = [Link("lib$f", snapped=True, segno=2, offset=0)]
        assert run([I(Op.CALLL, 0, 0), I(Op.RET)], ctx=ctx) == 5

    def test_unsnapped_link_invokes_handler(self):
        ctx = Ctx()
        ctx.add_code(2, [I(Op.PUSHI, 5), I(Op.RET)])
        ctx.links = [Link("lib$f")]

        def snap(c, index):
            link = c.linkage()[index]
            link.snapped, link.segno, link.offset = True, 2, 0

        cpu = make_cpu(on_linkage_fault=snap)
        assert run([I(Op.CALLL, 0, 0), I(Op.RET)], ctx=ctx, cpu=cpu) == 5

    def test_unsnapped_without_handler_faults(self):
        ctx = Ctx()
        ctx.links = [Link("lib$f")]
        with pytest.raises(LinkageFault):
            run([I(Op.CALLL, 0, 0), I(Op.RET)], ctx=ctx)

    def test_handler_failing_to_snap_faults(self):
        ctx = Ctx()
        ctx.links = [Link("lib$f")]
        cpu = make_cpu(on_linkage_fault=lambda c, i: None)
        with pytest.raises(LinkageFault):
            run([I(Op.CALLL, 0, 0), I(Op.RET)], ctx=ctx, cpu=cpu)

    def test_bad_link_index(self):
        ctx = Ctx()
        with pytest.raises(IllegalInstruction):
            run([I(Op.CALLL, 5, 0), I(Op.RET)], ctx=ctx)
