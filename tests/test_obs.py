"""Tests for the observability plane (repro.obs): the metrics
registry, the tracer, snapshot validation, and the end-to-end wiring
through a live system."""

import json

import pytest

from repro.config import SystemConfig
from repro.faults.harness import harness_config, standard_workload
from repro.faults.plan import FaultPlan, FaultSpec
from repro.hw.clock import Clock
from repro.obs import (
    NULL_TRACER,
    SCHEMA,
    SCHEMA_VERSION,
    MetricsRegistry,
    Tracer,
    validate_snapshot,
)
from repro.system import MulticsSystem


class TestMetricsRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b", "doc")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a.b", "doc").inc(-1)

    def test_name_validation(self):
        reg = MetricsRegistry()
        for bad in ("nodots", "Upper.case", "a..b", "a.b-c", ".a.b", "a.b."):
            with pytest.raises(ValueError):
                reg.counter(bad, "doc")

    def test_source_callable_wins_over_stored_value(self):
        reg = MetricsRegistry()
        box = {"n": 0}
        c = reg.counter("a.b", "doc", source=lambda: box["n"])
        box["n"] = 7
        assert c.value == 7

    def test_reregistration_rebinds_source(self):
        """Latest owner wins — a rebuilt component takes over its names."""
        reg = MetricsRegistry()
        reg.counter("a.b", "doc", source=lambda: 1)
        c = reg.counter("a.b", "doc", source=lambda: 2)
        assert c.value == 2
        assert reg.names().count("a.b") == 1

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a.b", "doc")
        with pytest.raises(ValueError):
            reg.gauge("a.b", "doc")

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("g.x", "doc")
        g.set(3)
        assert g.value == 3

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("h.x", "doc")
        assert h.mean == 0.0
        for v in (2, 4, 6):
            h.observe(v)
        s = h.summary()
        assert s == {"count": 3, "sum": 12, "min": 2, "max": 6, "mean": 4.0}

    def test_snapshot_stamps_clock(self):
        clock = Clock()
        reg = MetricsRegistry(clock=clock)
        reg.counter("a.b", "doc").inc(2)
        clock.advance(99)
        snap = reg.snapshot()
        assert snap["schema"] == SCHEMA
        assert snap["schema_version"] == SCHEMA_VERSION
        assert snap["clock"] == 99
        assert snap["counters"]["a.b"] == 2

    def test_snapshot_without_clock(self):
        snap = MetricsRegistry().snapshot()
        assert snap["clock"] is None

    def test_to_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("a.b", "doc").inc()
        reg.gauge("g.x", "doc").set(5)
        reg.histogram("h.x", "doc").observe(1)
        doc = json.loads(reg.to_json())
        assert validate_snapshot(doc) == []

    def test_delta(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b", "doc")
        before = reg.snapshot()
        c.inc(10)
        reg.counter("c.d", "doc").inc(3)
        after = reg.snapshot()
        diff = MetricsRegistry.delta(before, after)
        assert diff == {"a.b": 10, "c.d": 3}

    def test_validate_snapshot_flags_violations(self):
        good = MetricsRegistry().snapshot()
        assert validate_snapshot(good) == []
        assert validate_snapshot({"schema": "wrong"})  # non-empty
        bad = MetricsRegistry().snapshot()
        bad["counters"] = {"a.b": "nan"}
        assert validate_snapshot(bad)
        bad2 = MetricsRegistry().snapshot()
        bad2["histograms"] = {"h.x": {"count": 1}}  # missing keys
        assert validate_snapshot(bad2)


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(clock=None, enabled=False)
        sid = t.begin("gate", gate="x")
        assert sid == -1
        t.end(sid)
        t.point("ring_crossing")
        assert t.spans == []

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_enabled_spans_carry_clock_and_attrs(self):
        clock = Clock()
        t = Tracer(clock, enabled=True)
        sid = t.begin("gate", gate="hcs_$initiate")
        clock.advance(40)
        t.end(sid, outcome="granted")
        (span,) = t.spans
        assert span.name == "gate"
        assert span.start == 0 and span.end == 40
        assert span.duration == 40
        assert span.attrs["gate"] == "hcs_$initiate"
        assert span.attrs["outcome"] == "granted"

    def test_point_is_zero_duration(self):
        clock = Clock()
        clock.advance(5)
        t = Tracer(clock, enabled=True)
        t.point("ring_crossing", from_ring=4, to_ring=0)
        (span,) = t.spans
        assert span.start == span.end == 5
        assert span.duration == 0

    def test_by_name_and_counts(self):
        t = Tracer(Clock(), enabled=True)
        t.point("a")
        t.point("a")
        t.point("b")
        assert len(t.by_name("a")) == 2
        assert t.counts() == {"a": 2, "b": 1}

    def test_to_dicts(self):
        t = Tracer(Clock(), enabled=True)
        t.point("a", k=1)
        (d,) = t.to_dicts()
        assert d["name"] == "a" and d["attrs"] == {"k": 1}

    def test_clear_and_disable(self):
        t = Tracer(Clock(), enabled=True)
        t.point("a")
        t.clear()
        assert t.spans == []
        t.disable()
        assert t.begin("a") == -1

    def test_abort_closes_span_and_marks_it(self):
        clock = Clock()
        t = Tracer(clock, enabled=True)
        sid = t.begin("page_fault", page=3)
        clock.advance(25)
        t.abort(sid, steps=1)
        (span,) = t.spans
        assert span.end == 25
        assert span.attrs["aborted"] is True
        assert span.attrs["steps"] == 1
        assert t.open_spans() == []

    def test_abort_is_noop_when_disabled(self):
        t = Tracer(clock=None, enabled=False)
        t.abort(-1)
        t.abort(-1, steps=0)
        assert t.spans == []

    def test_open_spans_reports_unclosed(self):
        t = Tracer(Clock(), enabled=True)
        sid = t.begin("gate")
        assert len(t.open_spans()) == 1
        t.end(sid)
        assert t.open_spans() == []


class TestChromeTraceExport:
    def test_export_shape_and_lanes(self):
        clock = Clock()
        t = Tracer(clock, enabled=True)
        sid = t.begin("gate", gate="hcs_$initiate", process="alice")
        clock.advance(40)
        t.end(sid, outcome="granted")
        t.point("ring_crossing", from_ring=4, to_ring=0)
        doc = t.to_chrome_trace()
        events = doc["traceEvents"]
        # Metadata names the synthetic process and the kernel lane.
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        gate_ev = next(e for e in xs if e["name"] == "gate")
        assert gate_ev["ts"] == 0 and gate_ev["dur"] == 40
        cross_ev = next(e for e in xs if e["name"] == "ring_crossing")
        # Distinct lanes: the span carries a process, the point does not.
        assert gate_ev["tid"] != cross_ev["tid"]
        assert cross_ev["tid"] == 0  # kernel lane
        # Round-trips through JSON.
        json.loads(json.dumps(doc))

    def test_unclosed_span_exported_as_aborted_not_dropped(self):
        clock = Clock()
        t = Tracer(clock, enabled=True)
        t.begin("page_fault", process="w0")
        clock.advance(10)
        doc = t.to_chrome_trace()
        (ev,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ev["dur"] == 0
        assert ev["args"]["aborted"] is True


class TestSpanLeakRegression:
    """A page-fault generator dropped mid-service (process destroy,
    fatal injected fault) must not leak an open span."""

    def build(self, kind):
        from repro.config import PageControlKind
        from repro.hw.clock import Simulator
        from repro.hw.memory import MemoryHierarchy
        from repro.proc.scheduler import TrafficController
        from repro.vm.page_control import make_page_control
        from repro.vm.segment_control import ActiveSegmentTable

        config = SystemConfig(
            page_size=16, core_frames=8, bulk_frames=32, disk_frames=256,
            n_processors=1, n_virtual_processors=4, quantum=500,
        )
        config.validate()
        sim = Simulator()
        tc = TrafficController(sim, config)
        hierarchy = MemoryHierarchy(config)
        ast = ActiveSegmentTable(hierarchy)
        tracer = Tracer(sim.clock, enabled=True)
        pc = make_page_control(
            PageControlKind[kind], sim, tc, hierarchy, ast, config,
            tracer=tracer,
        )
        return tc, ast, pc, tracer

    @pytest.mark.parametrize("kind", ["SEQUENTIAL", "PARALLEL"])
    def test_dropped_fault_generator_aborts_its_span(self, kind):
        from repro.proc.process import Process

        tc, ast, pc, tracer = self.build(kind)
        seg = ast.activate(uid=1, n_pages=1)
        proc = Process("victim", ring=4)
        gen = pc.fault(proc, seg, 0)
        next(gen)          # reach `started = yield Now()`
        gen.send(0)        # enter the service loop, park at an I/O yield
        assert len(tracer.open_spans()) == 1
        gen.close()        # drop mid-service (GeneratorExit at the yield)
        assert tracer.open_spans() == []
        (span,) = tracer.by_name("page_fault")
        assert span.attrs["aborted"] is True
        assert span.end is not None

    def test_process_destroy_mid_fault_leaves_no_open_spans(self):
        """End-to-end: a faulting process torn down by the scheduler
        (generator garbage-collected) leaves a closed, aborted span."""
        from repro.proc.ipc import Charge
        from repro.proc.process import Process

        tc, ast, pc, tracer = self.build("SEQUENTIAL")
        seg = ast.activate(uid=1, n_pages=1)

        def body(proc):
            yield Charge(10)
            yield from pc.fault(proc, seg, 0)

        victim = Process("victim", body=body, ring=4)
        tc.add_process(victim)
        tc.run(until=12)  # partway into the fault's I/O service
        assert len(tracer.open_spans()) == 1
        victim.start().close()
        assert tracer.open_spans() == []


class TestSystemWiring:
    """The obs plane threaded through a whole live system."""

    def make_traced_system(self):
        plan = FaultPlan(
            [FaultSpec("memory.transfer", "transfer_error", at_ops=(2,))],
            seed=3,
        )
        config = harness_config(fault_plan=plan, tracing=True)
        system = MulticsSystem(config).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        system.register_user("Eve", "Spies", "eve-pw")
        return system

    def test_tracing_captures_all_span_kinds(self):
        system = self.make_traced_system()
        standard_workload(system, tag="t")
        counts = system.tracer.counts()
        assert counts.get("gate", 0) > 0
        assert counts.get("ring_crossing", 0) > 0
        assert counts.get("page_fault", 0) > 0
        assert counts.get("interrupt", 0) > 0
        assert counts.get("retry", 0) > 0

    def test_tracing_disabled_by_default_and_costless(self):
        config = harness_config()
        assert config.tracing is False
        system = MulticsSystem(config).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        system.register_user("Eve", "Spies", "eve-pw")
        standard_workload(system, tag="d")
        assert system.tracer.spans == []

    def test_registry_snapshot_reflects_activity(self):
        system = self.make_traced_system()
        standard_workload(system, tag="s")
        snap = system.metrics.snapshot()
        assert validate_snapshot(snap) == []
        c = snap["counters"]
        assert c["gate.calls"] > 0
        assert c["gate.cycles"] > 0
        assert c["pc.faults_serviced"] > 0
        assert c["mem.transfers"] > 0
        assert c["intr.delivered"] > 0
        assert c["io.buffer.puts"] >= 3
        assert c["faults.injected"] >= 1
        assert c["faults.recovered"] >= 1
        assert snap["histograms"]["faults.recovery_ticks"]["count"] >= 1
        assert snap["clock"] == system.clock.now

    def test_identical_simulated_cycles_traced_or_not(self):
        """Tracing must not perturb the simulation: same workload, same
        seed, same simulated clock with the tracer on or off."""
        clocks = {}
        for tracing in (False, True):
            config = harness_config(tracing=tracing)
            system = MulticsSystem(config).boot()
            system.register_user("Alice", "Crypto", "alice-pw")
            system.register_user("Eve", "Spies", "eve-pw")
            standard_workload(system, tag="z")
            clocks[tracing] = system.clock.now
        assert clocks[False] == clocks[True]


class TestHistogramReservoir:
    """The bounded deterministic reservoir behind percentile reads."""

    def test_reservoir_is_bounded_and_aggregates_exact(self):
        from repro.obs.registry import Histogram

        h = Histogram("h.x", reservoir_size=64)
        for i in range(10_000):
            h.observe(i)
        assert len(h.reservoir) == 64
        assert h.count == 10_000
        assert h.sum == sum(range(10_000))
        assert (h.min, h.max) == (0, 9_999)

    def test_same_sequence_same_reservoir_and_percentiles(self):
        from repro.obs.registry import Histogram

        runs = []
        for _ in range(2):
            h = Histogram("h.x", reservoir_size=32)
            for i in range(1_000):
                h.observe((i * 37) % 101)
            runs.append((list(h.reservoir), h.percentile(0.5),
                         h.percentile(0.95)))
        assert runs[0] == runs[1]

    def test_reservoir_seed_is_per_name(self):
        from repro.obs.registry import Histogram

        a, b = Histogram("h.a", reservoir_size=8), Histogram(
            "h.b", reservoir_size=8)
        for i in range(500):
            a.observe(i)
            b.observe(i)
        # Same aggregates either way; the kept samples differ because
        # each name seeds its own RNG.
        assert (a.count, a.sum) == (b.count, b.sum)
        assert a.reservoir != b.reservoir

    def test_percentiles_exact_under_the_bound(self):
        from repro.obs.registry import Histogram

        h = Histogram("h.x")
        assert h.percentile(0.5) is None
        for v in (10, 20, 30, 40, 50):
            h.observe(v)
        assert h.percentile(0.0) == 10
        assert h.percentile(0.5) == 30
        assert h.percentile(1.0) == 50
        assert h.percentile(-3) == 10   # q clamped
        assert h.percentile(7) == 50

    def test_summary_shape_is_unchanged(self):
        from repro.obs.registry import Histogram

        h = Histogram("h.x")
        h.observe(2)
        h.observe(4)
        assert h.summary() == {
            "count": 2, "sum": 6, "min": 2, "max": 4, "mean": 3.0,
        }


class TestDeltaSemantics:
    """``MetricsRegistry.delta`` is counters-only by design: counters
    are flows (differences mean activity); gauge levels and histogram
    summaries are not."""

    def test_counters_only_gauges_and_histograms_ignored(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b", "doc")
        g = reg.gauge("g.x", "doc")
        h = reg.histogram("h.x", "doc")
        g.set(100)
        h.observe(5)
        before = reg.snapshot()
        c.inc(4)
        g.set(1)        # level moved down: not a flow, not in delta
        h.observe(50)   # summary changed: not in delta either
        after = reg.snapshot()
        assert MetricsRegistry.delta(before, after) == {"a.b": 4}

    def test_counter_registered_between_snapshots_counts_from_zero(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.counter("new.flow", "doc").inc(7)
        after = reg.snapshot()
        assert MetricsRegistry.delta(before, after) == {"new.flow": 7}

    def test_quiet_counters_read_zero(self):
        # Every counter known to the *after* snapshot appears, quiet
        # ones as an explicit 0 — "no activity" is an answer, not a
        # missing key.
        reg = MetricsRegistry()
        reg.counter("a.b", "doc").inc(2)
        busy = reg.counter("c.d", "doc")
        before = reg.snapshot()
        busy.inc()
        assert MetricsRegistry.delta(before, reg.snapshot()) == \
            {"a.b": 0, "c.d": 1}


class TestTimelineCounterTracks:
    """`timeline_counter_events`: the repro.timeline/v1 → Perfetto
    counter-track projection (scripts/export_trace.py --counters)."""

    CANNED = {
        "schema": "repro.timeline/v1", "schema_version": 1,
        "t0": 0, "interval": 100, "capacity": 8, "dropped": 0,
        "samples": [
            {"index": 1, "t": 100, "dt": 100,
             "counters": {"smp.busy_cycles": 90},
             "gauges": {"smp.cpus": 2},
             "histograms": {"job.latency":
                            {"count": 3, "sum": 60, "p50": 15, "p95": 30}}},
            {"index": 2, "t": 200, "dt": 100,
             "counters": {}, "gauges": {"smp.cpus": 1},
             "histograms": {"job.latency":
                            {"count": 0, "sum": 0, "p50": None,
                             "p95": None}}},
        ],
        "breaches": [
            {"t": 200, "index": 2, "rule": "capacity",
             "kind": "gauge_floor", "value": 1, "limit": 2},
        ],
    }

    def test_projection_shapes(self):
        from repro.obs import timeline_counter_events

        events = timeline_counter_events(self.CANNED)
        counters = [e for e in events if e["ph"] == "C"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in counters} == {
            "smp.busy_cycles", "smp.cpus", "job.latency",
        }
        # Every counter point is timestamped at its sample time; the
        # all-None percentile row at t=200 emits no track point.
        assert [e["ts"] for e in counters if e["name"] == "smp.cpus"] == \
            [100, 200]
        assert [e["ts"] for e in counters if e["name"] == "job.latency"] \
            == [100]
        [breach] = instants
        assert breach["name"] == "breach:capacity"
        assert breach["ts"] == 200 and breach["s"] == "p"
        assert breach["args"] == {
            "kind": "gauge_floor", "value": 1, "limit": 2,
        }

    def test_events_ride_the_chrome_trace_export(self):
        t = Tracer(clock=Clock(), enabled=True)
        t.point("gate", process="p1")
        doc = t.to_chrome_trace(timeline=self.CANNED)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "C", "i", "M"} <= phases
