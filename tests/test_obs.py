"""Tests for the observability plane (repro.obs): the metrics
registry, the tracer, snapshot validation, and the end-to-end wiring
through a live system."""

import json

import pytest

from repro.config import SystemConfig
from repro.faults.harness import harness_config, standard_workload
from repro.faults.plan import FaultPlan, FaultSpec
from repro.hw.clock import Clock
from repro.obs import (
    NULL_TRACER,
    SCHEMA,
    SCHEMA_VERSION,
    MetricsRegistry,
    Tracer,
    validate_snapshot,
)
from repro.system import MulticsSystem


class TestMetricsRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b", "doc")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a.b", "doc").inc(-1)

    def test_name_validation(self):
        reg = MetricsRegistry()
        for bad in ("nodots", "Upper.case", "a..b", "a.b-c", ".a.b", "a.b."):
            with pytest.raises(ValueError):
                reg.counter(bad, "doc")

    def test_source_callable_wins_over_stored_value(self):
        reg = MetricsRegistry()
        box = {"n": 0}
        c = reg.counter("a.b", "doc", source=lambda: box["n"])
        box["n"] = 7
        assert c.value == 7

    def test_reregistration_rebinds_source(self):
        """Latest owner wins — a rebuilt component takes over its names."""
        reg = MetricsRegistry()
        reg.counter("a.b", "doc", source=lambda: 1)
        c = reg.counter("a.b", "doc", source=lambda: 2)
        assert c.value == 2
        assert reg.names().count("a.b") == 1

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a.b", "doc")
        with pytest.raises(ValueError):
            reg.gauge("a.b", "doc")

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("g.x", "doc")
        g.set(3)
        assert g.value == 3

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("h.x", "doc")
        assert h.mean == 0.0
        for v in (2, 4, 6):
            h.observe(v)
        s = h.summary()
        assert s == {"count": 3, "sum": 12, "min": 2, "max": 6, "mean": 4.0}

    def test_snapshot_stamps_clock(self):
        clock = Clock()
        reg = MetricsRegistry(clock=clock)
        reg.counter("a.b", "doc").inc(2)
        clock.advance(99)
        snap = reg.snapshot()
        assert snap["schema"] == SCHEMA
        assert snap["schema_version"] == SCHEMA_VERSION
        assert snap["clock"] == 99
        assert snap["counters"]["a.b"] == 2

    def test_snapshot_without_clock(self):
        snap = MetricsRegistry().snapshot()
        assert snap["clock"] is None

    def test_to_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("a.b", "doc").inc()
        reg.gauge("g.x", "doc").set(5)
        reg.histogram("h.x", "doc").observe(1)
        doc = json.loads(reg.to_json())
        assert validate_snapshot(doc) == []

    def test_delta(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b", "doc")
        before = reg.snapshot()
        c.inc(10)
        reg.counter("c.d", "doc").inc(3)
        after = reg.snapshot()
        diff = MetricsRegistry.delta(before, after)
        assert diff == {"a.b": 10, "c.d": 3}

    def test_validate_snapshot_flags_violations(self):
        good = MetricsRegistry().snapshot()
        assert validate_snapshot(good) == []
        assert validate_snapshot({"schema": "wrong"})  # non-empty
        bad = MetricsRegistry().snapshot()
        bad["counters"] = {"a.b": "nan"}
        assert validate_snapshot(bad)
        bad2 = MetricsRegistry().snapshot()
        bad2["histograms"] = {"h.x": {"count": 1}}  # missing keys
        assert validate_snapshot(bad2)


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(clock=None, enabled=False)
        sid = t.begin("gate", gate="x")
        assert sid == -1
        t.end(sid)
        t.point("ring_crossing")
        assert t.spans == []

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_enabled_spans_carry_clock_and_attrs(self):
        clock = Clock()
        t = Tracer(clock, enabled=True)
        sid = t.begin("gate", gate="hcs_$initiate")
        clock.advance(40)
        t.end(sid, outcome="granted")
        (span,) = t.spans
        assert span.name == "gate"
        assert span.start == 0 and span.end == 40
        assert span.duration == 40
        assert span.attrs["gate"] == "hcs_$initiate"
        assert span.attrs["outcome"] == "granted"

    def test_point_is_zero_duration(self):
        clock = Clock()
        clock.advance(5)
        t = Tracer(clock, enabled=True)
        t.point("ring_crossing", from_ring=4, to_ring=0)
        (span,) = t.spans
        assert span.start == span.end == 5
        assert span.duration == 0

    def test_by_name_and_counts(self):
        t = Tracer(Clock(), enabled=True)
        t.point("a")
        t.point("a")
        t.point("b")
        assert len(t.by_name("a")) == 2
        assert t.counts() == {"a": 2, "b": 1}

    def test_to_dicts(self):
        t = Tracer(Clock(), enabled=True)
        t.point("a", k=1)
        (d,) = t.to_dicts()
        assert d["name"] == "a" and d["attrs"] == {"k": 1}

    def test_clear_and_disable(self):
        t = Tracer(Clock(), enabled=True)
        t.point("a")
        t.clear()
        assert t.spans == []
        t.disable()
        assert t.begin("a") == -1


class TestSystemWiring:
    """The obs plane threaded through a whole live system."""

    def make_traced_system(self):
        plan = FaultPlan(
            [FaultSpec("memory.transfer", "transfer_error", at_ops=(2,))],
            seed=3,
        )
        config = harness_config(fault_plan=plan, tracing=True)
        system = MulticsSystem(config).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        system.register_user("Eve", "Spies", "eve-pw")
        return system

    def test_tracing_captures_all_span_kinds(self):
        system = self.make_traced_system()
        standard_workload(system, tag="t")
        counts = system.tracer.counts()
        assert counts.get("gate", 0) > 0
        assert counts.get("ring_crossing", 0) > 0
        assert counts.get("page_fault", 0) > 0
        assert counts.get("interrupt", 0) > 0
        assert counts.get("retry", 0) > 0

    def test_tracing_disabled_by_default_and_costless(self):
        config = harness_config()
        assert config.tracing is False
        system = MulticsSystem(config).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        system.register_user("Eve", "Spies", "eve-pw")
        standard_workload(system, tag="d")
        assert system.tracer.spans == []

    def test_registry_snapshot_reflects_activity(self):
        system = self.make_traced_system()
        standard_workload(system, tag="s")
        snap = system.metrics.snapshot()
        assert validate_snapshot(snap) == []
        c = snap["counters"]
        assert c["gate.calls"] > 0
        assert c["gate.cycles"] > 0
        assert c["pc.faults_serviced"] > 0
        assert c["mem.transfers"] > 0
        assert c["intr.delivered"] > 0
        assert c["io.buffer.puts"] >= 3
        assert c["faults.injected"] >= 1
        assert c["faults.recovered"] >= 1
        assert snap["histograms"]["faults.recovery_ticks"]["count"] >= 1
        assert snap["clock"] == system.clock.now

    def test_identical_simulated_cycles_traced_or_not(self):
        """Tracing must not perturb the simulation: same workload, same
        seed, same simulated clock with the tracer on or off."""
        clocks = {}
        for tracing in (False, True):
            config = harness_config(tracing=tracing)
            system = MulticsSystem(config).boot()
            system.register_user("Alice", "Crypto", "alice-pw")
            system.register_user("Eve", "Spies", "eve-pw")
            standard_workload(system, tag="z")
            clocks[tracing] = system.clock.now
        assert clocks[False] == clocks[True]
