"""Tests for the two page-control designs."""

import pytest

from repro.config import PageControlKind, SystemConfig
from repro.hw.clock import Simulator
from repro.hw.memory import MemoryHierarchy
from repro.proc.process import Process, ProcessState
from repro.proc.scheduler import TrafficController
from repro.vm.page_control import (
    ParallelPageControl,
    SequentialPageControl,
    make_page_control,
)
from repro.vm.segment_control import ActiveSegmentTable


def build(config: SystemConfig, kind: PageControlKind):
    sim = Simulator()
    tc = TrafficController(sim, config)
    hierarchy = MemoryHierarchy(config)
    ast = ActiveSegmentTable(hierarchy)
    pc = make_page_control(kind, sim, tc, hierarchy, ast, config)
    return sim, tc, hierarchy, ast, pc


@pytest.fixture(params=[PageControlKind.SEQUENTIAL, PageControlKind.PARALLEL])
def stack(request, config):
    return build(config, request.param)


class TestCommonBehaviour:
    def test_fault_brings_page_into_core(self, stack):
        sim, tc, hierarchy, ast, pc = stack
        seg = ast.activate(uid=1, n_pages=2)

        def body(proc):
            yield from pc.fault(proc, seg, 0)

        p = Process("faulter", body=body)
        tc.add_process(p)
        tc.run(max_events=100_000)
        assert p.state is ProcessState.STOPPED
        assert seg.ptws[0].in_core
        assert seg.homes[0] is None
        assert pc.faults_serviced == 1
        assert p.page_faults == 1

    def test_fault_latency_recorded(self, stack):
        sim, tc, hierarchy, ast, pc = stack
        seg = ast.activate(uid=1, n_pages=1)

        def body(proc):
            yield from pc.fault(proc, seg, 0)

        p = Process("faulter", body=body)
        tc.add_process(p)
        tc.run(max_events=100_000)
        assert len(pc.fault_records) == 1
        record = pc.fault_records[0]
        assert record.latency > 0
        assert p.fault_wait_cycles == record.latency

    def test_touch_faults_then_charges(self, stack):
        sim, tc, hierarchy, ast, pc = stack
        seg = ast.activate(uid=1, n_pages=1)

        def body(proc):
            yield from pc.touch(proc, seg, 0, write=True)
            yield from pc.touch(proc, seg, 0)  # second touch: no fault

        p = Process("toucher", body=body)
        tc.add_process(p)
        tc.run(max_events=100_000)
        assert p.page_faults == 1
        assert seg.ptws[0].modified

    def test_working_set_larger_than_core_evicts(self, stack):
        sim, tc, hierarchy, ast, pc = stack
        n_pages = hierarchy.core.n_frames + 4
        seg = ast.activate(uid=1, n_pages=n_pages)

        def body(proc):
            for page in range(n_pages):
                yield from pc.touch(proc, seg, page)

        p = Process("sweeper", body=body)
        tc.add_process(p)
        tc.run(max_events=500_000)
        assert p.state is ProcessState.STOPPED
        assert pc.core_evictions > 0
        assert hierarchy.core.used_count <= hierarchy.core.n_frames

    def test_sync_service_path(self, stack):
        sim, tc, hierarchy, ast, pc = stack
        seg = ast.activate(uid=2, n_pages=1)
        cost = pc.service_sync(seg, 0)
        assert seg.ptws[0].in_core
        assert cost >= hierarchy.disk.transfer_cost

    def test_sync_service_cascade_under_pressure(self, stack):
        sim, tc, hierarchy, ast, pc = stack
        n = hierarchy.core.n_frames + 2
        seg = ast.activate(uid=2, n_pages=n)
        for page in range(n):
            pc.service_sync(seg, page)
        assert pc.core_evictions >= 2


class TestSequentialSpecific:
    def test_cascade_steps_charged_to_faulter(self, config):
        """Under full core the faulting process itself performs the
        eviction steps (the complexity the paper criticizes)."""
        sim, tc, hierarchy, ast, pc = build(config, PageControlKind.SEQUENTIAL)
        assert isinstance(pc, SequentialPageControl)
        n = hierarchy.core.n_frames + 2
        seg = ast.activate(uid=1, n_pages=n)

        def body(proc):
            for page in range(n):
                yield from pc.touch(proc, seg, page)

        p = Process("f", body=body)
        tc.add_process(p)
        tc.run(max_events=500_000)
        multi_step = [r for r in pc.fault_records if r.steps_in_faulter > 1]
        assert multi_step, "expected cascaded faults with >1 step in faulter"

    def test_triple_cascade_when_bulk_full(self, config):
        """When the bulk store is also full, the faulter additionally
        moves a page to disk: three levels of work in one fault."""
        config.core_frames = 4
        config.bulk_frames = 4
        config.disk_frames = 64
        sim, tc, hierarchy, ast, pc = build(config, PageControlKind.SEQUENTIAL)
        seg = ast.activate(uid=1, n_pages=16)

        def body(proc):
            for page in range(16):
                yield from pc.touch(proc, seg, page)

        p = Process("f", body=body)
        tc.add_process(p)
        tc.run(max_events=500_000)
        assert pc.bulk_evictions > 0
        assert p.state is ProcessState.STOPPED


class TestParallelSpecific:
    def test_freer_processes_installed(self, config):
        sim, tc, hierarchy, ast, pc = build(config, PageControlKind.PARALLEL)
        assert isinstance(pc, ParallelPageControl)
        assert pc.core_freer is not None and pc.core_freer.dedicated
        assert pc.bulk_freer is not None and pc.bulk_freer.dedicated
        assert tc.vpt.dedicated_total == 2

    def test_faulting_path_is_single_step(self, config):
        """Paper: the faulting process 'can just wait until a primary
        memory block is free and then initiate the transfer'."""
        sim, tc, hierarchy, ast, pc = build(config, PageControlKind.PARALLEL)
        n = hierarchy.core.n_frames + 4
        seg = ast.activate(uid=1, n_pages=n)

        def body(proc):
            for page in range(n):
                yield from pc.touch(proc, seg, page)

        p = Process("f", body=body)
        tc.add_process(p)
        tc.run(max_events=500_000)
        assert p.state is ProcessState.STOPPED
        assert pc.fault_records
        assert all(r.steps_in_faulter <= 1 for r in pc.fault_records)

    def test_evictions_happen_in_freer_not_faulter(self, config):
        sim, tc, hierarchy, ast, pc = build(config, PageControlKind.PARALLEL)
        n = hierarchy.core.n_frames + 4
        seg = ast.activate(uid=1, n_pages=n)

        def body(proc):
            for page in range(n):
                yield from pc.touch(proc, seg, page)

        p = Process("f", body=body)
        tc.add_process(p)
        tc.run(max_events=500_000)
        assert pc.core_evictions > 0
        # The freer did work on its own dedicated processor time.
        assert pc.core_freer.cpu_cycles >= 0
        assert pc.core_freer.state is ProcessState.BLOCKED  # parked, not dead

    def test_free_frames_maintained_near_target(self, config):
        sim, tc, hierarchy, ast, pc = build(config, PageControlKind.PARALLEL)
        n = hierarchy.core.n_frames * 2
        seg = ast.activate(uid=1, n_pages=n)

        def body(proc):
            for page in range(n):
                yield from pc.touch(proc, seg, page)

        tc.add_process(Process("f", body=body))
        tc.run(max_events=500_000)
        # After the storm settles the freer has restored the low-water mark.
        assert hierarchy.core.free_count >= config.free_core_target

    def test_many_concurrent_faulters(self, config):
        config.n_processors = 2
        sim, tc, hierarchy, ast, pc = build(config, PageControlKind.PARALLEL)
        segs = [ast.activate(uid=i, n_pages=8) for i in range(4)]

        def body(seg):
            def gen(proc):
                for page in range(seg.n_pages):
                    yield from pc.touch(proc, seg, page)

            return gen

        procs = [Process(f"w{i}", body=body(s)) for i, s in enumerate(segs)]
        for p in procs:
            tc.add_process(p)
        tc.run(max_events=1_000_000)
        assert all(p.state is ProcessState.STOPPED for p in procs)
        assert pc.faults_serviced >= sum(s.n_pages for s in segs) - 4
