"""Regressions for scripts/run_benches.py: the export name derives
from the PR tag (``--pr`` flag, ``BENCH_PR`` env, baked default) rather
than a hardcoded filename, and the document written is the *merged*
export (snapshot + ``bench`` section) validated as a whole."""

import importlib.util
import json
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = ROOT / "scripts" / "run_benches.py"


@pytest.fixture(scope="module")
def rb():
    spec = importlib.util.spec_from_file_location("run_benches", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["run_benches"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("run_benches", None)


@pytest.fixture()
def sandbox(rb, tmp_path, monkeypatch):
    """Redirect the default export root and stub the one bench we run
    so the CLI paths are testable in milliseconds."""
    monkeypatch.setattr(rb, "_ROOT", tmp_path)
    monkeypatch.setattr(rb, "bench_e4", lambda: {"stub": True})
    monkeypatch.delenv("BENCH_PR", raising=False)
    return tmp_path


def test_default_name_derives_from_default_pr(rb, sandbox):
    assert rb.main(["run_benches", "--only", "E4"]) == 0
    out = sandbox / "benchmarks" / "results" / f"BENCH_{rb.DEFAULT_PR}.json"
    assert out.exists()  # parents were created, too
    doc = json.loads(out.read_text())
    assert doc["bench"]["e4_ring_cost"] == {"stub": True}
    assert doc["schema"].startswith("repro.obs/")


def test_current_default_pr_tag(rb):
    assert rb.DEFAULT_PR == "pr10"


def test_list_prints_known_ids_and_exits(rb, capsys):
    assert rb.main(["run_benches", "--list"]) == 0
    assert capsys.readouterr().out.split() == list(rb.BENCH_IDS)


def _scaled_bench_stubs(rb, monkeypatch, seen):
    """Replace the scale-aware benches with quick-recording stubs."""

    def fake_e18(quick=False):
        seen["E18"] = quick
        return {
            "users_1k": 1, "equivalent": True, "wall_speedup_1k": 1.0,
            "users_per_sec_1k": 1.0, "cycles_per_sec_1k": 1.0,
        }, rb._boot_snapshot()

    def fake_e19(quick=False):
        seen["E19"] = quick
        return {
            "cores": 1, "speedup_2shard": 1.0, "speedup_4shard": 1.0,
            "speedup_asserted": False, "one_shard_equivalent": True,
            "deterministic_merge": True,
        }, rb._boot_snapshot()

    def fake_e20(quick=False):
        seen["E20"] = quick
        return {
            "cores": 1,
            "overhead_wall_overhead_ratio": 1.0,
            "overhead_clock_identical": True,
            "chaos_breaches": 1, "chaos_breaches_confined": True,
            "chaos_busy_density_storm": 0.5,
            "chaos_busy_density_after": 0.9,
            "same_seed_identical": True, "sharded_identical": True,
            "one_shard_matches_driver": True,
        }, rb._boot_snapshot()

    def fake_e21(quick=False):
        seen["E21"] = quick
        return {
            "gates_total": 42, "max_gate_reduction": 0.8,
            "pen_successes_total": 0, "pen_attempted_total": 24,
            "all_identical": True, "all_deny_complete": True,
            "orchestrator_tenants": 4, "orchestrator_cross_denials": 4,
        }, rb._boot_snapshot()

    monkeypatch.setattr(rb, "workload_bench_numbers", fake_e18)
    monkeypatch.setattr(rb, "sharded_bench_numbers", fake_e19)
    monkeypatch.setattr(rb, "timeline_bench_numbers", fake_e20)
    monkeypatch.setattr(rb, "specialize_bench_numbers", fake_e21)


def test_quick_flag_reaches_the_scaled_benches(rb, sandbox, monkeypatch):
    seen = {}
    _scaled_bench_stubs(rb, monkeypatch, seen)
    assert rb.main(
        ["run_benches", "--only", "E18,E19,E20,E21", "--quick"]
    ) == 0
    assert seen == {"E18": True, "E19": True, "E20": True, "E21": True}


def test_without_quick_the_full_legs_run(rb, sandbox, monkeypatch):
    seen = {}
    _scaled_bench_stubs(rb, monkeypatch, seen)
    assert rb.main(["run_benches", "--only", "E18,E19,E20,E21"]) == 0
    assert seen == {"E18": False, "E19": False, "E20": False, "E21": False}


def test_pr_flag_overrides_default(rb, sandbox):
    assert rb.main(["run_benches", "--pr", "pr9", "--only", "E4"]) == 0
    assert (sandbox / "benchmarks" / "results" / "BENCH_pr9.json").exists()


def test_bench_pr_env_overrides_default(rb, sandbox, monkeypatch):
    monkeypatch.setenv("BENCH_PR", "pr8")
    assert rb.main(["run_benches", "--only", "E4"]) == 0
    assert (sandbox / "benchmarks" / "results" / "BENCH_pr8.json").exists()


def test_pr_flag_beats_env(rb, sandbox, monkeypatch):
    monkeypatch.setenv("BENCH_PR", "pr8")
    assert rb.main(["run_benches", "--pr", "pr10", "--only", "E4"]) == 0
    results = sandbox / "benchmarks" / "results"
    assert (results / "BENCH_pr10.json").exists()
    assert not (results / "BENCH_pr8.json").exists()


def test_explicit_output_path_still_wins(rb, sandbox, tmp_path):
    out = tmp_path / "deep" / "nested" / "custom.json"
    assert rb.main(["run_benches", str(out), "--only", "E4"]) == 0
    assert out.exists()


def test_pr_flag_requires_a_tag(rb, sandbox):
    assert rb.main(["run_benches", "--pr"]) == 2


def test_unknown_only_id_is_an_error(rb, sandbox):
    assert rb.main(["run_benches", "--only", "E99"]) == 2
    assert rb.main(["run_benches", "--only", ","]) == 2


def test_invalid_merged_document_refuses_to_write(rb, sandbox, monkeypatch):
    """Validation covers the document actually written: a snapshot that
    fails the schema aborts the export with nothing on disk."""
    monkeypatch.setattr(rb, "_boot_snapshot",
                        lambda: {"schema": "bogus/v0"})
    assert rb.main(["run_benches", "--only", "E4"]) == 1
    results = sandbox / "benchmarks" / "results"
    assert not results.exists() or not list(results.iterdir())
