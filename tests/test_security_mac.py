"""Tests for the MITRE compartment lattice (MAC)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.security.mac import (
    BOTTOM,
    LEVEL_NAMES,
    SecurityLabel,
    dominates,
    flow_allowed,
    may_read,
    may_write,
)

CATS = ["crypto", "nato", "nuclear", "sigint"]


def labels():
    return st.builds(
        SecurityLabel,
        level=st.integers(0, len(LEVEL_NAMES) - 1),
        categories=st.sets(st.sampled_from(CATS)).map(frozenset),
    )


class TestBasics:
    def test_bottom(self):
        assert BOTTOM.level == 0
        assert BOTTOM.categories == frozenset()

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            SecurityLabel(level=9)
        with pytest.raises(ValueError):
            SecurityLabel(level=-1)

    def test_parse(self):
        label = SecurityLabel.parse("secret:crypto,nato")
        assert label.level == 2
        assert label.categories == {"crypto", "nato"}

    def test_parse_no_categories(self):
        assert SecurityLabel.parse("top_secret") == SecurityLabel(3)

    def test_parse_unknown_level(self):
        with pytest.raises(ValueError):
            SecurityLabel.parse("mundane")

    def test_str_roundtrip(self):
        label = SecurityLabel.parse("confidential:nato")
        assert SecurityLabel.parse(str(label)) == label

    def test_dominates_needs_level_and_categories(self):
        secret_crypto = SecurityLabel(2, frozenset({"crypto"}))
        secret = SecurityLabel(2)
        ts = SecurityLabel(3)
        assert secret_crypto.dominates(secret)
        assert not secret.dominates(secret_crypto)
        assert ts.dominates(secret)
        assert not ts.dominates(secret_crypto)  # missing category


class TestRules:
    def test_no_read_up(self):
        low = SecurityLabel(0)
        high = SecurityLabel(2)
        assert may_read(high, low)
        assert not may_read(low, high)

    def test_no_write_down(self):
        low = SecurityLabel(0)
        high = SecurityLabel(2)
        assert may_write(low, high)
        assert not may_write(high, low)

    def test_incomparable_labels_isolated(self):
        """Distinct compartments at the same level can neither read nor
        write each other: absolute compartmentalization."""
        a = SecurityLabel(2, frozenset({"crypto"}))
        b = SecurityLabel(2, frozenset({"nato"}))
        assert not may_read(a, b) and not may_read(b, a)
        assert not may_write(a, b) and not may_write(b, a)


class TestLatticeProperties:
    @given(labels())
    def test_dominates_reflexive(self, a):
        assert a.dominates(a)

    @given(labels(), labels())
    def test_dominates_antisymmetric(self, a, b):
        if a.dominates(b) and b.dominates(a):
            assert a == b

    @given(labels(), labels(), labels())
    def test_dominates_transitive(self, a, b, c):
        if a.dominates(b) and b.dominates(c):
            assert a.dominates(c)

    @given(labels(), labels())
    def test_lub_is_upper_bound(self, a, b):
        up = a.lub(b)
        assert up.dominates(a) and up.dominates(b)

    @given(labels(), labels())
    def test_glb_is_lower_bound(self, a, b):
        down = a.glb(b)
        assert a.dominates(down) and b.dominates(down)

    @given(labels(), labels())
    def test_flow_matches_dominance(self, a, b):
        assert flow_allowed(a, b) == dominates(b, a)

    @given(labels(), labels())
    def test_no_bidirectional_flow_between_distinct_labels(self, a, b):
        """Information can flow both ways only between equal labels —
        the lattice's leak-freedom core."""
        if flow_allowed(a, b) and flow_allowed(b, a):
            assert a == b

    @given(labels())
    def test_bottom_flows_everywhere(self, a):
        assert flow_allowed(BOTTOM, a)
