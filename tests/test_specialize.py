"""Specialized per-workload kernels (ROADMAP item 2, bench E21).

The profiler folds a training run's audit/meter traces into a
GateProfile; specialize() generates a kernel whose table populates
only the profiled gates; everything else is a deny-and-audit stub.
The penetration suite is the regression gate: full, specialized, and
empty-profile kernels must all hold it, and the empty profile must
deny *everything*.
"""

import pytest

from repro import MulticsSystem, kernel_config
from repro.config import USER_RING
from repro.errors import (
    AccessViolation,
    KernelDenial,
    SpecializationDenial,
)
from repro.kernel.orchestrator import KernelOrchestrator
from repro.kernel.specialize import (
    EMPTY_PROFILE,
    GateProfile,
    KernelProfiler,
    SpecializedKernel,
    full_kernel_gates,
    specialize,
)
from repro.security.flaws import run_penetration_suite
from repro.security.mac import BOTTOM

#: A syntactically valid argument for every validator spec, so a call
#: reaches the handler (or its deny stub) instead of dying in
#: argument validation.
DUMMY_ARGS = {
    "int": 0,
    "uint": 0,
    "segno": 0,
    "str": "x",
    "name": "x",
    "path": ">x",
    "mode": "r",
    "pattern": "*.*.*",
    "label": BOTTOM,
    "words": [0],
    "any": 0,
}


def dummy_args(gate):
    return tuple(DUMMY_ARGS[spec] for spec in gate.signature)


def train(system, person="Alice", project="Crypto", password="alice-pw"):
    """A small training workload: the session ops the workload engine's
    profiles are built from."""
    session = system.login(person, project, password)
    segno = session.create_segment("training_data", n_pages=2)
    session.write_words(segno, [1, 2, 3])
    session.read_words(segno, 3)
    session.set_acl("training_data", f"*.{project}", "r")
    session.status("training_data")
    session.delete("training_data")
    session.logout()


# ---------------------------------------------------------------------------
# GateProfile
# ---------------------------------------------------------------------------

class TestGateProfile:
    def test_coerces_iterables_to_frozensets(self):
        p = GateProfile("p", gates=["a", "b", "a"], services=("fs",))
        assert p.gates == frozenset({"a", "b"})
        assert isinstance(p.services, frozenset)

    def test_contains(self):
        p = GateProfile("p", gates={"hcs_$initiate"})
        assert "hcs_$initiate" in p
        assert "net_$send" not in p

    def test_round_trip(self):
        p = GateProfile("p", gates={"a"}, fault_paths={"page_fault"},
                        services={"fs"}, trained_calls=7)
        assert GateProfile.from_dict(p.to_dict()) == p

    def test_merge_unions_everything(self):
        a = GateProfile("a", gates={"g1"}, services={"fs"}, trained_calls=2)
        b = GateProfile("b", gates={"g2"}, fault_paths={"interrupt"},
                        trained_calls=3)
        m = a.merge(b)
        assert m.name == "a+b"
        assert m.gates == {"g1", "g2"}
        assert m.fault_paths == {"interrupt"}
        assert m.services == {"fs"}
        assert m.trained_calls == 5

    def test_empty_profile_has_no_gates(self):
        assert not EMPTY_PROFILE.gates
        assert EMPTY_PROFILE.trained_calls == 0


# ---------------------------------------------------------------------------
# KernelProfiler
# ---------------------------------------------------------------------------

class TestKernelProfiler:
    def test_profile_covers_the_training_workload(self, kernel_system):
        profiler = KernelProfiler(kernel_system)
        train(kernel_system)
        profile = profiler.profile("training")
        # The workload's session ops, the login path, and the naming
        # machinery all show up.
        for gate in ("hcs_$proc_create", "hcs_$create_segment",
                     "hcs_$acl_add", "hcs_$delete_entry",
                     "hcs_$initiate", "hcs_$proc_destroy"):
            assert gate in profile.gates
        assert profile.trained_calls > 0
        assert "fs" in profile.services
        assert "process" in profile.services
        # 2-page writes through a tiny core: the page-fault path ran.
        assert "page_fault" in profile.fault_paths

    def test_ring_denied_gates_are_not_entered(self, kernel_system):
        profiler = KernelProfiler(kernel_system)
        session = kernel_system.login("Alice", "Crypto", "alice-pw")
        root = session.call("hcs_$get_root")
        with pytest.raises(AccessViolation):
            session.call("hcs_$set_quota", root, 10**9)
        profile = profiler.profile("probe")
        assert "hcs_$set_quota" not in profile.gates
        assert "hcs_$get_root" in profile.gates

    def test_mark_resets_the_baseline(self, kernel_system):
        profiler = KernelProfiler(kernel_system)
        train(kernel_system)
        first = profiler.profile("first", remark=True)
        assert first.gates
        quiet = profiler.profile("quiet")
        assert quiet.gates == frozenset()
        assert quiet.trained_calls == 0


# ---------------------------------------------------------------------------
# SpecializedKernel
# ---------------------------------------------------------------------------

class TestSpecializedKernel:
    @pytest.fixture
    def trained(self, kernel_system):
        """(system, profile) after a training run."""
        profiler = KernelProfiler(kernel_system)
        train(kernel_system)
        return kernel_system, profiler.profile("trained")

    def test_census_partitions_the_full_inventory(self, trained):
        system, profile = trained
        kernel = specialize(system, profile)
        total = len(full_kernel_gates())
        assert kernel.gate_count() == total  # perimeter census unchanged
        assert kernel.gates.live_gate_count() == len(profile.gates)
        assert kernel.gates.stub_count() == total - len(profile.gates)

    def test_own_workload_runs_without_stub_hits(self, trained):
        system, profile = trained
        kernel = specialize(system, profile)
        previous = system.install_supervisor(kernel)
        try:
            train(system, person="Bob", password="bob-pw")
        finally:
            system.install_supervisor(previous)
        assert kernel.gates.deny_stub_hits == 0

    def test_unprofiled_gate_denied_and_audited(self, trained):
        system, profile = trained
        assert "net_$send" not in profile.gates
        kernel = specialize(system, profile)
        session = system.login("Eve", "Spies", "eve-pw")
        denials_before = len(system.audit.denied())
        trail_before = system.audit_trail.denials
        with pytest.raises(SpecializationDenial):
            kernel.call(session.process, "net_$send", "remote", "data")
        assert kernel.gates.deny_stub_hits == 1
        # One funnel: the denial is in the audit log and on the trail.
        denied = system.audit.denied()
        assert len(denied) == denials_before + 1
        assert denied[-1].object == "net_$send"
        assert denied[-1].category == "gate"
        assert system.audit_trail.denials == trail_before + 1

    def test_stub_keeps_ring_brackets(self, trained):
        system, profile = trained
        kernel = specialize(system, profile)
        session = system.login("Eve", "Spies", "eve-pw")
        # hcs_$set_quota is privileged *and* unprofiled: the ring check
        # still fires first, exactly as on the full kernel.
        root = session.call("hcs_$get_root")
        with pytest.raises(AccessViolation):
            kernel.call(session.process, "hcs_$set_quota", root, 10**9)
        assert kernel.gates.deny_stub_hits == 0

    def test_surface_report_measures_reduction(self, trained):
        system, profile = trained
        kernel = specialize(system, profile)
        report = kernel.surface_report()
        assert report["gates_live"] + report["deny_stubs"] == report["gates_total"]
        assert 0 < report["gate_reduction"] < 1
        assert report["reachable_statements"] < report["full_statements"]
        assert 0 < report["statement_reduction"] < 1

    def test_empty_profile_denies_every_user_gate(self):
        system = MulticsSystem(kernel_config()).boot()
        kernel = specialize(system, EMPTY_PROFILE)
        from repro.proc.process import Process
        from repro.security.principal import Principal

        process = Process("probe", ring=USER_RING,
                          principal=Principal("Probe", "Test"))
        user_gates = privileged = 0
        for gate in full_kernel_gates():
            args = dummy_args(gate)
            if gate.user_available():
                user_gates += 1
                with pytest.raises(SpecializationDenial):
                    kernel.call(process, gate.name, *args)
            else:
                privileged += 1
                with pytest.raises(AccessViolation):
                    kernel.call(process, gate.name, *args)
        assert user_gates + privileged == len(full_kernel_gates())
        # Every user-reachable gate hit the stub; the ring check kept
        # the privileged ones from ever entering.
        assert kernel.gates.deny_stub_hits == user_gates
        assert kernel.gates.live_gate_count() == 0

    def test_install_supervisor_rejects_foreign_services(self, kernel_system):
        other = MulticsSystem(kernel_config())
        foreign = specialize(other, EMPTY_PROFILE)
        with pytest.raises(ValueError):
            kernel_system.install_supervisor(foreign)

    def test_specialize_metrics_registered(self, trained):
        system, profile = trained
        kernel = specialize(system, profile)
        names = system.metrics.names()
        for name in ("specialize.kernels", "specialize.gates",
                     "specialize.deny_stubs", "specialize.deny_stub_hits",
                     "specialize.reachable_statements"):
            assert name in names
        snapshot = system.metrics.snapshot()
        assert snapshot["gauges"]["specialize.kernels"] == 1
        assert snapshot["gauges"]["specialize.gates"] == len(profile.gates)


# ---------------------------------------------------------------------------
# The penetration-regression gate (satellite for E11/E21)
# ---------------------------------------------------------------------------

class TestPenetrationRegression:
    def _deny_complete(self, system):
        return system.audit_trail.denials == len(system.audit.denied())

    def test_full_kernel_still_holds(self, kernel_system):
        report = run_penetration_suite(kernel_system)
        assert report.successes == 0
        assert report.attempted == len(report.results)

    def test_specialized_kernel_holds(self):
        system = MulticsSystem(kernel_config()).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        profiler = KernelProfiler(system)
        train(system)
        kernel = specialize(system, profiler.profile("trained"))
        report = run_penetration_suite(system, supervisor=kernel)
        assert report.system_kind == "specialized:trained"
        assert report.successes == 0
        assert self._deny_complete(system)
        # The injection was transient: the full kernel is back.
        assert system.supervisor is not kernel

    def test_empty_profile_denies_everything(self):
        system = MulticsSystem(kernel_config()).boot()
        kernel = specialize(system, EMPTY_PROFILE)
        stub_hits_before = kernel.gates.deny_stub_hits
        report = run_penetration_suite(system, supervisor=kernel)
        assert report.successes == 0
        # Not one attack got past login: every result is an up-front
        # denial, and each one is on the audit trail.
        for result in report.results:
            assert "denied before the attack could run" in result.detail
        assert kernel.gates.deny_stub_hits > stub_hits_before
        assert self._deny_complete(system)

    def test_legacy_suite_unchanged_by_parameterization(self, legacy_system):
        report = run_penetration_suite(legacy_system)
        assert report.successes >= 3  # the legacy flaws still reproduce


# ---------------------------------------------------------------------------
# KernelOrchestrator
# ---------------------------------------------------------------------------

class TestKernelOrchestrator:
    @pytest.fixture
    def orchestrated(self, kernel_system):
        """System + orchestrator with two trained tenant classes."""
        profiler = KernelProfiler(kernel_system)
        train(kernel_system)
        fs_profile = profiler.profile("fs_tenant", remark=True)
        net_profile = GateProfile(
            "net_tenant",
            gates=fs_profile.gates | {"net_$attach", "net_$send",
                                      "net_$status"},
            services=fs_profile.services | {"io_network"},
            trained_calls=fs_profile.trained_calls,
        )
        orch = KernelOrchestrator(kernel_system)
        orch.add_tenant("fs", fs_profile)
        orch.add_tenant("net", net_profile)
        return kernel_system, orch

    def test_legacy_substrate_rejected(self, legacy_system):
        with pytest.raises(ValueError):
            KernelOrchestrator(legacy_system)

    def test_duplicate_tenant_rejected(self, orchestrated):
        _, orch = orchestrated
        with pytest.raises(ValueError):
            orch.add_tenant("fs", EMPTY_PROFILE)

    def test_unknown_tenant_rejected(self, orchestrated):
        _, orch = orchestrated
        with pytest.raises(ValueError):
            orch.kernel_for("nosuch")
        with pytest.raises(ValueError):
            orch.login("nosuch", "Alice", "Crypto", "alice-pw")

    def test_sessions_route_to_their_tenant_kernel(self, orchestrated):
        system, orch = orchestrated
        fs_user = orch.login("fs", "Fay", "Load", "fay-pw")
        net_user = orch.login("net", "Ned", "Load", "ned-pw")
        assert orch.tenant_of(fs_user.process) == "fs"
        assert orch.tenant_of(net_user.process) == "net"
        assert fs_user._sup is orch.kernel_for("fs")
        # Each tenant's own workload is granted by its own kernel.
        segno = fs_user.create_segment("fs_data", n_pages=1)
        fs_user.write_words(segno, [7])
        net_user.call("net_$attach")
        net_user.call("net_$send", "remote-host", "hello")
        assert orch.kernel_for("fs").gates.deny_stub_hits == 0
        assert orch.kernel_for("net").gates.deny_stub_hits == 0

    def test_cross_tenant_gate_is_denied_and_audited(self, orchestrated):
        system, orch = orchestrated
        fs_user = orch.login("fs", "Fay", "Load", "fay-pw")
        denials_before = len(system.audit.denied())
        with pytest.raises(SpecializationDenial):
            orch.call(fs_user.process, "net_$send", "remote-host", "leak")
        assert orch.kernel_for("fs").gates.deny_stub_hits == 1
        assert orch.routed_calls == 1
        denied = system.audit.denied()
        assert denied[-1].object == "net_$send"
        # The same call through the *full* kernel would have been
        # granted: shared substrate, per-tenant perimeter.
        assert "net_$send" in system.supervisor.gates

    def test_unrouted_process_falls_back_to_full_kernel(self, orchestrated):
        system, orch = orchestrated
        session = system.login("Alice", "Crypto", "alice-pw")
        root = orch.call(session.process, "hcs_$get_root")
        assert root == session.call("hcs_$get_root")
        assert orch.unrouted_calls == 1

    def test_installed_restores_the_system(self, orchestrated):
        system, orch = orchestrated
        before_sup, before_listener = system.supervisor, system.listener
        with orch.installed("fs") as kernel:
            assert system.supervisor is kernel
            assert system.listener is orch.listeners["fs"]
        assert system.supervisor is before_sup
        assert system.listener is before_listener

    def test_logout_goes_through_the_tenant_listener(self, orchestrated):
        system, orch = orchestrated
        fs_user = orch.login("fs", "Fay", "Load", "fay-pw")
        assert orch.listeners["fs"].active_count == 1
        orch.logout(fs_user)
        assert orch.listeners["fs"].active_count == 0
        assert orch.tenant_of(fs_user.process) is None
        with pytest.raises(ValueError):
            orch.logout(fs_user)

    def test_route_process_binds_existing_processes(self, orchestrated):
        system, orch = orchestrated
        session = system.login("Bob", "Crypto", "bob-pw")
        orch.route_process(session.process, "fs")
        assert orch.tenant_of(session.process) == "fs"
        orch.call(session.process, "hcs_$get_root")
        assert orch.routed_calls == 1

    def test_orchestrator_metrics(self, orchestrated):
        system, orch = orchestrated
        snapshot = system.metrics.snapshot()
        assert snapshot["gauges"]["specialize.tenants"] == 2
        assert snapshot["gauges"]["specialize.kernels"] == 2
        assert "specialize.routed_calls" in snapshot["counters"]
        assert "specialize.unrouted_calls" in snapshot["counters"]
