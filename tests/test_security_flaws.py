"""The penetration suite against both supervisors (experiment E11)."""

import pytest

from repro import MulticsSystem, kernel_config, legacy_config
from repro.security.flaws import (
    STANDARD_ATTACKS,
    ClassifiedExfiltrationAttack,
    MalformedObjectAttack,
    PrivilegedGateAttack,
    ResidueAttack,
    SearchPathLeakAttack,
    WakeupForgeryAttack,
    run_penetration_suite,
)


@pytest.fixture(scope="module")
def legacy_report():
    system = MulticsSystem(legacy_config()).boot()
    return run_penetration_suite(system)


@pytest.fixture(scope="module")
def kernel_report():
    system = MulticsSystem(kernel_config()).boot()
    return run_penetration_suite(system)


class TestHeadline:
    def test_legacy_penetrable(self, legacy_report):
        """'In all general-purpose systems confronted, a wily user can
        construct a program that can obtain unauthorized access.'"""
        assert legacy_report.successes >= 3

    def test_kernel_resists_every_attack(self, kernel_report):
        assert kernel_report.successes == 0

    def test_suite_covers_multiple_flaw_classes(self):
        classes = {a.flaw_class for a in STANDARD_ATTACKS}
        assert len(classes) == len(STANDARD_ATTACKS)  # all distinct


class TestIndividualAttacks:
    def by_name(self, report, name):
        return next(r for r in report.results if r.attack == name)

    def test_malformed_object(self, legacy_report, kernel_report):
        assert self.by_name(legacy_report, "malformed_object_segment").succeeded
        assert not self.by_name(kernel_report, "malformed_object_segment").succeeded

    def test_residue(self, legacy_report, kernel_report):
        assert self.by_name(legacy_report, "storage_residue").succeeded
        assert not self.by_name(kernel_report, "storage_residue").succeeded

    def test_search_leak(self, legacy_report, kernel_report):
        assert self.by_name(legacy_report, "search_path_leak").succeeded
        assert not self.by_name(kernel_report, "search_path_leak").succeeded

    def test_exfiltration(self, legacy_report, kernel_report):
        assert self.by_name(legacy_report, "classified_exfiltration").succeeded
        assert not self.by_name(kernel_report, "classified_exfiltration").succeeded

    def test_controls_hold_on_both(self, legacy_report, kernel_report):
        """IPC guarding and ring brackets predate the kernel work and
        hold on both systems."""
        for report in (legacy_report, kernel_report):
            assert not self.by_name(report, "wakeup_forgery").succeeded
            assert not self.by_name(report, "privileged_gate_call").succeeded


class TestFlawMechanics:
    def test_residue_requires_clearing_off(self):
        """Clearing freed frames (the kernel's default) kills the
        residue channel even on the legacy supervisor: flaw review in
        action."""
        system = MulticsSystem(legacy_config(clear_freed_frames=True)).boot()
        system.register_user("Wily", "Pentest", "wily-pw")
        system.register_user("Victim", "Payroll", "victim-pw")
        result = ResidueAttack().run(system)
        assert not result.succeeded

    def test_malformed_object_counts_incident(self):
        system = MulticsSystem(legacy_config()).boot()
        system.register_user("Wily", "Pentest", "wily-pw")
        before = system.services.supervisor_incidents
        MalformedObjectAttack().run(system)
        assert system.services.supervisor_incidents == before + 1

    def test_audit_records_denials(self):
        system = MulticsSystem(kernel_config()).boot()
        system.register_user("Wily", "Pentest", "wily-pw")
        system.register_user("Victim", "Payroll", "victim-pw")
        denials_before = len(system.audit.denied())
        WakeupForgeryAttack().run(system)
        assert len(system.audit.denied()) >= denials_before
