"""Property-based invariants of the memory system.

A stateful hypothesis machine drives page control with arbitrary
interleavings of touches, synchronous fault servicing, segment
creation, and deletion, checking the storage invariants that page
control must never break — each page has exactly one home, censuses
agree with the hardware, and data written is data read back.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.config import PageControlKind, SystemConfig
from repro.hw.clock import Simulator
from repro.hw.memory import MemoryHierarchy
from repro.proc.scheduler import TrafficController
from repro.vm.page_control import make_page_control
from repro.vm.segment_control import ActiveSegmentTable


class PageControlMachine(RuleBasedStateMachine):
    @initialize(kind=st.sampled_from(list(PageControlKind)))
    def setup(self, kind):
        config = SystemConfig(
            page_size=8, core_frames=6, bulk_frames=10, disk_frames=128,
        )
        self.config = config
        sim = Simulator()
        tc = TrafficController(sim, config)
        self.hierarchy = MemoryHierarchy(config)
        self.ast = ActiveSegmentTable(self.hierarchy)
        self.pc = make_page_control(
            kind, sim, tc, self.hierarchy, self.ast, config
        )
        self.segments = {}
        self.shadow = {}   # (uid, pageno, offset) -> expected word
        self.next_uid = 1

    # -- rules ------------------------------------------------------------

    @rule(n_pages=st.integers(1, 4))
    def create_segment(self, n_pages):
        if self.hierarchy.disk.free_count < n_pages + 4:
            return
        uid = self.next_uid
        self.next_uid += 1
        self.segments[uid] = self.ast.activate(uid, n_pages)

    @rule(data=st.data())
    def write_word(self, data):
        if not self.segments:
            return
        uid = data.draw(st.sampled_from(sorted(self.segments)))
        seg = self.segments[uid]
        pageno = data.draw(st.integers(0, seg.n_pages - 1))
        offset = data.draw(st.integers(0, self.config.page_size - 1))
        value = data.draw(st.integers(0, 2**18))
        self.pc.service_sync(seg, pageno)
        ptw = seg.ptws[pageno]
        self.hierarchy.core.write(ptw.frame, offset, value)
        ptw.modified = True
        self.shadow[(uid, pageno, offset)] = value

    @rule(data=st.data())
    def read_back(self, data):
        if not self.shadow:
            return
        key = data.draw(st.sampled_from(sorted(self.shadow)))
        uid, pageno, offset = key
        if uid not in self.segments:
            return
        seg = self.segments[uid]
        self.pc.service_sync(seg, pageno)
        assert (
            self.hierarchy.core.read(seg.ptws[pageno].frame, offset)
            == self.shadow[key]
        )

    @rule(data=st.data())
    def touch_random_page(self, data):
        if not self.segments:
            return
        uid = data.draw(st.sampled_from(sorted(self.segments)))
        seg = self.segments[uid]
        pageno = data.draw(st.integers(0, seg.n_pages - 1))
        self.pc.service_sync(seg, pageno)

    @rule(data=st.data())
    def delete_segment(self, data):
        if not self.segments:
            return
        uid = data.draw(st.sampled_from(sorted(self.segments)))
        seg = self.segments.pop(uid)
        self.pc.flush_segment(seg)
        self.ast.drop(uid)
        self.shadow = {
            key: value for key, value in self.shadow.items() if key[0] != uid
        }

    # -- invariants ------------------------------------------------------------

    @invariant()
    def every_page_has_exactly_one_home(self):
        for seg in self.segments.values():
            for pageno in range(seg.n_pages):
                in_core = seg.ptws[pageno].in_core
                has_home = seg.homes[pageno] is not None
                assert in_core != has_home, (
                    f"page {pageno} of {seg.uid}: in_core={in_core}, "
                    f"home={seg.homes[pageno]}"
                )

    @invariant()
    def resident_census_matches_hardware(self):
        hw_resident = {
            (seg.uid, pageno)
            for seg in self.segments.values()
            for pageno in seg.resident_pages()
        }
        census = set(self.pc.resident)
        assert hw_resident == census

    @invariant()
    def core_never_overcommitted(self):
        assert self.hierarchy.core.used_count <= self.hierarchy.core.n_frames

    @invariant()
    def homes_point_at_allocated_frames(self):
        for seg in self.segments.values():
            for home in seg.homes:
                if home is not None:
                    level = self.hierarchy.level(home.level)
                    assert level.is_allocated(home.frame)


PageControlMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestPageControlInvariants = PageControlMachine.TestCase
