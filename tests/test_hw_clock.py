"""Tests for the discrete-event core."""

import pytest

from repro.hw.clock import Clock, Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_advance(self):
        clock = Clock()
        assert clock.advance(10) == 10
        assert clock.now == 10

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(42)
        assert clock.now == 42

    def test_no_backwards_time(self):
        clock = Clock()
        clock.advance(5)
        with pytest.raises(ValueError):
            clock.advance_to(3)

    def test_no_negative_advance(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(10, lambda: order.append("b"))
        sim.schedule(5, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.clock.now == 20

    def test_fifo_within_same_time(self):
        sim = Simulator()
        order = []
        for tag in ("x", "y", "z"):
            sim.schedule(7, lambda tag=tag: order.append(tag))
        sim.run()
        assert order == ["x", "y", "z"]

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                sim.schedule(1, lambda: chain(n + 1))

        sim.schedule(0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.clock.now == 3

    def test_run_until_stops_clock_at_limit(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, lambda: fired.append(1))
        sim.run(until=50)
        assert fired == []
        assert sim.clock.now == 50
        sim.run()
        assert fired == [1]

    def test_run_until_past_all_events_advances_clock(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.run(until=500)
        assert sim.clock.now == 500

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)
        sim.clock.advance(10)
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_event_budget_guards_livelock(self):
        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(0, forever)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_pending_count(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        assert sim.pending == 2
        sim.step()
        assert sim.pending == 1
