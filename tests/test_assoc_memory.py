"""Tests for the associative memory (repro.hw.assoc): the translation
cache must never outlive the decision it caches.

Unit tests cover the cache mechanics (round-robin bound, witness
checks, selective invalidation, cam); the system-level tests prove the
security invariants end to end: no cached translation survives page
eviction, ACL downgrade, ring-brackets downgrade, segment termination,
or process destruction — and the cache never changes architectural
outcomes, only cost.
"""

import pytest

from repro import MulticsSystem, kernel_config
from repro.errors import AccessViolation, BoundsViolation, MissingPageFault
from repro.hw.assoc import AssociativeMemory, cam_uid
from repro.hw.rings import user_brackets
from repro.hw.segmentation import (
    PTW,
    SDW,
    AccessMode,
    DescriptorSegment,
    Intent,
    translate,
)
from repro.proc.process import Process

PAGE = 16


def make_dseg(n_pages: int = 2, bound: int | None = None,
              access: AccessMode = AccessMode.RW, uid: int = 77,
              segno: int = 5) -> DescriptorSegment:
    dseg = DescriptorSegment()
    ptws = [PTW(in_core=True, frame=10 + i) for i in range(n_pages)]
    dseg.add(SDW(
        segno=segno, access=access, brackets=user_brackets(4),
        page_table=ptws, bound=bound or n_pages * PAGE, uid=uid,
    ))
    return dseg


class TestAssociativeMemoryUnit:
    def test_probe_miss_then_hit(self):
        dseg = make_dseg()
        am = dseg.am
        assert translate(dseg, 5, 3, 4, Intent.READ, PAGE, am=am) == (10, 3)
        assert am.misses == 1 and am.hits == 0
        assert translate(dseg, 5, 7, 4, Intent.READ, PAGE, am=am) == (10, 7)
        assert am.hits == 1  # same page, same ring, same intent
        # Different intent is a different decision: its own entry.
        translate(dseg, 5, 3, 4, Intent.WRITE, PAGE, am=am)
        assert am.misses == 2

    def test_hit_still_marks_ptw_bits(self):
        """Replacement-policy sampling must be identical AM on or off."""
        dseg = make_dseg()
        ptw = dseg.get(5).page_table[0]
        translate(dseg, 5, 0, 4, Intent.READ, PAGE, am=dseg.am)
        ptw.used = ptw.modified = False
        translate(dseg, 5, 1, 4, Intent.WRITE, PAGE, am=dseg.am)  # hit? no: intent
        translate(dseg, 5, 2, 4, Intent.WRITE, PAGE, am=dseg.am)  # hit
        assert dseg.am.hits >= 1
        assert ptw.used and ptw.modified

    def test_capacity_evicts_in_insertion_order(self):
        am = AssociativeMemory(capacity=2)
        ptw = PTW(in_core=True, frame=1)
        am.insert(1, 0, 4, Intent.READ, 1, ptw, PAGE, uid=None)
        am.insert(2, 0, 4, Intent.READ, 1, ptw, PAGE, uid=None)
        am.insert(3, 0, 4, Intent.READ, 1, ptw, PAGE, uid=None)
        assert len(am) == 2
        assert am.capacity_evictions == 1
        assert am.probe(1, 0, 4, Intent.READ, 0) is None  # oldest gone
        assert am.probe(3, 0, 4, Intent.READ, 0) is not None

    def test_zero_capacity_caches_nothing(self):
        am = AssociativeMemory(capacity=0)
        am.insert(1, 0, 4, Intent.READ, 1, PTW(in_core=True, frame=1),
                  PAGE, uid=None)
        assert len(am) == 0

    def test_witness_rejects_evicted_ptw(self):
        dseg = make_dseg()
        ptw = dseg.get(5).page_table[0]
        translate(dseg, 5, 0, 4, Intent.READ, PAGE, am=dseg.am)
        ptw.evict()
        # Even with no cam fired, the cached frame must not be honoured.
        assert dseg.am.probe(5, 0, 4, Intent.READ, 0) is None
        assert dseg.am.invalidations == 1
        with pytest.raises(MissingPageFault):
            translate(dseg, 5, 0, 4, Intent.READ, PAGE, am=dseg.am)

    def test_witness_rejects_moved_frame(self):
        dseg = make_dseg()
        ptw = dseg.get(5).page_table[0]
        translate(dseg, 5, 0, 4, Intent.READ, PAGE, am=dseg.am)
        ptw.place(42)  # page re-landed somewhere else
        assert translate(dseg, 5, 0, 4, Intent.READ, PAGE, am=dseg.am) == (42, 0)

    def test_witness_rejects_offset_past_bound(self):
        # Bound 20 = one full page + 4 words of page 1.
        dseg = make_dseg(n_pages=2, bound=20)
        translate(dseg, 5, 17, 4, Intent.READ, PAGE, am=dseg.am)
        # Offset 21 is on the *cached* page but outside the bound: the
        # cache must not turn a bounds violation into a read.
        with pytest.raises(BoundsViolation):
            translate(dseg, 5, 21, 4, Intent.READ, PAGE, am=dseg.am)

    def test_negative_offset_still_faults(self):
        dseg = make_dseg()
        translate(dseg, 5, 0, 4, Intent.READ, PAGE, am=dseg.am)
        with pytest.raises(BoundsViolation):
            translate(dseg, 5, -1, 4, Intent.READ, PAGE, am=dseg.am)

    def test_invalidate_segno_on_sdw_add_remove(self):
        dseg = make_dseg()
        translate(dseg, 5, 0, 4, Intent.READ, PAGE, am=dseg.am)
        dseg.remove(5)
        assert dseg.am.probe(5, 0, 4, Intent.READ, 0) is None

    def test_invalidate_uid_page_filter(self):
        dseg = make_dseg(n_pages=2)
        am = dseg.am
        translate(dseg, 5, 0, 4, Intent.READ, PAGE, am=am)
        translate(dseg, 5, PAGE, 4, Intent.READ, PAGE, am=am)
        am.fetch_insert(5, 4, uid=77)
        assert am.invalidate_uid(77, pageno=0) == 1
        assert am.probe(5, 0, 4, Intent.READ, 0) is None
        assert am.probe(5, 1, 4, Intent.READ, PAGE) is not None
        assert am.fetch_probe(5, 4)  # fetch legality ignores residence
        # Full-uid invalidation (revocation) takes the fetch entry too.
        assert am.invalidate_uid(77) == 2
        assert not am.fetch_probe(5, 4)

    def test_cam_clears_everything(self):
        dseg = make_dseg()
        am = dseg.am
        translate(dseg, 5, 0, 4, Intent.READ, PAGE, am=am)
        am.fetch_insert(5, 4, uid=77)
        dropped = am.cam()
        assert dropped == 2 and len(am) == 0 and am.cams == 1
        assert am.probe(5, 0, 4, Intent.READ, 0) is None

    def test_cam_uid_broadcasts_to_all_live_ams(self):
        a = make_dseg(uid=99, segno=5)
        b = make_dseg(uid=99, segno=8)
        translate(a, 5, 0, 4, Intent.READ, PAGE, am=a.am)
        translate(b, 8, 0, 4, Intent.READ, PAGE, am=b.am)
        assert cam_uid(99, pageno=0) >= 2
        assert a.am.probe(5, 0, 4, Intent.READ, 0) is None
        assert b.am.probe(8, 0, 4, Intent.READ, 0) is None
        assert cam_uid(None) == 0


# ---------------------------------------------------------------------------
# system-level security invariants
# ---------------------------------------------------------------------------

def small_system(**overrides):
    cfg = dict(core_frames=8, bulk_frames=16, disk_frames=512, page_size=16)
    cfg.update(overrides)
    system = MulticsSystem(kernel_config(**cfg)).boot()
    system.register_user("Alice", "Crypto", "alice-pw")
    system.register_user("Bob", "Crypto", "bob-pw")
    return system


class TestInvalidationInvariants:
    def test_eviction_never_serves_stale_or_reused_frame(self):
        """After a page is evicted (and its frame reused by another
        segment), a cached translation must fault and re-read the real
        page — never the frame's new tenant."""
        system = small_system()
        alice = system.login("Alice", "Crypto", "alice-pw")
        small = alice.create_segment("small", n_pages=1)
        big = alice.create_segment("big", n_pages=16)
        alice.write_words(small, [111] * 16)
        assert alice.read_words(small, 16) == [111] * 16  # now cached
        # Sweep a segment twice the size of core: evicts "small"'s page
        # and reuses its frame for "big"'s very different content.
        alice.write_words(big, [222] * 256)
        faults_before = system.services.page_control.faults_serviced
        assert alice.read_words(small, 16) == [111] * 16
        assert system.services.page_control.faults_serviced > faults_before
        snap = system.metrics.snapshot()
        assert snap["counters"]["am.invalidations"] > 0
        assert snap["counters"]["am.hits"] > 0

    def test_acl_downgrade_revokes_cached_access(self):
        """A cached WRITE translation must not let a process keep
        writing after its ACL entry is downgraded to read-only."""
        system = small_system()
        alice = system.login("Alice", "Crypto", "alice-pw")
        shared = alice.create_segment("shared", n_pages=1)
        alice.write_words(shared, [1, 2, 3])
        for path in (">udd>Crypto", ">udd>Crypto>Alice"):
            alice.set_acl(path, "Bob.Crypto", "r")
        alice.set_acl("shared", "Bob.Crypto", "rw")

        bob = system.login("Bob", "Crypto", "bob-pw")
        seg = bob.initiate(f"{alice.home_path}>shared")
        bob.write_words(seg, [9], offset=0)       # caches the WRITE path
        assert bob.read_words(seg, 3) == [9, 2, 3]

        alice.set_acl("shared", "Bob.Crypto", "r")  # the downgrade
        with pytest.raises(AccessViolation):
            bob.write_words(seg, [8], offset=1)
        assert bob.read_words(seg, 3) == [9, 2, 3]  # read survives
        assert not (bob.process.dseg.get(seg).access & AccessMode.W)

    def test_acl_delete_revokes_entirely(self):
        system = small_system()
        alice = system.login("Alice", "Crypto", "alice-pw")
        shared = alice.create_segment("shared2", n_pages=1)
        alice.write_words(shared, [5])
        for path in (">udd>Crypto", ">udd>Crypto>Alice"):
            alice.set_acl(path, "Bob.Crypto", "r")
        alice.set_acl("shared2", "Bob.Crypto", "r")
        bob = system.login("Bob", "Crypto", "bob-pw")
        seg = bob.initiate(f"{alice.home_path}>shared2")
        assert bob.read_words(seg, 1) == [5]      # caches the READ path
        dir_segno, name = alice.resolve_parent("shared2")
        alice.call("hcs_$acl_delete", dir_segno, name, "Bob.Crypto")
        with pytest.raises(AccessViolation):
            bob.read_words(seg, 1)

    def test_brackets_downgrade_revokes_cached_read(self):
        """Ring brackets tightened by a privileged (ring-1) caller must
        reach a ring-4 process's cached translations."""
        system = small_system()
        alice = system.login("Alice", "Crypto", "alice-pw")
        seg = alice.create_segment("guarded", n_pages=1)
        alice.write_words(seg, [7])
        assert alice.read_words(seg, 1) == [7]    # cached at ring 4

        admin = Process("admin", ring=1, principal=alice.process.principal)
        sup = system.supervisor
        handle = sup.call(admin, "hcs_$get_root")
        for name in ("udd", "Crypto", "Alice"):
            handle = sup.call(admin, "hcs_$initiate", handle, name)
        sup.call(admin, "hcs_$set_ring_brackets", handle, "guarded", 1, 1, 1)

        with pytest.raises(AccessViolation):
            alice.read_words(seg, 1)

    def test_terminate_drops_cached_translations(self):
        system = small_system()
        alice = system.login("Alice", "Crypto", "alice-pw")
        seg = alice.create_segment("gone", n_pages=1)
        alice.write_words(seg, [4])
        alice.read_words(seg, 1)
        am = alice.process.dseg.am
        alice.call("hcs_$terminate", seg)
        assert am.probe(seg, 0, 4, Intent.READ, 0) is None
        assert am.probe(seg, 0, 4, Intent.WRITE, 0) is None

    def test_process_destruction_cams_and_keeps_counters(self):
        """Teardown fires cam, and the aggregate am.* counters stay
        monotonic because retired counters are folded in."""
        system = small_system()
        alice = system.login("Alice", "Crypto", "alice-pw")
        seg = alice.create_segment("data", n_pages=1)
        alice.write_words(seg, [1] * 8)
        alice.read_words(seg, 8)
        am = alice.process.dseg.am
        before = system.metrics.snapshot()["counters"]
        assert before["am.hits"] > 0
        alice.logout()
        after = system.metrics.snapshot()["counters"]
        assert len(am) == 0 and am.cams >= 1
        assert after["am.hits"] >= before["am.hits"]
        assert after["am.cams"] >= 1


class TestArchitecturalEquivalence:
    def test_am_off_same_faults_same_values(self):
        """Tier-1 smoke: a mixed paging + sharing workload produces
        identical architectural results with the AM on and off."""
        outcomes = []
        for am_enabled in (True, False):
            system = small_system(am_enabled=am_enabled)
            alice = system.login("Alice", "Crypto", "alice-pw")
            seg = alice.create_segment("mix", n_pages=12)
            n = 12 * 16
            alice.write_words(seg, [(5 * i) % 97 for i in range(n)])
            sweeps = [alice.read_words(seg, n) for _ in range(2)]
            hot = alice.create_segment("hot", n_pages=1)
            alice.write_words(hot, list(range(16)))
            hots = [alice.read_words(hot, 16) for _ in range(5)]
            snap = system.metrics.snapshot()["counters"]
            outcomes.append({
                "sweeps": sweeps,
                "hots": hots,
                "faults": snap["pc.faults_serviced"],
            })
            if am_enabled:
                assert snap["am.hits"] > 0
            else:
                assert snap["am.hits"] == 0
        assert outcomes[0] == outcomes[1]

    def test_config_rejects_nonpositive_am_entries(self):
        with pytest.raises(ValueError):
            kernel_config(am_entries=0).validate()


class TestOffsetHandling:
    """Regressions for the word-offset unification: the AM hit path and
    the full walk must agree on ``(frame, word)``, and a negative
    offset must be rejected before the cache is even consulted."""

    def test_negative_offset_never_probes_the_am(self):
        dseg = make_dseg()
        am = dseg.am
        translate(dseg, 5, 0, 4, Intent.READ, PAGE, am=am)  # prime page 0
        hits, misses = am.hits, am.misses
        with pytest.raises(BoundsViolation):
            translate(dseg, 5, -1, 4, Intent.READ, PAGE, am=am)
        # A negative offset maps to pageno -1; no probe may witness it.
        assert (am.hits, am.misses) == (hits, misses)

    def test_negative_offset_faults_identically_with_am_off(self):
        dseg = make_dseg()
        with pytest.raises(BoundsViolation):
            translate(dseg, 5, -7, 4, Intent.READ, PAGE, am=None)
        with pytest.raises(BoundsViolation):
            translate(dseg, 5, -7, 4, Intent.READ, PAGE, am=dseg.am)

    def test_hit_and_walk_agree_on_word_offset(self):
        dseg = make_dseg(n_pages=2)
        walk = translate(dseg, 5, PAGE + 5, 4, Intent.READ, PAGE, am=dseg.am)
        hit = translate(dseg, 5, PAGE + 5, 4, Intent.READ, PAGE, am=dseg.am)
        assert dseg.am.hits == 1
        assert walk == hit == (11, 5)
