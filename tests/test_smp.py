"""Tests for the SMP layer: kernel locks (repro.kernel.locks) and the
deterministic lockstep CPU complex (repro.hw.smp).

The workload is the E16/E17 SUMMER program — one login session (hence
one process and one descriptor segment) per job, so the complex
exercises per-CPU associative-memory cams between jobs and parallel
page-fault traffic against shared page control.
"""

import pytest

from repro import MulticsSystem
from repro.errors import BoundsViolation
from repro.faults.harness import harness_config
from repro.hw.cpu import Instruction as I, Op
from repro.kernel.locks import KernelLock, LockTable
from repro.obs import MetricsRegistry
from repro.user.object_format import ObjectSegment

SUMMER = ObjectSegment(
    "summer",
    code=[
        I(Op.PUSHI, 0), I(Op.STOREF, 0),
        I(Op.PUSHI, 0), I(Op.STOREF, 1),
        I(Op.LOADF, 1), I(Op.PUSHI, 32), I(Op.LT), I(Op.JZ, 18),
        I(Op.LOADF, 0), I(Op.LOADF, 1), I(Op.LOADI, 0),   # segno patched
        I(Op.ADD), I(Op.STOREF, 0),
        I(Op.LOADF, 1), I(Op.PUSHI, 1), I(Op.ADD), I(Op.STOREF, 1),
        I(Op.JMP, 4),
        I(Op.LOADF, 0), I(Op.RET),
    ],
    definitions={"main": 0},
)


def summer_for(data_segno: int) -> ObjectSegment:
    return ObjectSegment(
        SUMMER.name,
        code=[
            I(Op.LOADI, data_segno) if inst.op is Op.LOADI else inst
            for inst in SUMMER.code
        ],
        definitions=dict(SUMMER.definitions),
    )


def smp_system(**overrides):
    """A booted kernel system sized so the SUMMER jobs run fault-free
    (override the frame counts to make them fault-heavy instead)."""
    kw = dict(core_frames=256, bulk_frames=512, disk_frames=2048)
    kw.update(overrides)
    system = MulticsSystem(harness_config(**kw)).boot()
    system.register_user("Alice", "Crypto", "alice-pw")
    return system


def make_jobs(system, n_jobs=8):
    """One SUMMER job per fresh login session (fresh process each)."""
    jobs, sessions = [], []
    for i in range(n_jobs):
        session = system.login("Alice", "Crypto", "alice-pw")
        data = session.create_segment(f"data{i}", n_pages=2)
        session.write_words(data, [3] * 32)
        segno = session.install_object(f"sum{i}", summer_for(data))
        jobs.append(session.program_job(segno, label=f"job{i}"))
        sessions.append((session, segno))
    return jobs, sessions


class TestKernelLock:
    def test_uncontended_acquire_is_free(self):
        lock = KernelLock("tc")
        assert lock.acquire(now=10, owner="a") == 0
        assert lock.acquisitions == 1
        assert lock.contentions == 0

    def test_anonymous_acquire_never_waits_but_counts(self):
        lock = KernelLock("ptl")
        lock.acquire(now=0, owner="a")
        lock.hold(100)
        assert lock.acquire(now=5) == 0          # DES path: owner=None
        assert lock.acquisitions == 2
        assert lock.contentions == 0

    def test_same_owner_reacquires_free(self):
        lock = KernelLock("ptl")
        owner = object()
        lock.acquire(now=0, owner=owner)
        lock.hold(50)
        assert lock.acquire(now=10, owner=owner) == 0
        assert lock.contentions == 0

    def test_cross_owner_waits_out_the_hold(self):
        lock = KernelLock("ptl")
        lock.acquire(now=0, owner="cpu0")
        lock.hold(40)
        wait = lock.acquire(now=15, owner="cpu1")
        assert wait == 25
        assert lock.contentions == 1
        assert lock.contention_cycles == 25

    def test_wait_extends_the_critical_window(self):
        lock = KernelLock("ptl")
        lock.acquire(now=0, owner="a")
        lock.hold(40)
        lock.acquire(now=0, owner="b")           # waits 40, runs from 40
        lock.hold(10)                            # ... holding until 50
        assert lock.acquire(now=0, owner="c") == 50

    def test_hold_after_the_window_expires_is_uncontended(self):
        lock = KernelLock("ptl")
        lock.acquire(now=0, owner="a")
        lock.hold(10)
        assert lock.acquire(now=100, owner="b") == 0
        assert lock.held_until == 100

    def test_negative_hold_rejected(self):
        lock = KernelLock("tc")
        with pytest.raises(ValueError):
            lock.hold(-1)


class TestLockTable:
    def test_fixed_lock_set_and_metrics(self):
        metrics = MetricsRegistry()
        table = LockTable(metrics=metrics)
        assert LockTable.NAMES == ("tc", "ptl", "ast")
        for name in LockTable.NAMES:
            assert table[name].name == name
            for leaf in ("acquisitions", "contentions", "contention_cycles"):
                assert f"lock.{name}.{leaf}" in metrics
        table.ptl.acquire(0, "a")
        table.ptl.hold(30)
        table.ptl.acquire(0, "b")
        assert table.total_contention_cycles() == 30

    def test_unknown_lock_name_raises(self):
        table = LockTable()
        with pytest.raises(KeyError):
            table["dseg"]

    def test_system_wires_the_table(self):
        system = smp_system()
        locks = system.services.locks
        assert system.services.scheduler.tc_lock is locks.tc
        assert system.services.page_control.ptl is locks.ptl
        assert system.services.ast.lock is locks.ast
        # Booting dispatches under the tc lock and activates segments
        # under the AST lock, so the discipline is already visible.
        assert locks.tc.acquisitions > 0
        assert locks.ast.acquisitions > 0


class TestComplex:
    def test_jobs_complete_with_correct_results(self):
        system = smp_system()
        jobs, _ = make_jobs(system)
        cx = system.cpu_complex(n_cpus=2)
        cx.run_jobs(jobs)
        assert [j.result for j in jobs] == [96] * 8
        assert all(j.error is None for j in jobs)
        assert all(j.cpu_id in (0, 1) for j in jobs)
        assert cx.jobs_completed == 8
        assert not cx.busy

    def test_single_cpu_matches_the_serial_path(self):
        """One-CPU lockstep is cycle-identical to the pre-SMP path:
        the clock advances by exactly the cycles fresh per-job CPUs
        would have charged."""
        serial = smp_system()
        total = 0
        for session, segno in make_jobs(serial)[1]:
            session.load_program(segno)
            code = session.process.code_segments[segno]
            cpu = session.make_cpu()
            assert cpu.execute(session.process, segno,
                               code.entry_points["main"]) == 96
            total += cpu.cycles
        system = smp_system()
        jobs, _ = make_jobs(system)
        cx = system.cpu_complex(n_cpus=1)
        before = system.clock.now
        cx.run_jobs(jobs)
        assert system.clock.now - before == total
        assert cx.stall_cycles == 0

    def test_two_cpus_run_parallel_work_faster(self):
        elapsed = {}
        for n_cpus in (1, 2):
            system = smp_system()
            jobs, _ = make_jobs(system)
            cx = system.cpu_complex(n_cpus=n_cpus)
            before = system.clock.now
            cx.run_jobs(jobs)
            elapsed[n_cpus] = system.clock.now - before
        assert elapsed[1] / elapsed[2] >= 1.8

    def test_fault_containment(self):
        """A job that dies on a hardware fault is contained: its CPU is
        reused and every other job still completes."""
        system = smp_system()
        jobs, _ = make_jobs(system, n_jobs=4)
        bomber = system.login("Alice", "Crypto", "alice-pw")
        data = bomber.create_segment("victim", n_pages=2)
        bad = ObjectSegment(
            "bomb",
            code=[I(Op.PUSHI, 9999), I(Op.LOADI, data), I(Op.RET)],
            definitions={"main": 0},
        )
        bad_job = bomber.program_job(bomber.install_object("bomb", bad))
        cx = system.cpu_complex(n_cpus=2)
        cx.run_jobs([bad_job] + jobs)
        assert isinstance(bad_job.error, BoundsViolation)
        assert bad_job.result is None
        assert [j.result for j in jobs] == [96] * 4
        assert cx.jobs_failed == 1
        assert cx.jobs_completed == 4
        assert not cx.busy

    def test_private_am_cams_between_processes(self):
        """Connecting a CPU to a different descriptor segment cams its
        private AM (the AM is processor hardware, not process state)."""
        system = smp_system()
        jobs, _ = make_jobs(system, n_jobs=3)
        cx = system.cpu_complex(n_cpus=1)
        cx.run_jobs(jobs)
        am = cx.cpus[0].private_am
        assert am is not None
        assert am.cams == 2        # job 2 and job 3 each switch dsegs
        assert am.hits > 0

    def test_fault_heavy_contention_degrades_gracefully(self):
        """With core sized to thrash, CPUs serialize on the page-table
        lock: contention shows up in lock.ptl.* and in stall cycles,
        and adding a CPU still never makes the workload slower."""
        tiny = dict(core_frames=8, bulk_frames=32, disk_frames=256)
        elapsed, stalls = {}, {}
        for n_cpus in (1, 2):
            system = smp_system(**tiny)
            jobs, _ = make_jobs(system)
            cx = system.cpu_complex(n_cpus=n_cpus)
            before = system.clock.now
            cx.run_jobs(jobs)
            elapsed[n_cpus] = system.clock.now - before
            stalls[n_cpus] = cx.stall_cycles
            assert [j.result for j in jobs] == [96] * 8
            locks = system.services.locks
            if n_cpus == 1:
                # A single CPU can never contend with itself.
                assert locks.ptl.contentions == 0
            else:
                assert locks.ptl.contentions > 0
                assert locks.ptl.contention_cycles > 0
        assert stalls[2] > stalls[1]
        assert elapsed[2] <= elapsed[1]

    def test_dispatch_cost_contends_on_the_tc_lock(self):
        system = smp_system()
        system.config.costs.smp_dispatch = 7
        jobs, _ = make_jobs(system, n_jobs=4)
        cx = system.cpu_complex(n_cpus=2)
        cx.run_jobs(jobs)
        locks = system.services.locks
        # CPU 1 dispatches inside CPU 0's dispatch hold every round.
        assert locks.tc.contentions > 0
        assert cx.stall_cycles > 0
        assert [j.result for j in jobs] == [96] * 4

    def test_per_cpu_meter_attribution(self):
        system = smp_system()
        jobs, _ = make_jobs(system)
        cx = system.cpu_complex(n_cpus=2)
        cx.run_jobs(jobs)
        meters = system.meters
        per_cpu = [meters.cpu_meter(i) for i in range(2)]
        assert sum(m.busy_cycles for m in per_cpu) == cx.busy_cycles
        assert sum(m.jobs for m in per_cpu) == 8
        snapshot = system.metrics.snapshot()["counters"]
        assert snapshot["meter.smp_busy_cycles"] == cx.busy_cycles
        assert snapshot["smp.jobs_completed"] == 8
        assert snapshot["smp.elapsed_cycles"] == cx.elapsed_cycles

    def test_validation(self):
        system = smp_system()
        with pytest.raises(ValueError):
            system.cpu_complex(n_cpus=0)
        cx = system.cpu_complex(n_cpus=1)
        with pytest.raises(ValueError):
            cx.run(quantum=0)

    def test_n_cpus_config_defaults(self):
        from repro.config import SystemConfig

        config = SystemConfig()
        assert config.cpu_count() == config.n_processors
        config.n_cpus = 4
        assert config.cpu_count() == 4
        config.n_cpus = 0
        with pytest.raises(ValueError):
            config.validate()
