"""Reproducibility guarantee: the simulation is a pure function of
(config, workload).  Two fresh boots with the same seed/config must
produce byte-identical ``repro.obs/v1`` metrics snapshots, identical
audit-trail exports, and the identical final simulated clock — with 1
or 2 CPUs, with tracing and metering on or off, fault-free or
thrashing.  No wall clock, thread scheduling, or hash ordering may
leak into results (this is what makes every bench in EXPERIMENTS.md
citable)."""

import pytest

from repro.faults.harness import standard_workload

from tests.test_smp import make_jobs, smp_system

FAULT_HEAVY = dict(core_frames=8, bulk_frames=32, disk_frames=256)


def boot_and_run(n_cpus: int, tracing: bool, metering: bool,
                 sizing: dict | None = None):
    """One fresh system: gate workload + SMP jobs; returns the
    byte-level artifacts a reproduction would publish."""
    overrides = dict(sizing or {})
    overrides.update(tracing=tracing, metering=metering, n_cpus=n_cpus)
    system = smp_system(**overrides)
    system.register_user("Eve", "Spies", "eve-pw")
    standard_workload(system, tag="det")
    jobs, _ = make_jobs(system)
    cx = system.cpu_complex()
    cx.run_jobs(jobs)
    assert [j.result for j in jobs] == [96] * 8
    return (
        system.metrics.to_json(),
        system.audit_trail.to_json(),
        system.clock.now,
    )


@pytest.mark.parametrize("tracing,metering", [
    (False, True),    # the default observability posture
    (True, True),     # everything on
    (False, False),   # everything off
])
@pytest.mark.parametrize("n_cpus", [1, 2])
def test_two_boots_are_byte_identical(n_cpus, tracing, metering):
    first = boot_and_run(n_cpus, tracing, metering)
    second = boot_and_run(n_cpus, tracing, metering)
    assert first[0] == second[0]      # metrics snapshot, byte for byte
    assert first[1] == second[1]      # audit trail export
    assert first[2] == second[2]      # final simulated clock


def test_fault_heavy_contention_is_reproducible():
    """Lock contention and page-fault interleaving are part of the
    deterministic state, not noise: the thrashing 2-CPU run reproduces
    exactly, including lock.* and smp.* counters."""
    first = boot_and_run(2, False, True, sizing=FAULT_HEAVY)
    second = boot_and_run(2, False, True, sizing=FAULT_HEAVY)
    assert first == second


def test_observability_is_free_in_simulated_time():
    """Tracing and metering never charge simulated cycles: every
    posture reaches the same final clock (so turning diagnostics on in
    a reproduction cannot perturb the numbers being reproduced)."""
    clocks = {
        (tracing, metering): boot_and_run(2, tracing, metering)[2]
        for tracing in (False, True)
        for metering in (False, True)
    }
    assert len(set(clocks.values())) == 1


def test_cpu_count_changes_timing_not_results():
    """Different CPU counts legitimately produce different clocks —
    the determinism claim is per-config, not across configs."""
    one = boot_and_run(1, False, True)
    two = boot_and_run(2, False, True)
    assert one[2] != two[2]


# ---------------------------------------------------------------------------
# chaos storms are part of the pure function too
# ---------------------------------------------------------------------------

STORM_TOPOLOGY = {
    "hosts": ["east", "west"],
    "links": [
        {"name": "east_up", "a": "east", "b": "multics"},
        {"name": "west_up", "a": "west", "b": "multics"},
    ],
}

STORM = {
    "name": "det-storm",
    "seed": 11,
    "controllers": [
        {"type": "timed", "events": [
            {"at": 500, "site": "link.east_up", "kind": "partition"},
            {"at": 2000, "site": "cpu.loss", "kind": "offline", "cpu": 1},
        ]},
        {"type": "random", "every": 400,
         "sites": ["link.east_up", "link.west_up"],
         "kinds": ["drop", "flap", "latency_spike"]},
        {"type": "targeted", "every": 900, "kind": "flap"},
    ],
}


def storm_run(seed: int):
    """A chaotic 2-CPU run: SMP jobs under a scenario storm with
    cross-host traffic sent between rounds."""
    from repro.faults.plan import FaultPlan, FaultSpec

    scenario = dict(STORM, seed=seed)
    system = smp_system(
        n_cpus=2,
        topology=STORM_TOPOLOGY,
        fault_plan=FaultPlan(
            [FaultSpec("link.*", "drop", rate=0.05)], seed=seed,
        ),
    )
    jobs, _ = make_jobs(system)
    cx = system.cpu_complex()
    engine = system.chaos_engine(scenario, complex_=cx)
    counter = [0]

    def on_round(_cx):
        engine.step()
        counter[0] += 1
        host = ("east", "west")[counter[0] % 2]
        system.topology.send(host, f"traffic-{counter[0]}")
        system.run(until=system.clock.now)  # drain scheduled deliveries

    cx.run_jobs(jobs, on_round=on_round)
    system.run()
    assert [j.result for j in jobs] == [96] * 8
    assert engine.applied  # the storm actually fired
    return (
        system.metrics.to_json(),
        system.audit_trail.to_json(),
        system.clock.now,
    )


def test_same_seed_storm_is_byte_identical():
    """Same seed + same scenario: the whole storm — injections, link
    outages, CPU loss, requeues — replays exactly, down to the audit
    and metrics export bytes."""
    assert storm_run(11) == storm_run(11)


def test_storm_seed_changes_the_storm():
    a = storm_run(11)
    b = storm_run(12)
    assert a[1] != b[1]  # different injections → different audit trail
