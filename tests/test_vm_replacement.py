"""Tests for replacement policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vm.replacement import (
    Candidate,
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    make_policy,
)


def cand(slot, used=False, modified=False, loaded_at=0):
    return Candidate(slot=slot, used=used, modified=modified, loaded_at=loaded_at)


class TestFIFO:
    def test_oldest_evicted(self):
        policy = FIFOPolicy()
        cands = [cand(0, loaded_at=10), cand(1, loaded_at=5), cand(2, loaded_at=20)]
        assert policy.select(cands) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FIFOPolicy().select([])

    def test_ignores_used_bit(self):
        policy = FIFOPolicy()
        cands = [cand(0, used=True, loaded_at=1), cand(1, used=False, loaded_at=2)]
        assert policy.select(cands) == 0


class TestClock:
    def test_prefers_unused(self):
        policy = ClockPolicy()
        cands = [cand(0, used=True, loaded_at=1), cand(1, used=False, loaded_at=2)]
        assert policy.select(cands) == 1

    def test_oldest_unused_wins(self):
        policy = ClockPolicy()
        cands = [
            cand(0, used=False, loaded_at=9),
            cand(1, used=False, loaded_at=3),
        ]
        assert policy.select(cands) == 1

    def test_all_used_falls_back_to_fifo(self):
        policy = ClockPolicy()
        cands = [cand(0, used=True, loaded_at=9), cand(1, used=True, loaded_at=3)]
        assert policy.select(cands) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClockPolicy().select([])


class TestLRU:
    def test_untouched_page_evicted_before_touched(self):
        policy = LRUPolicy()
        # Round 1: both unused -> both recency 0; slot order by loaded_at.
        cands = [cand(10, used=False, loaded_at=1), cand(20, used=False, loaded_at=2)]
        assert policy.select(cands) == 0
        # Round 2: slot 10 now used, slot 20 not: 20 is least recent.
        cands = [cand(10, used=True, loaded_at=1), cand(20, used=False, loaded_at=2)]
        assert policy.select(cands) == 1

    def test_note_loaded_updates_recency(self):
        policy = LRUPolicy()
        policy.select([cand(1), cand(2)])
        policy.note_loaded(1, time=100)
        # Slot 1 was just loaded; slot 2 is older.
        assert policy.select([cand(1), cand(2)]) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LRUPolicy().select([])


class TestFactory:
    @pytest.mark.parametrize("name", ["fifo", "clock", "lru"])
    def test_known_policies(self, name):
        assert make_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("random")


@given(
    st.lists(
        st.tuples(st.booleans(), st.booleans(), st.integers(0, 1000)),
        min_size=1,
        max_size=30,
    )
)
def test_every_policy_returns_valid_index(raw):
    """Property: all policies pick an in-range victim for any census."""
    cands = [
        cand(slot=i, used=u, modified=m, loaded_at=t)
        for i, (u, m, t) in enumerate(raw)
    ]
    for name in ("fifo", "clock", "lru"):
        index = make_policy(name).select(cands)
        assert 0 <= index < len(cands)
