"""Tests for the two file-system layers and the split KST."""

import pytest

from repro.errors import (
    AccessDenied,
    InvalidArgument,
    NameDuplication,
    NoSuchEntry,
    QuotaExceeded,
)
from repro.fs.acl import Acl
from repro.fs.directory import Branch, DirectoryTree, split_path, validate_name
from repro.fs.kst import KnownSegmentTable
from repro.fs.uid_layer import UidFileSystem
from repro.hw.memory import MemoryHierarchy
from repro.security.mac import SecurityLabel
from repro.vm.segment_control import ActiveSegmentTable


@pytest.fixture
def ufs(config):
    return UidFileSystem(ActiveSegmentTable(MemoryHierarchy(config)))


class TestUidLayer:
    def test_uids_are_unique_and_system_generated(self, ufs):
        uids = {ufs.create_segment(1) for _ in range(20)}
        assert len(uids) == 20

    def test_record_fields(self, ufs):
        uid = ufs.create_segment(3, label=SecurityLabel(2), created_at=7)
        record = ufs.record(uid)
        assert record.n_pages == 3
        assert record.label == SecurityLabel(2)
        assert record.created_at == 7
        assert not record.is_directory

    def test_creation_activates_segment(self, ufs):
        uid = ufs.create_segment(2)
        assert uid in ufs.ast

    def test_zero_pages_rejected(self, ufs):
        with pytest.raises(InvalidArgument):
            ufs.create_segment(0)

    def test_quota(self, config):
        ufs = UidFileSystem(
            ActiveSegmentTable(MemoryHierarchy(config)), max_pages=4
        )
        ufs.create_segment(3)
        with pytest.raises(QuotaExceeded):
            ufs.create_segment(2)

    def test_delete_reclaims_pages(self, ufs):
        uid = ufs.create_segment(4)
        used_before = ufs.ast.hierarchy.disk.used_count
        ufs.delete_segment(uid)
        assert not ufs.exists(uid)
        assert ufs.ast.hierarchy.disk.used_count == used_before - 4
        assert ufs.pages_in_use == 0

    def test_unknown_uid(self, ufs):
        with pytest.raises(NoSuchEntry):
            ufs.record(12345)

    def test_label_of(self, ufs):
        uid = ufs.create_segment(1, label=SecurityLabel(1))
        assert ufs.label_of(uid) == SecurityLabel(1)


class TestNames:
    def test_validate_name(self):
        validate_name("ok_name")
        for bad in ("", "a" * 33, "with>sep", "nul\x00"):
            with pytest.raises(InvalidArgument):
                validate_name(bad)

    def test_split_path(self):
        assert split_path(">a>b>c") == ["a", "b", "c"]
        assert split_path(">") == []
        with pytest.raises(InvalidArgument):
            split_path("relative>path")


class TestDirectoryTree:
    @pytest.fixture
    def tree(self, ufs):
        root_uid = ufs.create_segment(1, is_directory=True)
        return DirectoryTree(root_uid), ufs

    def add_dir(self, tree, ufs, parent, name, label=SecurityLabel(0)):
        uid = ufs.create_segment(1, label=label, is_directory=True)
        directory = tree.register_directory(uid, parent, label)
        parent.add(
            Branch(
                name=name,
                uid=uid,
                is_directory=True,
                acl=Acl.make(("*.*.*", "rw")),
                label=label,
            )
        )
        return directory

    def add_seg(self, ufs, directory, name, label=SecurityLabel(0)):
        uid = ufs.create_segment(1, label=label)
        directory.add(
            Branch(name=name, uid=uid, is_directory=False, label=label)
        )
        return uid

    def test_resolve_nested_path(self, tree):
        t, ufs = tree
        udd = self.add_dir(t, ufs, t.root, "udd")
        proj = self.add_dir(t, ufs, udd, "Crypto")
        uid = self.add_seg(ufs, proj, "notes")
        branch = t.resolve(">udd>Crypto>notes")
        assert branch.uid == uid

    def test_resolve_missing(self, tree):
        t, ufs = tree
        with pytest.raises(NoSuchEntry):
            t.resolve(">nothing")

    def test_resolve_through_segment_fails(self, tree):
        t, ufs = tree
        self.add_seg(ufs, t.root, "plainfile")
        with pytest.raises(NoSuchEntry):
            t.resolve(">plainfile>inside")

    def test_resolve_root_has_no_branch(self, tree):
        t, ufs = tree
        with pytest.raises(InvalidArgument):
            t.resolve(">")

    def test_single_step_lookup(self, tree):
        """The new minimal kernel interface: one directory, one name."""
        t, ufs = tree
        udd = self.add_dir(t, ufs, t.root, "udd")
        uid = self.add_seg(ufs, udd, "x")
        assert t.lookup(udd, "x").uid == uid

    def test_duplicate_names_rejected(self, tree):
        t, ufs = tree
        self.add_seg(ufs, t.root, "x")
        with pytest.raises(NameDuplication):
            self.add_seg(ufs, t.root, "x")

    def test_added_names(self, tree):
        t, ufs = tree
        self.add_seg(ufs, t.root, "primary")
        t.root.add_name("primary", "alias")
        assert t.root.get("alias") is t.root.get("primary")
        t.root.remove_name("alias")
        with pytest.raises(NoSuchEntry):
            t.root.get("alias")

    def test_cannot_remove_primary_name(self, tree):
        t, ufs = tree
        self.add_seg(ufs, t.root, "primary")
        with pytest.raises(InvalidArgument):
            t.root.remove_name("primary")

    def test_rename(self, tree):
        t, ufs = tree
        uid = self.add_seg(ufs, t.root, "old")
        t.root.rename("old", "new")
        assert t.root.get("new").uid == uid
        with pytest.raises(NoSuchEntry):
            t.root.get("old")

    def test_remove_branch_removes_aliases(self, tree):
        t, ufs = tree
        self.add_seg(ufs, t.root, "x")
        t.root.add_name("x", "y")
        t.root.remove("x")
        assert "y" not in t.root
        assert len(t.root) == 0

    def test_mac_nondecrease_enforced(self, tree):
        """A secret branch may live in an unclassified directory, but
        not the other way around."""
        t, ufs = tree
        secret_dir = self.add_dir(
            t, ufs, t.root, "secret", label=SecurityLabel(2)
        )
        with pytest.raises(AccessDenied):
            self.add_seg(ufs, secret_dir, "leak", label=SecurityLabel(0))
        # Downward-compatible labels are fine.
        self.add_seg(ufs, secret_dir, "ok", label=SecurityLabel(3))

    def test_register_directory_mac(self, tree):
        t, ufs = tree
        secret = self.add_dir(t, ufs, t.root, "s", label=SecurityLabel(2))
        uid = ufs.create_segment(1, is_directory=True)
        with pytest.raises(AccessDenied):
            t.register_directory(uid, secret, SecurityLabel(0))

    def test_path_of(self, tree):
        t, ufs = tree
        udd = self.add_dir(t, ufs, t.root, "udd")
        proj = self.add_dir(t, ufs, udd, "Crypto")
        assert t.path_of(proj) == ">udd>Crypto"
        assert t.path_of(t.root) == ">"

    def test_resolve_directory(self, tree):
        t, ufs = tree
        udd = self.add_dir(t, ufs, t.root, "udd")
        assert t.resolve_directory(">udd") is udd
        assert t.resolve_directory(">") is t.root

    def test_drop_directory_must_be_empty(self, tree):
        t, ufs = tree
        udd = self.add_dir(t, ufs, t.root, "udd")
        self.add_seg(ufs, udd, "x")
        with pytest.raises(InvalidArgument):
            t.drop_directory(udd.uid)
        udd.remove("x")
        t.drop_directory(udd.uid)
        with pytest.raises(NoSuchEntry):
            t.directory(udd.uid)

    def test_cannot_drop_root(self, tree):
        t, ufs = tree
        with pytest.raises(InvalidArgument):
            t.drop_directory(t.root.uid)


class TestKnownSegmentTable:
    def test_make_known_idempotent(self):
        kst = KnownSegmentTable()
        segno1, known1 = kst.make_known(uid=500)
        segno2, known2 = kst.make_known(uid=500)
        assert segno1 == segno2
        assert (known1, known2) == (False, True)

    def test_segnos_start_above_reserved(self):
        kst = KnownSegmentTable(first_segno=8)
        segno, _ = kst.make_known(uid=1)
        assert segno >= 8

    def test_bidirectional_lookup(self):
        kst = KnownSegmentTable()
        segno, _ = kst.make_known(uid=42)
        assert kst.uid_of(segno) == 42
        assert kst.segno_of(42) == segno

    def test_terminate(self):
        kst = KnownSegmentTable()
        segno, _ = kst.make_known(uid=42)
        assert kst.terminate(segno) == 42
        assert not kst.is_known(42)
        with pytest.raises(NoSuchEntry):
            kst.uid_of(segno)
        with pytest.raises(NoSuchEntry):
            kst.terminate(segno)

    def test_capacity(self):
        kst = KnownSegmentTable(capacity=2)
        kst.make_known(1)
        kst.make_known(2)
        with pytest.raises(InvalidArgument):
            kst.make_known(3)

    def test_entries_sorted(self):
        kst = KnownSegmentTable()
        for uid in (30, 10, 20):
            kst.make_known(uid)
        segnos = [e.segno for e in kst.entries()]
        assert segnos == sorted(segnos)
        assert len(kst) == 3

    def test_directory_flag_remembered(self):
        kst = KnownSegmentTable()
        segno, _ = kst.make_known(uid=9, is_directory=True)
        assert kst.entry(segno).is_directory
