"""Tests for event channels and simcall objects."""

import pytest

from repro.errors import AccessViolation
from repro.hw.rings import RingBrackets
from repro.hw.segmentation import SDW, AccessMode
from repro.proc.ipc import (
    Block,
    Charge,
    EventChannel,
    Now,
    Wakeup,
    guarded_by_segment_write,
)
from repro.proc.process import Process


class TestSimCalls:
    def test_charge_rejects_negative(self):
        with pytest.raises(ValueError):
            Charge(-1)

    def test_charge_ok(self):
        assert Charge(5).cycles == 5

    def test_block_and_wakeup_carry_channel(self):
        ch = EventChannel("x")
        assert Block(ch).channel is ch
        assert Wakeup(ch, "msg").message == "msg"

    def test_now_is_stateless(self):
        assert Now() == Now()


class TestEventChannel:
    def test_repr(self):
        ch = EventChannel("pc.free")
        assert "pc.free" in repr(ch)

    def test_has_work(self):
        ch = EventChannel("x")
        assert not ch.has_work()
        ch.pending.append(None)
        assert ch.has_work()

    def test_kernel_sender_bypasses_guard(self):
        def deny(sender):
            raise AccessViolation("no")

        ch = EventChannel("x", guard=deny)
        ch.check_sender(None)  # kernel: no exception

    def test_guard_applied_to_processes(self):
        def deny(sender):
            raise AccessViolation("no")

        ch = EventChannel("x", guard=deny)
        with pytest.raises(AccessViolation):
            ch.check_sender(Process("evil"))


class TestSegmentWriteGuard:
    def make_process(self, access, ring=4, segno=30):
        proc = Process("p", ring=ring)
        proc.dseg.add(
            SDW(
                segno=segno,
                access=access,
                brackets=RingBrackets(ring, ring, ring),
                page_table=[],
                bound=16,
            )
        )
        return proc

    def test_writer_may_send(self):
        guard = guarded_by_segment_write(30)
        guard(self.make_process(AccessMode.RW))

    def test_reader_may_not_send(self):
        guard = guarded_by_segment_write(30)
        with pytest.raises(AccessViolation):
            guard(self.make_process(AccessMode.R))

    def test_unmapped_segment_denied(self):
        guard = guarded_by_segment_write(99)
        with pytest.raises(AccessViolation):
            guard(self.make_process(AccessMode.RW, segno=30))
