"""Fault injection, kernel recovery, and the containment property.

The paper's claim under test: a failing component "can cause only
denial of use, never unauthorized release or modification" of
information.  These tests inject deterministic hardware failures at
every site the fault plane knows and check (a) each recovery mechanism
in isolation, (b) that injection is reproducible given the seed, and
(c) that ACL/MAC decisions never change under fire.
"""

import pytest

from repro.config import SystemConfig
from repro.errors import (
    DeviceError,
    InvalidArgument,
    ParityError,
    TransientFault,
)
from repro.faults.harness import (
    harness_config,
    run_crash_recovery,
    security_decisions,
    standard_workload,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.recovery import RetryPolicy, retry_call
from repro.hw.clock import Simulator
from repro.hw.interrupts import InterruptController
from repro.hw.memory import MemoryHierarchy
from repro.io.buffers import CircularBuffer
from repro.io.devices import Terminal
from repro.io.network import NetworkAttachment
from repro.system import MulticsSystem


def small_config(**overrides) -> SystemConfig:
    return harness_config(**overrides)


def plan(*specs, seed=0) -> FaultPlan:
    return FaultPlan(list(specs), seed=seed)


# ---------------------------------------------------------------------------
# the plan itself
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_spec_needs_rate_or_schedule(self):
        with pytest.raises(ValueError):
            FaultSpec(site="device.tty1", kind="hang")

    def test_rate_must_be_probability(self):
        with pytest.raises(ValueError):
            FaultSpec(site="x", kind="y", rate=1.5)

    def test_schedule_fires_on_exact_ops(self):
        p = plan(FaultSpec("device.tty1", "hang", at_ops=(2, 4)))
        decisions = [p.decide("device.tty1") for _ in range(5)]
        assert decisions == [None, "hang", None, "hang", None]

    def test_spec_rejects_rate_and_schedule_together(self):
        with pytest.raises(ValueError, match="not both"):
            FaultSpec(site="device.tty1", kind="hang",
                      rate=0.5, at_ops=(1, 3))

    def test_wildcard_site_matches_prefix(self):
        p = plan(FaultSpec("memory.*", "parity", at_ops=(1,)))
        assert p.decide("memory.core.read") == "parity"
        assert p.decide("device.tty1") is None

    def test_wildcard_keeps_per_site_op_counters(self):
        # One rule, two sites: each site's schedule counts its own ops.
        p = plan(FaultSpec("memory.*", "parity", at_ops=(2,)))
        assert p.decide("memory.core.read") is None
        assert p.decide("memory.bulk.read") is None
        assert p.decide("memory.core.read") == "parity"
        assert p.decide("memory.bulk.read") == "parity"

    def test_first_matching_rule_wins_over_later_wildcard(self):
        p = plan(
            FaultSpec("memory.core.read", "parity", at_ops=(1,)),
            FaultSpec("memory.*", "transfer_error", at_ops=(1, 2)),
        )
        # Op 1: the exact rule is listed first and fires first.
        assert p.decide("memory.core.read") == "parity"
        # Op 2: the exact rule is quiet, the wildcard fires.
        assert p.decide("memory.core.read") == "transfer_error"

    def test_earlier_wildcard_shadows_exact_rule(self):
        p = plan(
            FaultSpec("memory.*", "transfer_error", at_ops=(1,)),
            FaultSpec("memory.core.read", "parity", at_ops=(1,)),
        )
        # Rule order is precedence — a broad wildcard listed first
        # shadows the exact rule on the shared op.
        assert p.decide("memory.core.read") == "transfer_error"

    def test_rate_stream_deterministic_per_seed(self):
        a = plan(FaultSpec("s", "k", rate=0.3), seed=7)
        b = plan(FaultSpec("s", "k", rate=0.3), seed=7)
        assert [a.decide("s") for _ in range(200)] == [
            b.decide("s") for _ in range(200)
        ]

    def test_different_seeds_differ(self):
        a = plan(FaultSpec("s", "k", rate=0.3), seed=1)
        b = plan(FaultSpec("s", "k", rate=0.3), seed=2)
        assert [a.decide("s") for _ in range(200)] != [
            b.decide("s") for _ in range(200)
        ]

    def test_fork_resets_history(self):
        p = plan(FaultSpec("s", "k", at_ops=(1,)))
        assert p.decide("s") == "k"
        assert p.fork().decide("s") == "k"  # fresh op counter

    def test_injector_audits_every_injection(self):
        from repro.security.audit import AuditLog

        audit = AuditLog()
        injector = FaultInjector(
            plan(FaultSpec("s", "k", at_ops=(1,))), audit=audit
        )
        assert injector.check("s") == "k"
        assert injector.check("s") is None
        records = [r for r in audit.records if r.outcome == "injected"]
        assert len(records) == 1
        assert records[0].subject == "hardware.fault_plan"


# ---------------------------------------------------------------------------
# memory: parity, retry, frame retirement
# ---------------------------------------------------------------------------

class TestMemoryFaults:
    def _hierarchy(self, p) -> MemoryHierarchy:
        config = small_config(fault_plan=p)
        injector = FaultInjector(p.fork())
        return MemoryHierarchy(config, injector=injector)

    def test_parity_raises_on_read(self):
        h = self._hierarchy(plan(FaultSpec("memory.core.read", "parity", at_ops=(1,))))
        frame = h.core.allocate()
        h.core.write(frame, 0, 42)
        with pytest.raises(ParityError):
            h.core.read(frame, 0)
        assert h.core.read(frame, 0) == 42  # next read is clean

    def test_retry_call_recovers_from_parity(self):
        h = self._hierarchy(plan(FaultSpec("memory.core.read", "parity", at_ops=(1,))))
        frame = h.core.allocate()
        h.core.write(frame, 0, 7)
        value, spent = retry_call(
            lambda: h.core.read(frame, 0), RetryPolicy(), h.injector, "t"
        )
        assert value == 7
        assert spent == RetryPolicy().backoff(1)

    def test_retry_exhaustion_is_denial_of_use(self):
        h = self._hierarchy(plan(FaultSpec("memory.core.read", "parity", rate=1.0)))
        frame = h.core.allocate()
        with pytest.raises(DeviceError):
            retry_call(
                lambda: h.core.read(frame, 0), RetryPolicy(max_retries=2),
                h.injector, "t",
            )
        assert h.injector.fatal == 1

    def test_failing_frame_retired_not_reused(self):
        p = plan(FaultSpec("memory.core.read", "parity", rate=1.0))
        config = small_config(fault_plan=p, frame_retire_threshold=2)
        h = MemoryHierarchy(config, injector=FaultInjector(p.fork()))
        frame = h.core.allocate()
        for _ in range(2):
            with pytest.raises(ParityError):
                h.core.read(frame, 0)
        h.core.free(frame)
        assert frame in h.core.retired
        assert all(h.core.allocate() != frame for _ in range(h.core.n_frames - 1))

    def test_transfer_error_is_transient(self):
        h = self._hierarchy(plan(FaultSpec("memory.transfer", "transfer_error", at_ops=(1,))))
        frame = h.disk.allocate()
        with pytest.raises(TransientFault):
            h.transfer(h.disk, frame, h.core)
        moved = h.transfer(h.disk, frame, h.core)  # retry succeeds
        assert h.core.read(moved, 0) == 0


# ---------------------------------------------------------------------------
# devices: retry, watchdog, degradation, detach cancellation
# ---------------------------------------------------------------------------

class TestDeviceRecovery:
    def _terminal(self, p=None, **kwargs) -> tuple[Simulator, InterruptController, Terminal]:
        sim = Simulator()
        ic = InterruptController(sim.clock)
        injector = FaultInjector(p.fork(), clock=sim.clock) if p else None
        tty = Terminal("tty1", sim, ic, line=1, injector=injector, **kwargs)
        return sim, ic, tty

    def test_clean_completion_raises_interrupt(self):
        sim, ic, tty = self._terminal()
        tty.attach(1)
        tty.write_line(1, "hello")
        sim.run()
        assert ic.raised == 1

    def test_transfer_error_retried_then_delivered(self):
        p = plan(FaultSpec("device.tty1", "transfer_error", at_ops=(1,)))
        sim, ic, tty = self._terminal(p)
        tty.attach(1)
        tty.write_line(1, "hello")
        sim.run()
        assert ic.raised == 1
        assert tty.failures == 1
        assert tty.injector.recovered == 1
        # Backoff happened in simulated time: slower than the clean path.
        assert sim.clock.now > tty.latency

    def test_exhausted_retries_degrade_device(self):
        p = plan(FaultSpec("device.tty1", "transfer_error", rate=1.0))
        sim, ic, tty = self._terminal(p, max_retries=2)
        tty.attach(1)
        tty.write_line(1, "hello")
        sim.run()
        assert tty.out_of_service
        assert tty.injector.degraded == 1
        # The waiter got a denial payload, not silence.
        assert ic.raised == 1
        with pytest.raises(DeviceError):
            tty.attach(2)

    @pytest.mark.parametrize("kind", ["hang", "lost_interrupt"])
    def test_watchdog_redelivers(self, kind):
        p = plan(FaultSpec("device.tty1", kind, at_ops=(1,)))
        sim, ic, tty = self._terminal(p)
        tty.attach(1)
        tty.write_line(1, "hello")
        sim.run()
        assert ic.raised == 1
        assert tty.recoveries == 1
        assert sim.clock.now >= tty.latency * tty.timeout_factor

    def test_detach_cancels_pending_completions(self):
        sim, ic, tty = self._terminal()
        tty.attach(1)
        tty.write_line(1, "hello")
        tty.detach(1)  # before the completion interrupt fires
        sim.run()
        assert ic.raised == 0
        assert tty.cancelled_completions == 1
        assert tty._pending == []

    def test_detach_does_not_cancel_other_process(self):
        sim, ic, tty = self._terminal()
        tty.attach(1)
        tty.write_line(1, "hello")
        with pytest.raises(InvalidArgument):
            tty.detach(2)
        sim.run()
        assert ic.raised == 1

    def test_power_fail_clears_pending(self):
        sim, ic, tty = self._terminal()
        tty.attach(1)
        tty.write_line(1, "hello")
        tty.power_fail()
        sim.run()
        assert ic.raised == 0
        assert tty.attached_by is None


# ---------------------------------------------------------------------------
# network: drop, duplicate, suppression
# ---------------------------------------------------------------------------

class TestNetworkFaults:
    def _net(self, p) -> tuple[Simulator, NetworkAttachment]:
        sim = Simulator()
        ic = InterruptController(sim.clock)
        net = NetworkAttachment(
            sim, ic, line=6, buffer=CircularBuffer(16),
            injector=FaultInjector(p.fork(), clock=sim.clock),
        )
        return sim, net

    def test_dropped_message_never_buffered(self):
        sim, net = self._net(plan(FaultSpec("net.deliver", "drop", at_ops=(1,))))
        net.deliver("host", "lost")
        net.deliver("host", "kept")
        sim.run()
        assert net.dropped == 1
        assert net.receive().body == "kept"
        assert net.receive() is None

    def test_duplicate_suppressed_on_receive(self):
        sim, net = self._net(plan(FaultSpec("net.deliver", "duplicate", at_ops=(1,))))
        net.deliver("host", "once")
        sim.run()
        assert net.duplicated == 1
        assert net.receive().body == "once"
        assert net.receive() is None  # the copy was suppressed
        assert net.duplicates_suppressed == 1
        assert net.injector.recovered == 1


# ---------------------------------------------------------------------------
# page control: transfers retried with charged backoff
# ---------------------------------------------------------------------------

class TestPageTransferRetry:
    def test_page_fault_survives_transfer_error(self):
        p = plan(
            FaultSpec("memory.transfer", "transfer_error", at_ops=(1,)),
            seed=5,
        )
        system = MulticsSystem(small_config(fault_plan=p)).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        alice = system.login("Alice", "Crypto", "alice-pw")
        segno = alice.create_segment("scratch", n_pages=2)
        alice.write_words(segno, list(range(10)))
        assert alice.read_words(segno, 10) == list(range(10))
        injector = system.services.injector
        assert injector.injected_count >= 1
        assert injector.recovered >= 1
        assert system.services.page_control.transfer_retries >= 1

    def test_fatal_transfer_is_denial_of_use(self):
        p = plan(FaultSpec("memory.transfer", "transfer_error", rate=1.0))
        system = MulticsSystem(small_config(fault_plan=p)).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        with pytest.raises(DeviceError):
            alice = system.login("Alice", "Crypto", "alice-pw")
            segno = alice.create_segment("scratch", n_pages=8)
            for off in range(0, 8 * system.config.page_size, 1):
                alice.write_words(segno, [off], offset=off)
        assert system.services.injector.fatal >= 1


# ---------------------------------------------------------------------------
# determinism: same seed, same story
# ---------------------------------------------------------------------------

def noisy_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        [
            FaultSpec("memory.core.read", "parity", rate=0.1),
            FaultSpec("memory.transfer", "transfer_error", rate=0.2),
            FaultSpec("device.*", "transfer_error", rate=0.2),
            FaultSpec("net.deliver", "duplicate", rate=0.3),
        ],
        seed=seed,
    )


def run_workload(fault_seed=None):
    cfg = small_config(
        fault_plan=noisy_plan(fault_seed) if fault_seed is not None else None
    )
    system = MulticsSystem(cfg).boot()
    system.register_user("Alice", "Crypto", "alice-pw")
    system.register_user("Eve", "Spies", "eve-pw")
    result = standard_workload(system)
    return system, result


class TestDeterminism:
    def test_same_seed_identical_audit_log(self):
        a, _ = run_workload(fault_seed=11)
        b, _ = run_workload(fault_seed=11)
        rec_a = [
            (r.time, r.subject, r.object, r.action, r.outcome, r.detail)
            for r in a.services.audit.records
        ]
        rec_b = [
            (r.time, r.subject, r.object, r.action, r.outcome, r.detail)
            for r in b.services.audit.records
        ]
        assert rec_a == rec_b
        assert a.services.injector.injected == b.services.injector.injected

    def test_injection_actually_happened(self):
        system, _ = run_workload(fault_seed=11)
        assert system.services.injector.injected_count >= 1


# ---------------------------------------------------------------------------
# containment: decisions identical with and without injection
# ---------------------------------------------------------------------------

class TestContainment:
    @pytest.mark.parametrize("fault_seed", range(6))
    def test_decisions_unchanged_by_injection(self, fault_seed):
        """The headline property: a fault plan may slow the system down
        or deny use, but every ACL/MAC decision is the same as in the
        fault-free run."""
        baseline_sys, baseline = run_workload(fault_seed=None)
        faulty_sys, faulty = run_workload(fault_seed=fault_seed)
        assert faulty.notes == [] or all(
            "UNEXPECTEDLY" not in n for n in faulty.notes
        )
        assert security_decisions(faulty_sys.services.audit) == \
            security_decisions(baseline_sys.services.audit)
        assert faulty.expected_denials == baseline.expected_denials == 2

    def test_no_unauthorized_access_under_heavy_fire(self):
        """Crank the rates: recovery may fail (denial of use) but the
        reference monitor's answers stay authoritative."""
        cfg = small_config(
            fault_plan=FaultPlan(
                [
                    FaultSpec("memory.core.read", "parity", rate=0.05),
                    FaultSpec("device.*", "transfer_error", rate=0.3),
                    FaultSpec("memory.transfer", "transfer_error", rate=0.1),
                ],
                seed=99,
            )
        )
        system = MulticsSystem(cfg).boot()
        system.register_user("Alice", "Crypto", "alice-pw")
        system.register_user("Eve", "Spies", "eve-pw")
        result = standard_workload(system)
        assert all("UNEXPECTEDLY" not in n for n in result.notes)
        granted = [
            d for d in security_decisions(system.services.audit)
            if d[0].startswith("Eve") and d[3] == "granted"
            and "Alice" in d[1]
        ]
        assert granted == []


# ---------------------------------------------------------------------------
# the full story: crash, salvage, reboot — under injection
# ---------------------------------------------------------------------------

class TestCrashRecovery:
    def test_crash_recovery_without_faults(self):
        r = run_crash_recovery(seed=0)
        assert r.damage
        assert r.salvage_report.damage_found >= len(r.damage)
        assert r.violations_after == []
        assert r.unauthorized == []
        assert r.clean_marker

    @pytest.mark.parametrize("seed", range(4))
    def test_crash_recovery_under_injection(self, seed):
        cfg = harness_config(fault_plan=noisy_plan(seed))
        r = run_crash_recovery(config=cfg, seed=seed)
        assert r.violations_after == []
        assert r.unauthorized == []
        assert r.clean_marker
        assert r.post_boot.expected_denials >= 1
